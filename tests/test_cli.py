"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture
def saved_network(tmp_path):
    path = tmp_path / "net.json"
    assert main([
        "generate-network", "--region", "ATL", "--scale", "0.03",
        "--out", str(path),
    ]) == 0
    return path


@pytest.fixture
def saved_traces(tmp_path, saved_network):
    path = tmp_path / "traces.json"
    assert main([
        "simulate", "--network", str(saved_network),
        "--objects", "30", "--out", str(path),
    ]) == 0
    return path


class TestGenerateNetwork:
    def test_writes_valid_json(self, saved_network):
        data = json.loads(saved_network.read_text())
        assert data["format"] == "repro-roadnet"
        assert data["segments"]

    def test_output_message(self, saved_network, capsys):
        main(["stats", str(saved_network)])
        out = capsys.readouterr().out
        assert "Regions" in out


class TestSimulate:
    def test_writes_traces(self, saved_traces):
        data = json.loads(saved_traces.read_text())
        assert data["format"] == "repro-trajectories"
        assert len(data["trajectories"]) > 0

    def test_seed_controls_output(self, tmp_path, saved_network):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        main(["simulate", "--network", str(saved_network), "--objects", "10",
              "--seed", "1", "--out", str(a)])
        main(["simulate", "--network", str(saved_network), "--objects", "10",
              "--seed", "1", "--out", str(b)])
        assert a.read_text() == b.read_text()


class TestCluster:
    def test_opt_mode(self, saved_network, saved_traces, capsys):
        code = main([
            "cluster", "--network", str(saved_network),
            "--traces", str(saved_traces), "--mode", "opt",
            "--eps", "500", "--min-card", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "NEAT[opt]" in out
        assert "flow 0:" in out

    def test_svg_output(self, saved_network, saved_traces, tmp_path, capsys):
        svg = tmp_path / "map.svg"
        main([
            "cluster", "--network", str(saved_network),
            "--traces", str(saved_traces), "--svg", str(svg),
            "--min-card", "0",
        ])
        assert svg.exists()
        assert svg.read_text().startswith("<svg")

    def test_weight_flags(self, saved_network, saved_traces, capsys):
        code = main([
            "cluster", "--network", str(saved_network),
            "--traces", str(saved_traces),
            "--wq", "1.0", "--wk", "0.0", "--wv", "0.0", "--min-card", "0",
        ])
        assert code == 0


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])
