"""NEAT core: the paper's three-phase trajectory clustering framework.

Public surface: the data model (:class:`Location`, :class:`Trajectory`,
:class:`TFragment`), the per-phase building blocks (base clusters, flow
clusters, refinement) and the :class:`NEAT` pipeline that ties them into
base-/flow-/opt-NEAT.
"""

from .base_cluster import (
    BaseCluster,
    densecore,
    form_base_clusters,
    group_fragments,
    netflow,
)
from .config import (
    NEATConfig,
    PRESET_BALANCED,
    PRESET_DENSEST,
    PRESET_FASTEST,
    PRESET_MAX_FLOW,
    PRESET_TRAFFIC_MONITORING,
)
from .flow_cluster import FlowCluster
from .flow_formation import FlowFormationResult, form_flow_clusters
from .incremental import BatchResult, IncrementalNEAT
from .fragmentation import (
    fragment_all,
    fragment_trajectory,
    insert_junction_points,
)
from .model import Location, TFragment, Trajectory, TrajectoryDataset
from .neighborhood import BaseClusterPool, maxflow_neighbor
from .pipeline import MODES, NEAT
from .preprocess import (
    deduplicate,
    preprocess_stream,
    remove_stay_points,
    simplify,
    split_by_time_gap,
)
from .refinement import (
    RefinementStats,
    TrajectoryCluster,
    euclidean_lower_bound,
    flow_distance,
    refine_flow_clusters,
)
from .result import NEATResult, PhaseTimings
from .serialize import load_result, result_from_dict, result_to_dict, save_result
from .timeslice import (
    TimeSlice,
    flow_stability,
    persistent_segments,
    time_sliced_clustering,
)
from .validate import ValidationReport, validate_result, validate_trajectories

__all__ = [
    "BaseCluster",
    "BaseClusterPool",
    "BatchResult",
    "FlowCluster",
    "FlowFormationResult",
    "IncrementalNEAT",
    "Location",
    "MODES",
    "NEAT",
    "NEATConfig",
    "NEATResult",
    "PRESET_BALANCED",
    "PRESET_DENSEST",
    "PRESET_FASTEST",
    "PRESET_MAX_FLOW",
    "PRESET_TRAFFIC_MONITORING",
    "PhaseTimings",
    "RefinementStats",
    "TFragment",
    "TimeSlice",
    "Trajectory",
    "TrajectoryCluster",
    "TrajectoryDataset",
    "ValidationReport",
    "deduplicate",
    "densecore",
    "euclidean_lower_bound",
    "flow_distance",
    "flow_stability",
    "form_base_clusters",
    "form_flow_clusters",
    "fragment_all",
    "fragment_trajectory",
    "group_fragments",
    "insert_junction_points",
    "load_result",
    "maxflow_neighbor",
    "netflow",
    "persistent_segments",
    "preprocess_stream",
    "refine_flow_clusters",
    "remove_stay_points",
    "result_from_dict",
    "result_to_dict",
    "save_result",
    "simplify",
    "split_by_time_gap",
    "time_sliced_clustering",
    "validate_result",
    "validate_trajectories",
]
