"""Tests for repro.obs.metrics: instruments, registry, exports."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    prometheus_name,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == 11.5


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = Histogram("h", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 3.0, 7.0, 100.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(111.5)
        # le=1.0 catches 0.5 and the boundary value 1.0 (inclusive).
        assert histogram.cumulative_buckets() == [
            (1.0, 2), (5.0, 3), (10.0, 4), (float("inf"), 5),
        ]

    def test_mean(self):
        histogram = Histogram("h", buckets=(1.0,))
        assert histogram.mean == 0.0
        histogram.observe(2.0)
        histogram.observe(4.0)
        assert histogram.mean == 3.0

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_as_dict(self):
        histogram = Histogram("h", buckets=(0.5, 2.0))
        histogram.observe(0.1)
        histogram.observe(10.0)
        document = histogram.as_dict()
        assert document["count"] == 2
        assert document["buckets"] == {"0.5": 1, "2": 1, "+Inf": 2}


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_value_accessor(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        assert registry.value("c") == 7
        assert registry.value("missing", default=-1) == -1
        registry.histogram("h").observe(1.0)
        with pytest.raises(TypeError):
            registry.value("h")

    def test_lookup_and_len(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        assert "a" in registry
        assert registry.get("b").kind == "gauge"
        assert registry.get("zzz") is None
        assert len(registry) == 2

    def test_reset_keeps_registrations(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        registry.reset()
        assert registry.value("a") == 0
        assert registry.get("h").count == 0
        assert len(registry) == 2


class TestJsonExport:
    def test_as_dict_is_json_serializable_and_grouped(self):
        registry = MetricsRegistry()
        registry.counter("neat.phase3.elb_pruned").inc(42)
        registry.gauge("neat.phase2.min_card_used").set(5)
        registry.histogram("service.submit_latency_seconds").observe(0.02)
        document = registry.as_dict()
        round_tripped = json.loads(json.dumps(document))
        assert round_tripped["counters"]["neat.phase3.elb_pruned"] == 42
        assert round_tripped["gauges"]["neat.phase2.min_card_used"] == 5
        histogram = round_tripped["histograms"]["service.submit_latency_seconds"]
        assert histogram["count"] == 1
        assert histogram["buckets"]["+Inf"] == 1


class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("neat.phase3.elb_pruned", "ELB-pruned pairs").inc(42)
        registry.gauge("neat.phase2.min_card_used").set(5)
        text = registry.to_prometheus()
        assert "# HELP neat_phase3_elb_pruned ELB-pruned pairs" in text
        assert "# TYPE neat_phase3_elb_pruned counter" in text
        assert "neat_phase3_elb_pruned 42" in text
        assert "# TYPE neat_phase2_min_card_used gauge" in text
        assert "neat_phase2_min_card_used 5" in text
        assert text.endswith("\n")

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(0.25, 1.0))
        histogram.observe(0.125)
        histogram.observe(0.5)
        histogram.observe(5.0)
        text = registry.to_prometheus()
        assert 'lat_bucket{le="0.25"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 5.625" in text
        assert "lat_count 3" in text

    def test_empty_registry(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_name_sanitization(self):
        assert prometheus_name("neat.phase3.sp_computations") == (
            "neat_phase3_sp_computations"
        )
        assert prometheus_name("9lives").startswith("_")
