"""NEAT algorithm configuration.

Gathers every knob of the three-phase framework in one validated dataclass:
the merging-selectivity weights of Definition 10, the domination threshold
``β`` of Section III-B2, the flow-cardinality filter ``minCard``, and the
Phase 3 refinement distance ``ε`` with its ELB switch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace

from ..errors import ConfigError


@dataclass(frozen=True, slots=True)
class NEATConfig:
    """Parameters of the NEAT three-phase clustering framework.

    Attributes:
        wq: Weight of the flow factor ``q`` (Definition 9/10).
        wk: Weight of the density factor ``k``.
        wv: Weight of the speed-limit factor ``v``.  The three weights must
            be non-negative and sum to 1.
        beta: Domination threshold ``β``.  A netflow ``f1`` dominates ``f2``
            when both are positive and ``f1/f2 >= beta``; ``math.inf``
            disables domination handling, making selection purely
            SF/maxFlow-driven (Section III-B2).
        min_card: Minimum trajectory cardinality for a flow cluster to
            survive Phase 2.  ``None`` (the default) uses the paper's
            choice for Figure 3: the mean cardinality over all formed
            flows (= 5 for ATL500 in the paper).
        eps: Phase 3 distance threshold ``ε`` in metres for merging flow
            clusters (the paper uses 6500 m for ATL500).
        min_pts: Minimum neighbour count in the adapted DBSCAN.  The paper
            sets "no minimum cardinality", i.e. 1: every flow belongs to a
            final cluster, singletons included.
        use_elb: Apply the Euclidean-lower-bound filter before shortest
            path computations in Phase 3 (Section III-C3).
        keep_interior_points: Keep original interior samples inside
            t-fragments.  The paper drops them ("only the first and the
            last point in the original trajectory are kept, together with
            the newly inserted road junction points"); keeping them is
            useful for visualization and diagnostics.
        workers: Worker processes for the parallel pipeline stages
            (Phase 1 fragmentation fan-out, Phase 3 distance batches).
            ``None`` or ``0`` means one per CPU (``os.cpu_count()``);
            ``1`` (the default) runs serially.  Results are identical at
            any setting — parallelism only changes wall-clock time.
        sp_backend: Shortest-path backend of the Phase 3 engine:
            ``"csr"`` (flat-array bidirectional Dijkstra, the default)
            or ``"dict"`` (legacy adjacency walk).
        sp_oracle: Phase 3 distance-oracle strategy.  ``"tiered"`` (the
            default) answers the surviving endpoint pairs with batched
            multi-target single-source kernels — O(distinct endpoints)
            searches instead of one per pair; ``"pairwise"`` keeps the
            legacy per-pair point-to-point searches.  Cluster output and
            the Figure-7 determinism counters are identical either way.
        use_llb: Apply the landmark (ALT triangle-inequality) lower
            bound as a second prune tier above the ELB in Phase 3.
            Strictly tighter than Euclidean on road graphs; never changes
            cluster output.  Off by default so the paper's baseline
            counters stay untouched.
        vector_backend: Implementation of the batched Phase 3 bound
            kernels (:mod:`repro.core.bounds`): ``"auto"`` (the default)
            uses numpy when importable and falls back to the stdlib
            loops, ``"numpy"`` requires numpy (install the ``perf``
            extra) and fails fast when absent, ``"python"`` forces the
            stdlib loops.  Every setting produces byte-identical
            clusters and counters — only wall-clock time differs.
        llb_landmarks: Landmark count for the LLB tier (farthest-point
            sampled; tables are built once per network version).
        max_retries: Retries after the first attempt for fallible service
            tier operations (ingest, refresh, shard dispatch); 0 tries
            exactly once.  See :class:`repro.resilience.RetryPolicy`.
        deadline_s: Default per-call time budget (seconds) for service
            submit/query operations; ``None`` (the default) means no
            deadline.
        max_pending: Bound on the service's pending-batch queue; a full
            queue rejects new batches with ``ServiceOverloaded``.
        checkpoint_every: Snapshot cadence of the crash-safe persistence
            layer, in batches: when a state directory is attached
            (``IncrementalNEAT.enable_persistence`` / ``--state-dir``), a
            full snapshot generation is written every N-th ingested
            batch.  ``0`` (the default) journals every batch but writes
            snapshots only on explicit ``checkpoint()`` calls.
        slo_ingest_p99_s: Latency SLO for service ingest: the p99 of
            ``service.submit_latency_seconds`` (evaluated over the
            window between watchdog evaluations) must stay at or below
            this many seconds.  While breached the service sheds load —
            the effective pending-queue bound is halved.  ``None`` (the
            default) disables the rule.
        slo_query_p99_s: Latency SLO for service queries: the windowed
            p99 of ``service.query_latency_seconds``.  While breached,
            ``get_clustering`` serves the last validated snapshot
            (flagged ``"stale"``/``"slo_degraded"``) instead of
            refreshing.  ``None`` disables the rule.
    """

    wq: float = 1.0 / 3.0
    wk: float = 1.0 / 3.0
    wv: float = 1.0 / 3.0
    beta: float = math.inf
    min_card: int | None = None
    eps: float = 1000.0
    min_pts: int = 1
    use_elb: bool = True
    keep_interior_points: bool = False
    workers: int | None = 1
    sp_backend: str = "csr"
    sp_oracle: str = "tiered"
    use_llb: bool = False
    vector_backend: str = "auto"
    llb_landmarks: int = 8
    max_retries: int = 2
    deadline_s: float | None = None
    max_pending: int = 64
    checkpoint_every: int = 0
    slo_ingest_p99_s: float | None = None
    slo_query_p99_s: float | None = None

    def __post_init__(self) -> None:
        for name, weight in (("wq", self.wq), ("wk", self.wk), ("wv", self.wv)):
            if weight < 0.0:
                raise ConfigError(f"{name} must be non-negative, got {weight}")
        total = self.wq + self.wk + self.wv
        if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
            raise ConfigError(
                f"weights must sum to 1 (wq + wk + wv = {total})"
            )
        if self.beta <= 1.0:
            raise ConfigError(
                f"beta must exceed 1 (a flow cannot dominate a larger one), "
                f"got {self.beta}"
            )
        if self.min_card is not None and self.min_card < 0:
            raise ConfigError(f"min_card must be >= 0, got {self.min_card}")
        if self.eps < 0.0:
            raise ConfigError(f"eps must be >= 0, got {self.eps}")
        if self.min_pts < 1:
            raise ConfigError(f"min_pts must be >= 1, got {self.min_pts}")
        if self.workers is not None and self.workers < 0:
            raise ConfigError(
                f"workers must be >= 0 (0/None = one per CPU), got {self.workers}"
            )
        if self.sp_backend not in ("dict", "csr"):
            raise ConfigError(
                f"sp_backend must be 'dict' or 'csr', got {self.sp_backend!r}"
            )
        if self.sp_oracle not in ("tiered", "pairwise"):
            raise ConfigError(
                f"sp_oracle must be 'tiered' or 'pairwise', "
                f"got {self.sp_oracle!r}"
            )
        if self.vector_backend not in ("auto", "numpy", "python"):
            raise ConfigError(
                f"vector_backend must be 'auto', 'numpy' or 'python', "
                f"got {self.vector_backend!r}"
            )
        if self.llb_landmarks < 1:
            raise ConfigError(
                f"llb_landmarks must be >= 1, got {self.llb_landmarks}"
            )
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError(
                f"deadline_s must be > 0 when set, got {self.deadline_s}"
            )
        if self.max_pending < 1:
            raise ConfigError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.checkpoint_every < 0:
            raise ConfigError(
                f"checkpoint_every must be >= 0 (0 = explicit checkpoints "
                f"only), got {self.checkpoint_every}"
            )
        for name, slo in (
            ("slo_ingest_p99_s", self.slo_ingest_p99_s),
            ("slo_query_p99_s", self.slo_query_p99_s),
        ):
            if slo is not None and slo <= 0:
                raise ConfigError(
                    f"{name} must be > 0 when set (None disables the "
                    f"rule), got {slo}"
                )

    def to_dict(self) -> dict:
        """JSON-compatible document of every field (``inf`` -> ``"inf"``).

        The inverse of :meth:`from_dict`; the tuning harness commits this
        document as the ``config`` section of a ``best_config`` file.
        """
        document = {}
        for field in fields(self):
            value = getattr(self, field.name)
            if isinstance(value, float) and math.isinf(value):
                value = "inf"
            document[field.name] = value
        return document

    @classmethod
    def from_dict(cls, document: dict) -> "NEATConfig":
        """Rebuild a validated config from a :meth:`to_dict` document.

        Unknown keys raise :class:`~repro.errors.ConfigError` (a typo in
        a tuning grid must fail loudly, not silently no-op); missing keys
        keep their defaults, so partial documents work too.
        """
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(document) - known)
        if unknown:
            raise ConfigError(f"unknown config fields: {unknown}")
        kwargs = {}
        for key, value in document.items():
            if value == "inf":
                value = math.inf
            kwargs[key] = value
        return cls(**kwargs)

    def with_weights(self, wq: float, wk: float, wv: float) -> "NEATConfig":
        """A copy with different merging-selectivity weights."""
        return replace(self, wq=wq, wk=wk, wv=wv)

    def with_eps(self, eps: float) -> "NEATConfig":
        """A copy with a different Phase 3 distance threshold."""
        return replace(self, eps=eps)


#: Application presets discussed under Definition 10 in the paper.
PRESET_BALANCED = NEATConfig(wq=1.0 / 3.0, wk=1.0 / 3.0, wv=1.0 / 3.0)
PRESET_DENSEST = NEATConfig(wq=0.0, wk=1.0, wv=0.0)
PRESET_FASTEST = NEATConfig(wq=0.0, wk=0.0, wv=1.0)
PRESET_TRAFFIC_MONITORING = NEATConfig(wq=0.5, wk=0.5, wv=0.0)
PRESET_MAX_FLOW = NEATConfig(wq=1.0, wk=0.0, wv=0.0)
