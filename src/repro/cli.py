"""Command-line interface: ``python -m repro <command>``.

Exposes the full workflow without writing Python:

* ``generate-network`` — build a calibrated synthetic map, save as JSON;
* ``stats``            — print a network's Table-I-style statistics;
* ``simulate``         — generate mobility traces on a saved network;
* ``cluster``          — run base-/flow-/opt-NEAT over saved traces
  (``--state-dir`` makes the run crash-safe and resumable; add
  ``--batch-size`` for journaled streaming ingest; ``--obs-port``
  serves ``/metrics`` during the run, ``--trace-out``/``--folded-out``
  export the timeline, ``--profile-hz`` samples stacks);
* ``serve``            — run a :class:`NeatService` with its HTTP
  observability plane (``/metrics /health /statusz /tracez``);
* ``recover``          — restore clustering state from a ``--state-dir``;
* ``experiment``       — regenerate one of the paper's tables/figures;
* ``tune``             — the auto-tuning harness: ``tune passport``
  (per-dataset sanity statistics + summary CSV), ``tune sweep`` (grid
  sweep over a committed ``tune_grid.yaml``, electing a ``best_config``
  per network) and ``tune reproduce`` (byte-identical replay of a
  committed winner), all over the named small/medium/stress workload
  ladder (``--profile``); see ``docs/tuning.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .core.config import NEATConfig
from .core.pipeline import MODES, NEAT
from .core.serialize import result_to_dict
from .mobisim.io import load_dataset, save_dataset
from .obs import Telemetry, configure_logging, get_logger
from .mobisim.simulator import SimulationConfig, simulate_dataset
from .roadnet.generators import REGION_PRESETS
from .roadnet.io import load_network, save_network
from .roadnet.stats import format_table1, network_stats

EXPERIMENTS = (
    "table1", "table2", "table3", "fig3", "fig4", "fig5", "fig6", "fig7",
    "variant", "all",
)


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NEAT road-network-aware trajectory clustering (ICDCS 2012 reproduction)",
    )
    parser.add_argument(
        "--log-level",
        choices=("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"),
        default="WARNING",
        help="structured-log threshold (default WARNING; logs go to stderr)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit logs as JSON lines instead of key=value text",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate-network", help="build a synthetic road network")
    gen.add_argument("--region", choices=sorted(REGION_PRESETS), default="ATL")
    gen.add_argument("--scale", type=float, default=0.1,
                     help="fraction of the paper's map size (default 0.1)")
    gen.add_argument("--seed", type=int, default=71)
    gen.add_argument("--out", required=True, type=Path, help="output JSON path")

    stats = sub.add_parser("stats", help="print Table-I statistics of a network")
    stats.add_argument("network", type=Path, help="network JSON file")

    sim = sub.add_parser("simulate", help="generate mobility traces")
    sim.add_argument("--network", required=True, type=Path)
    sim.add_argument("--objects", type=int, default=500)
    sim.add_argument("--interval", type=float, default=5.0,
                     help="sampling interval in seconds")
    sim.add_argument("--hotspots", type=int, default=2)
    sim.add_argument("--destinations", type=int, default=3)
    sim.add_argument("--seed", type=int, default=23)
    sim.add_argument("--name", default=None, help="dataset name")
    sim.add_argument("--out", required=True, type=Path)

    cluster = sub.add_parser("cluster", help="run NEAT over saved traces")
    cluster.add_argument("--network", required=True, type=Path)
    cluster.add_argument("--traces", required=True, type=Path)
    cluster.add_argument("--mode", choices=MODES, default="opt")
    cluster.add_argument("--eps", type=float, default=1000.0,
                         help="Phase 3 distance threshold in metres")
    cluster.add_argument("--min-card", type=int, default=None,
                         help="minCard (default: mean flow cardinality)")
    cluster.add_argument("--wq", type=float, default=1.0 / 3.0)
    cluster.add_argument("--wk", type=float, default=1.0 / 3.0)
    cluster.add_argument("--wv", type=float, default=1.0 / 3.0)
    cluster.add_argument("--no-elb", action="store_true",
                         help="disable Euclidean-lower-bound pruning")
    cluster.add_argument("--workers", type=int, default=None,
                         help="worker processes for Phase 1/Phase 3 "
                              "fan-out (default: one per CPU; 1 = serial; "
                              "results are identical at any setting)")
    cluster.add_argument("--sp-backend", choices=("dict", "csr"),
                         default="csr",
                         help="shortest-path backend: flat-array CSR "
                              "(default) or the legacy dict adjacency")
    cluster.add_argument("--sp-oracle", choices=("tiered", "pairwise"),
                         default="tiered",
                         help="Phase 3 distance oracle: batched "
                              "multi-target kernels (default) or the "
                              "legacy per-pair searches; identical output")
    cluster.add_argument("--vector-backend",
                         choices=("auto", "numpy", "python"),
                         default="auto",
                         help="batched bound-kernel implementation: numpy "
                              "when importable (auto, the default), numpy "
                              "required, or the stdlib loops; output is "
                              "byte-identical either way")
    cluster.add_argument("--llb", action="store_true",
                         help="enable the landmark lower-bound prune tier "
                              "above the ELB (never changes clusters)")
    cluster.add_argument("--llb-landmarks", type=int, default=8,
                         help="landmark count for the LLB tier (default 8)")
    cluster.add_argument("--max-retries", type=int, default=2,
                         help="retries for fallible service-tier operations "
                              "(ingest/refresh/shard dispatch; 0 = try once)")
    cluster.add_argument("--deadline-s", type=float, default=None,
                         help="per-call time budget in seconds for service "
                              "submit/query operations (default: none)")
    cluster.add_argument("--max-pending", type=int, default=64,
                         help="bound on the service's pending-batch queue "
                              "before ServiceOverloaded rejections")
    cluster.add_argument("--svg", type=Path, default=None,
                         help="render flows/clusters to this SVG")
    cluster.add_argument("--json", action="store_true",
                         help="print the machine-readable result document "
                              "(core.serialize schema) instead of the "
                              "human summary")
    cluster.add_argument("--metrics-out", type=Path, default=None,
                         help="write the run's telemetry snapshot "
                              "(trace spans + metrics) to this JSON file")
    cluster.add_argument("--state-dir", type=Path, default=None,
                         help="crash-safe state directory: one-shot runs "
                              "checkpoint after every completed phase and "
                              "resume from the furthest match; with "
                              "--batch-size, batches are journaled and "
                              "ingestion resumes where it was killed")
    cluster.add_argument("--checkpoint-every", type=int, default=0,
                         help="snapshot cadence in batches for streaming "
                              "ingest (0 = journal only, snapshot at end)")
    cluster.add_argument("--batch-size", type=int, default=None,
                         help="stream the traces through IncrementalNEAT "
                              "in batches of this size instead of one "
                              "pipeline run")
    cluster.add_argument("--obs-port", type=int, default=None,
                         help="serve the HTTP observability plane "
                              "(/metrics /health /statusz /tracez) on this "
                              "port for the duration of the run (0 = "
                              "ephemeral; the URL is printed to stderr)")
    cluster.add_argument("--trace-out", type=Path, default=None,
                         help="write the run's span timeline as Chrome "
                              "trace-event JSON (open in Perfetto / "
                              "chrome://tracing)")
    cluster.add_argument("--folded-out", type=Path, default=None,
                         help="write the run's span timeline as folded "
                              "flamegraph stacks (flamegraph.pl input)")
    cluster.add_argument("--profile-hz", type=float, default=0.0,
                         help="sample Python stacks at this rate during "
                              "the run (0 = profiler off, the default)")
    cluster.add_argument("--profile-out", type=Path, default=None,
                         help="write sampled stacks as folded text "
                              "(requires --profile-hz > 0)")
    cluster.add_argument("--config", type=Path, default=None,
                         dest="config_file",
                         help="load the NEATConfig from a JSON document "
                              "(a tune best_config file or a bare config "
                              "mapping); the individual knob flags are "
                              "ignored when given")

    serve = sub.add_parser(
        "serve",
        help="run a NEAT service with its HTTP observability plane",
    )
    serve.add_argument("--network", required=True, type=Path)
    serve.add_argument("--traces", type=Path, default=None,
                       help="optional traces to ingest on startup")
    serve.add_argument("--batch-size", type=int, default=100,
                       help="ingest batch size for --traces (default 100)")
    serve.add_argument("--eps", type=float, default=1000.0,
                       help="Phase 3 distance threshold in metres")
    serve.add_argument("--min-card", type=int, default=None,
                       help="minCard (default: mean flow cardinality)")
    serve.add_argument("--obs-port", type=int, default=0,
                       help="observability-plane port (default 0 = "
                            "ephemeral; printed, and written to "
                            "--port-file when given)")
    serve.add_argument("--obs-host", default="127.0.0.1",
                       help="observability-plane bind address "
                            "(default loopback)")
    serve.add_argument("--port-file", type=Path, default=None,
                       help="write the bound obs port to this file once "
                            "listening (supervisors/tests read it back)")
    serve.add_argument("--duration", type=float, default=None,
                       help="serve for this many seconds after ingest "
                            "then exit (default: until interrupted)")
    serve.add_argument("--state-dir", type=Path, default=None,
                       help="crash-safe state directory for the service")
    serve.add_argument("--checkpoint-every", type=int, default=0,
                       help="snapshot cadence in batches (0 = explicit)")
    serve.add_argument("--slo-ingest-p99", type=float, default=None,
                       help="ingest latency SLO: windowed p99 of submit "
                            "latency must stay at or below this many "
                            "seconds (breach sheds load)")
    serve.add_argument("--slo-query-p99", type=float, default=None,
                       help="query latency SLO: windowed p99 of query "
                            "latency (breach serves stale snapshots)")
    serve.add_argument("--shards", type=int, default=0,
                       help="run the distributed tier: spawn this many "
                            "local shard-node worker processes, shard "
                            "--traces by map region over a consistent-"
                            "hash ring and cluster through the TCP wire "
                            "protocol (0 = the single-process service, "
                            "the default)")
    serve.add_argument("--shard-dir", type=Path, default=None,
                       help="directory for shard port/pid files and "
                            "per-shard logs (default: a temp dir; CI "
                            "uploads it on failure)")
    serve.add_argument("--mode", choices=MODES, default="opt",
                       help="clustering mode for the --shards run")
    serve.add_argument("--min-quorum", type=float, default=0.0,
                       help="minimum fraction of dispatched shards that "
                            "must survive re-dispatch (below it the run "
                            "fails with QuorumLost; default 0.0)")
    serve.add_argument("--rpc-timeout", type=float, default=5.0,
                       help="socket timeout in seconds for shard RPCs "
                            "(the real deadline a stalled shard hits)")
    serve.add_argument("--pool-size", type=int, default=1,
                       help="idle connections kept open per shard node "
                            "(handshake once per connection; 0 = one "
                            "connection per call, the pre-pool behavior)")
    serve.add_argument("--remote-phase3", action="store_true",
                       help="fan Phase 3 distance work out to the shard "
                            "nodes (byte-identical clusters; the "
                            "coordinator only merges and re-sorts)")
    serve.add_argument("--shard-startup-timeout", type=float, default=30.0,
                       help="seconds to wait for every spawned shard to "
                            "write its port file before failing the "
                            "rendezvous")
    serve.add_argument("--fault-spec", default=None,
                       help="chaos schedule: a JSON object (or @file) "
                            "mapping injection points to FaultPlan "
                            "fields, e.g. '{\"transport.node0\": "
                            "{\"refuse_nth\": 1}}'")
    serve.add_argument("--result-out", type=Path, default=None,
                       help="write the --shards clustering result "
                            "document (sorted JSON) to this file")
    serve.add_argument("--counters-out", type=Path, default=None,
                       help="write the run's counter instruments "
                            "(sorted JSON; deterministic under a fixed "
                            "fault spec) to this file")

    shard_node = sub.add_parser(
        "shard-node",
        help="run one shard worker process (the repro serve --shards "
             "backend): Phase 1 over the framed TCP wire protocol",
    )
    shard_node.add_argument("--network", required=True, type=Path)
    shard_node.add_argument("--node-id", type=int, default=0,
                            help="identifier reported in handshakes")
    shard_node.add_argument("--host", default="127.0.0.1",
                            help="bind address (default loopback)")
    shard_node.add_argument("--port", type=int, default=0,
                            help="TCP port (default 0 = ephemeral)")
    shard_node.add_argument("--port-file", type=Path, default=None,
                            help="write the bound port here once "
                                 "listening (the spawn rendezvous)")

    recover = sub.add_parser(
        "recover",
        help="restore clustering state from a --state-dir and report it",
    )
    recover.add_argument("--network", required=True, type=Path)
    recover.add_argument("--state-dir", required=True, type=Path)
    recover.add_argument("--json", action="store_true",
                         help="print the recovered result document instead "
                              "of the human summary")

    experiment = sub.add_parser(
        "experiment", help="regenerate a table/figure of the paper"
    )
    experiment.add_argument("id", choices=EXPERIMENTS)
    experiment.add_argument("--out-dir", type=Path, default=Path("experiment-output"))

    from .tune.profiles import add_profile_argument

    tune = sub.add_parser(
        "tune",
        help="auto-tuning harness: dataset passports, grid sweeps, "
             "best_config replay (docs/tuning.md)",
    )
    tune_sub = tune.add_subparsers(dest="tune_command", required=True)

    passport = tune_sub.add_parser(
        "passport",
        help="per-dataset sanity statistics for a workload profile",
    )
    add_profile_argument(passport, default="small")
    passport.add_argument("--smoke", action="store_true",
                          help="use the profile's smoke-sized workloads")
    passport.add_argument("--out-dir", type=Path,
                          default=Path("benchmarks/output/passports"),
                          help="directory for the per-dataset passport "
                               "JSONs and the summary CSV")
    passport.add_argument("--artifact", type=Path, default=None,
                          help="also write a BENCH-style artifact for the "
                               "trend ledger (e.g. benchmarks/output/"
                               "BENCH_passports.json)")

    sweep = tune_sub.add_parser(
        "sweep",
        help="grid sweep over a committed tune_grid.yaml; elects one "
             "best_config per network",
    )
    sweep.add_argument("--grid", type=Path, required=True,
                       help="grid document (tune_grid.yaml)")
    add_profile_argument(sweep, default="small")
    sweep.add_argument("--smoke", action="store_true",
                       help="use the profile's smoke-sized workloads")
    sweep.add_argument("--out-dir", type=Path,
                       default=Path("benchmarks/output/tuning"),
                       help="directory for sweep CSVs, best_config/ and "
                            "RESULTS_tuning.md")
    sweep.add_argument("--artifact", type=Path,
                       default=Path("benchmarks/output/BENCH_tune_sweep.json"),
                       help="BENCH-style sweep artifact path")
    sweep.add_argument("--append-history", action="store_true",
                       help="append the sweep artifact to the bench trend "
                            "ledger, labeled with the profile")

    reproduce = tune_sub.add_parser(
        "reproduce",
        help="replay a committed best_config on its recorded workload "
             "and verify the cluster digest byte-for-byte",
    )
    reproduce.add_argument("--best", type=Path, required=True,
                           help="best_config JSON written by tune sweep")

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(args.log_level, json_lines=args.log_json)
    handler = {
        "generate-network": _cmd_generate,
        "stats": _cmd_stats,
        "simulate": _cmd_simulate,
        "cluster": _cmd_cluster,
        "serve": _cmd_serve,
        "shard-node": _cmd_shard_node,
        "recover": _cmd_recover,
        "experiment": _cmd_experiment,
        "tune": _cmd_tune,
    }[args.command]
    return handler(args)


def _cmd_generate(args: argparse.Namespace) -> int:
    network = REGION_PRESETS[args.region](scale=args.scale, seed=args.seed)
    save_network(network, args.out)
    stats = network_stats(network)
    print(f"wrote {args.out}: {stats.junction_count} junctions, "
          f"{stats.segment_count} segments, {stats.total_length_km:.1f} km")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    print(format_table1([network_stats(network)]))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    name = args.name or f"{network.name}-{args.objects}"
    dataset = simulate_dataset(
        network,
        SimulationConfig(
            object_count=args.objects,
            sample_interval=args.interval,
            hotspot_count=args.hotspots,
            destination_count=args.destinations,
            seed=args.seed,
            name=name,
        ),
    )
    save_dataset(dataset, args.out)
    print(f"wrote {args.out}: {len(dataset)} trajectories, "
          f"{dataset.total_points} points")
    return 0


def _start_obs_plane(args: argparse.Namespace, telemetry):
    """The run-scoped observability extras: HTTP plane and profiler."""
    obs_server = None
    if getattr(args, "obs_port", None) is not None:
        from .obs.server import ObservabilityServer

        obs_server = ObservabilityServer(telemetry, port=args.obs_port).start()
        print(f"observability plane at {obs_server.url}", file=sys.stderr)
    profiler = None
    if getattr(args, "profile_hz", 0.0) > 0.0:
        from .obs.profile import SamplingProfiler, phase_from_tracer

        profiler = SamplingProfiler(
            hz=args.profile_hz, phase=phase_from_tracer(telemetry.tracer)
        ).start()
    return obs_server, profiler


def _finish_obs_plane(
    args: argparse.Namespace, telemetry, obs_server, profiler
) -> None:
    """Stop the run-scoped extras and write the requested exports."""
    log = get_logger("cli")
    if profiler is not None:
        profiler.stop()
        if args.profile_out is not None:
            profiler.save(args.profile_out)
            log.info(
                "profile written",
                path=str(args.profile_out), samples=profiler.samples,
            )
    if obs_server is not None:
        obs_server.stop()
    if args.trace_out is not None:
        from .obs.export import save_chrome_trace

        save_chrome_trace(telemetry.tracer, args.trace_out)
        log.info("chrome trace written", path=str(args.trace_out))
    if args.folded_out is not None:
        from .obs.export import save_folded

        save_folded(telemetry.tracer, args.folded_out)
        log.info("folded stacks written", path=str(args.folded_out))


def _cmd_cluster(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    dataset = load_dataset(args.traces)
    if args.config_file is not None:
        from .tune.sweep import best_config_to_neat

        config = best_config_to_neat(
            json.loads(args.config_file.read_text(encoding="utf-8"))
        )
    else:
        config = NEATConfig(
            wq=args.wq, wk=args.wk, wv=args.wv,
            eps=args.eps, min_card=args.min_card, use_elb=not args.no_elb,
            workers=args.workers, sp_backend=args.sp_backend,
            sp_oracle=args.sp_oracle, use_llb=args.llb,
            vector_backend=args.vector_backend,
            llb_landmarks=max(1, args.llb_landmarks),
            max_retries=args.max_retries, deadline_s=args.deadline_s,
            max_pending=args.max_pending,
            checkpoint_every=max(0, args.checkpoint_every),
        )
    telemetry = Telemetry.create()
    obs_server, profiler = _start_obs_plane(args, telemetry)
    try:
        if args.batch_size is not None:
            return _cluster_streaming(args, network, dataset, config, telemetry)
        pipeline = NEAT(network, config, telemetry=telemetry)
        if args.state_dir is not None:
            result = pipeline.run_resumable(
                dataset, mode=args.mode, state_dir=args.state_dir
            )
        else:
            result = pipeline.run(dataset, mode=args.mode)
    finally:
        _finish_obs_plane(args, telemetry, obs_server, profiler)
    if args.metrics_out is not None:
        telemetry.save(args.metrics_out)
        get_logger("cli").info("metrics written", path=str(args.metrics_out))
    if args.svg is not None:
        from .analysis.visualize import render_svg

        render_svg(
            network, args.svg,
            flows=result.flows, clusters=result.clusters,
        )
    if args.json:
        # Machine-readable mode: stdout carries exactly one JSON document.
        print(json.dumps(result_to_dict(result, network_name=network.name)))
        return 0
    print(result.summary())
    for index, flow in enumerate(result.flows[:10]):
        print(f"  flow {index}: {len(flow)} segments, "
              f"{flow.trajectory_cardinality} trajectories, "
              f"{flow.route_length:.0f} m")
    if args.svg is not None:
        print(f"wrote {args.svg}")
    return 0


def _cluster_streaming(
    args: argparse.Namespace, network, dataset, config, telemetry
) -> int:
    """``cluster --batch-size N``: crash-safe streaming ingest.

    With ``--state-dir``, every batch is journaled before being
    acknowledged and a killed run resumes exactly after the last durable
    batch (already-ingested chunks are skipped by count — the batch
    split is deterministic, so chunk ``i`` is chunk ``i`` on every run).
    """
    from .core.incremental import IncrementalNEAT
    from .errors import PersistenceError

    trajectories = list(dataset.trajectories)
    size = max(1, args.batch_size)
    chunks = [
        trajectories[i : i + size] for i in range(0, len(trajectories), size)
    ]
    try:
        if args.state_dir is not None:
            clusterer = IncrementalNEAT.recover(
                Path(args.state_dir) / "incremental", network, config,
                telemetry=telemetry,
            )
        else:
            clusterer = IncrementalNEAT(network, config, telemetry=telemetry)
        resumed = clusterer.batch_count
        for chunk in chunks[resumed:]:
            clusterer.add_batch(chunk, auto_offset_ids=True)
        if args.state_dir is not None and clusterer.batch_count:
            clusterer.checkpoint()
    except PersistenceError as error:
        print(f"persistence failure: {error}", file=sys.stderr)
        return 1
    result = clusterer.snapshot_result()
    if args.metrics_out is not None:
        telemetry.save(args.metrics_out)
    if args.json:
        print(json.dumps(result_to_dict(result, network_name=network.name)))
        return 0
    print(
        f"ingested {clusterer.batch_count} batch(es) "
        f"({resumed} resumed, {len(chunks) - resumed} new): "
        f"{len(result.flows)} flows, {len(result.clusters)} clusters"
    )
    return 0


def _install_shutdown_handlers():
    """SIGTERM/SIGINT -> a shutdown event (graceful-drain trigger).

    Returns the event; the previous handlers are replaced for the rest
    of the process (the CLI exits right after serving anyway).  Signal
    handlers can only be installed from the main thread — embedders
    calling :func:`main` from a worker thread get the event without
    them (their own interpreter keeps signal ownership).
    """
    import signal
    import threading

    shutdown = threading.Event()

    def _request_shutdown(signum: int, frame: object) -> None:
        shutdown.set()

    try:
        signal.signal(signal.SIGTERM, _request_shutdown)
        signal.signal(signal.SIGINT, _request_shutdown)
    except ValueError:  # not the main thread
        pass
    return shutdown


def _serve_wait(args: argparse.Namespace, shutdown) -> None:
    """Block until ``--duration`` elapses or a shutdown signal arrives."""
    try:
        if args.duration is None:
            while not shutdown.wait(timeout=3600.0):
                pass
        elif args.duration > 0:
            shutdown.wait(timeout=args.duration)
    except KeyboardInterrupt:
        pass


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: a NeatService plus its HTTP observability plane.

    Starts the plane first (so supervisors can probe ``/health`` during
    startup ingest), then ingests ``--traces`` in batches, then serves
    until ``--duration`` elapses or the process is interrupted.  SIGTERM
    and SIGINT shut down gracefully: pending ingests are drained, a
    final checkpoint is taken when ``--state-dir`` is set, and the
    process exits 0.

    With ``--shards N`` the distributed tier runs instead: N local
    shard-node worker processes, region sharding over a consistent-hash
    ring, and the clustering dispatched over the TCP wire protocol.
    """
    if args.shards:
        return _serve_distributed(args)

    from .distributed.service import NeatService
    from .errors import ReproError

    network = load_network(args.network)
    config = NEATConfig(
        eps=args.eps,
        min_card=args.min_card,
        checkpoint_every=max(0, args.checkpoint_every),
        slo_ingest_p99_s=args.slo_ingest_p99,
        slo_query_p99_s=args.slo_query_p99,
    )
    service = NeatService(network, config, state_dir=args.state_dir)
    shutdown = _install_shutdown_handlers()
    obs = service.serve_obs(port=args.obs_port, host=args.obs_host)
    print(f"observability plane at {obs.url}", flush=True)
    if args.port_file is not None:
        args.port_file.parent.mkdir(parents=True, exist_ok=True)
        args.port_file.write_text(f"{obs.port}\n")
    try:
        if args.traces is not None:
            dataset = load_dataset(args.traces)
            trajectories = list(dataset.trajectories)
            size = max(1, args.batch_size)
            try:
                for start in range(0, len(trajectories), size):
                    if shutdown.is_set():
                        break
                    service.submit(trajectories[start : start + size])
            except ReproError as error:
                print(f"startup ingest failed: {error}", file=sys.stderr)
                return 1
            stats = service.stats()
            print(
                f"ingested {stats.batches_ingested} batch(es), "
                f"{stats.trajectories_ingested} trajectories: "
                f"{stats.flow_count} flows, {stats.cluster_count} clusters",
                flush=True,
            )
        _serve_wait(args, shutdown)
    finally:
        # Graceful drain: retry anything still queued, make the state
        # durable, then leave 0 — a supervisor's TERM is not an error.
        try:
            if service.pending_batches:
                service.flush_pending()
        except Exception as error:
            print(f"shutdown drain failed: {error}", file=sys.stderr)
        if args.state_dir is not None:
            try:
                service.checkpoint()
            except Exception as error:
                print(f"final checkpoint failed: {error}", file=sys.stderr)
        service.stop_obs()
        if shutdown.is_set():
            print("shut down gracefully", flush=True)
    return 0


def _cmd_shard_node(args: argparse.Namespace) -> int:
    """``repro shard-node``: one worker process of the distributed tier.

    Serves the wire protocol until a ``shutdown`` op or SIGTERM/SIGINT,
    publishing its bound port through ``--port-file`` (written
    atomically, so the spawner never reads a half-written port).
    """
    import os
    import signal

    from .distributed.transport import ShardNodeServer

    network = load_network(args.network)
    server = ShardNodeServer(
        network, node_id=args.node_id, host=args.host, port=args.port
    )
    server.start()

    def _request_shutdown(signum: int, frame: object) -> None:
        server.request_shutdown()

    signal.signal(signal.SIGTERM, _request_shutdown)
    signal.signal(signal.SIGINT, _request_shutdown)
    if args.port_file is not None:
        args.port_file.parent.mkdir(parents=True, exist_ok=True)
        temp = args.port_file.with_name(args.port_file.name + ".tmp")
        temp.write_text(f"{server.port}\n", encoding="utf-8")
        os.replace(temp, args.port_file)
    print(
        f"shard node {args.node_id} listening on {server.address}",
        flush=True,
    )
    server.serve_until_shutdown()
    print(f"shard node {args.node_id} stopped", flush=True)
    return 0


def _serve_distributed(args: argparse.Namespace) -> int:
    """``repro serve --shards N``: the real multi-process distributed tier.

    Spawns N shard-node workers, shards ``--traces`` by map region over
    the consistent-hash ring, runs Phase 1 on the workers through the
    wire protocol (retry -> ring rebalance -> re-dispatch on failure)
    and Phases 2-3 centrally.  The result is byte-identical to a serial
    run, or explicitly degraded (``dropped_shards`` / exit 3 on
    ``QuorumLost``) — never silently partial.
    """
    import tempfile

    from .distributed.nodes import NeatCoordinator
    from .distributed.shardmap import RegionShardMap
    from .distributed.transport import (
        RemoteDataNode,
        TransportClient,
        spawn_local_shards,
        stop_shards,
    )
    from .errors import QuorumLost, ReproError
    from .obs.server import ObservabilityServer
    from .resilience import FaultInjector, FaultPlan

    network = load_network(args.network)
    config = NEATConfig(eps=args.eps, min_card=args.min_card)
    telemetry = Telemetry.create()
    faults = FaultInjector()
    if args.fault_spec:
        spec_text = args.fault_spec
        if spec_text.startswith("@"):
            spec_text = Path(spec_text[1:]).read_text(encoding="utf-8")
        for operation, fields in json.loads(spec_text).items():
            faults.arm(operation, FaultPlan(**fields))

    shutdown = _install_shutdown_handlers()
    cleanup_dir = None
    if args.shard_dir is not None:
        shard_dir = args.shard_dir
    else:
        cleanup_dir = tempfile.TemporaryDirectory(prefix="repro-shards-")
        shard_dir = Path(cleanup_dir.name)
    shards = spawn_local_shards(
        args.network, args.shards, work_dir=shard_dir, log_dir=shard_dir,
        startup_timeout_s=args.shard_startup_timeout,
    )
    nodes = [
        RemoteDataNode(
            shard.node_id,
            TransportClient(
                shard.host, shard.port,
                timeout_s=args.rpc_timeout,
                faults=faults,
                fault_operation=f"transport.node{shard.node_id}",
                metrics=telemetry.metrics,
                pool_size=args.pool_size,
            ),
        )
        for shard in shards
    ]
    shardmap = RegionShardMap(network, [shard.node_id for shard in shards])
    coordinator = NeatCoordinator(
        network, config,
        nodes=nodes, shardmap=shardmap,
        telemetry=telemetry, min_quorum=args.min_quorum,
        remote_phase3=args.remote_phase3,
    )

    def statusz() -> dict:
        return {
            "shards": coordinator.shard_table(),
            "ring": {
                "nodes": list(shardmap.ring.node_ids),
                "rebalances": shardmap.rebalances,
            },
            "network": {
                "name": network.name,
                "junctions": network.junction_count,
                "segments": network.segment_count,
            },
        }

    obs = ObservabilityServer(
        telemetry, statusz=statusz, host=args.obs_host, port=args.obs_port
    ).start()
    print(f"observability plane at {obs.url}", flush=True)
    print(
        f"spawned {len(shards)} shard node(s): "
        + ", ".join(s.address for s in shards),
        flush=True,
    )
    if args.port_file is not None:
        args.port_file.parent.mkdir(parents=True, exist_ok=True)
        args.port_file.write_text(f"{obs.port}\n")

    exit_code = 0
    try:
        if args.traces is not None:
            dataset = load_dataset(args.traces)
            result = None
            try:
                result = coordinator.run(
                    list(dataset.trajectories), mode=args.mode
                )
            except QuorumLost as error:
                print(f"quorum lost: {error}", file=sys.stderr)
                exit_code = 3
            except ReproError as error:
                print(f"distributed run failed: {error}", file=sys.stderr)
                exit_code = 1
            if result is not None:
                print(
                    f"clustered {len(dataset)} trajectories over "
                    f"{len(shards)} shard(s): {len(result.flows)} flows, "
                    f"{len(result.clusters)} clusters, "
                    f"dropped_shards={result.dropped_shards}",
                    flush=True,
                )
                if args.result_out is not None:
                    args.result_out.parent.mkdir(parents=True, exist_ok=True)
                    args.result_out.write_text(
                        json.dumps(
                            result_to_dict(result, network_name=network.name),
                            sort_keys=True,
                        ) + "\n",
                        encoding="utf-8",
                    )
        if args.counters_out is not None:
            counters = {
                instrument.name: (
                    int(instrument.value)
                    if float(instrument.value).is_integer()
                    else instrument.value
                )
                for instrument in telemetry.metrics
                if instrument.kind == "counter"
            }
            args.counters_out.parent.mkdir(parents=True, exist_ok=True)
            args.counters_out.write_text(
                json.dumps(counters, sort_keys=True, indent=2) + "\n",
                encoding="utf-8",
            )
        _serve_wait(args, shutdown)
    finally:
        for node in nodes:
            node.client.close()
        stop_shards(shards)
        obs.stop()
        if cleanup_dir is not None:
            cleanup_dir.cleanup()
        if shutdown.is_set():
            print("shut down gracefully", flush=True)
    return exit_code


def _cmd_recover(args: argparse.Namespace) -> int:
    from .core.incremental import IncrementalNEAT
    from .errors import PersistenceError

    network = load_network(args.network)
    try:
        clusterer = IncrementalNEAT.recover(
            Path(args.state_dir) / "incremental", network
        )
    except PersistenceError as error:
        print(f"recovery failed: {error}", file=sys.stderr)
        return 1
    result = clusterer.snapshot_result()
    if args.json:
        print(json.dumps(result_to_dict(result, network_name=network.name)))
        return 0
    print(
        f"recovered {clusterer.batch_count} batch(es) from {args.state_dir}: "
        f"{len(result.flows)} flows, {len(result.clusters)} clusters"
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import figures

    out_dir = args.out_dir
    out_dir.mkdir(parents=True, exist_ok=True)
    runners = {
        "table1": lambda: figures.run_table1(),
        "table2": lambda: figures.run_table2(),
        "table3": lambda: figures.run_table3(),
        "fig3": lambda: figures.run_fig3(out_dir=out_dir),
        "fig4": lambda: figures.run_fig4(),
        "fig5": lambda: figures.run_fig5(),
        "fig6": lambda: figures.run_fig6(),
        "fig7": lambda: figures.run_fig7(),
        "variant": lambda: figures.run_variant(),
    }
    selected = list(runners) if args.id == "all" else [args.id]
    for experiment_id in selected:
        result = runners[experiment_id]()
        text = result.render()
        print(f"===== {experiment_id} =====")
        print(text)
        print()
        (out_dir / f"{experiment_id}.txt").write_text(text + "\n")
    print(f"wrote {len(selected)} report(s) to {out_dir}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    """``repro tune``: passports, grid sweeps and best_config replay."""
    handler = {
        "passport": _cmd_tune_passport,
        "sweep": _cmd_tune_sweep,
        "reproduce": _cmd_tune_reproduce,
    }[args.tune_command]
    return handler(args)


def _cmd_tune_passport(args: argparse.Namespace) -> int:
    from .tune.passport import (
        build_passport,
        passports_artifact,
        summary_csv,
        write_passport,
    )
    from .tune.profiles import resolve_profile

    profile = resolve_profile(args.profile)
    documents = []
    for spec in profile.resolved_specs(smoke=args.smoke):
        document = build_passport(spec, profile=profile.name)
        path = write_passport(
            document, args.out_dir / f"passport_{spec.name}.json"
        )
        print(
            f"wrote {path}: {document['dataset']['trajectories']} "
            f"trajectories, {document['dataset']['total_points']} points, "
            f"{document['network']['segments']} segments"
        )
        documents.append(document)
    summary_path = args.out_dir / "passport_summary.csv"
    summary_path.write_text(summary_csv(documents), encoding="utf-8")
    print(f"wrote {summary_path}")
    if args.artifact is not None:
        artifact = passports_artifact(documents, profile.name)
        args.artifact.parent.mkdir(parents=True, exist_ok=True)
        args.artifact.write_text(
            json.dumps(artifact, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.artifact}")
    return 0


def _cmd_tune_sweep(args: argparse.Namespace) -> int:
    from .tune.sweep import run_sweep

    summary = run_sweep(
        args.grid, args.profile, args.out_dir, smoke=args.smoke
    )
    reports = summary.pop("reports")
    for report in reports:
        if report["best_index"] is None:
            print(
                f"{report['region']}: no configuration met the guardrails "
                f"(0/{report['grid_configs']} qualified)", file=sys.stderr,
            )
            continue
        best = report["best_config"]
        print(
            f"{report['region']}: best grid point {report['best_index']} "
            f"score={best['score']:g} clusters={best['metrics']['clusters']} "
            f"-> {args.out_dir / 'best_config' / (report['region'] + '.json')}"
        )
    args.artifact.parent.mkdir(parents=True, exist_ok=True)
    args.artifact.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.artifact}")
    if args.append_history:
        bench_dir = Path(__file__).resolve().parent.parent.parent / "benchmarks"
        if str(bench_dir) not in sys.path:
            sys.path.insert(0, str(bench_dir))
        import bench_history

        entry = bench_history.append_entry(
            args.artifact, workload=args.profile, profile=args.profile
        )
        print(
            f"appended tune_sweep ({entry['workload']}) @ "
            f"{entry['git_sha']} to the bench ledger"
        )
    # Every region must elect a winner for the sweep to count as green.
    return 0 if all(r["best_index"] is not None for r in reports) else 1


def _cmd_tune_reproduce(args: argparse.Namespace) -> int:
    from .tune.sweep import reproduce_best_config

    document = json.loads(args.best.read_text(encoding="utf-8"))
    matches, digest = reproduce_best_config(document)
    if not matches:
        print(
            f"digest mismatch: committed {document['digest']} but replay "
            f"produced {digest}", file=sys.stderr,
        )
        return 1
    print(
        f"reproduced {document['region']} best_config byte-identically "
        f"(digest {digest[:16]}…)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
