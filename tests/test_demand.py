"""Tests for time-varying demand profiles."""

from __future__ import annotations

import pytest

from repro.mobisim.demand import DemandProfile, DemandWindow, simulate_demand
from repro.roadnet.generators import GridConfig, generate_grid_network


@pytest.fixture(scope="module")
def net():
    return generate_grid_network(GridConfig(rows=9, cols=9, seed=55))


class TestDemandWindow:
    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            DemandWindow(100.0, 100.0, 5)

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            DemandWindow(0.0, 10.0, -1)


class TestDemandProfile:
    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            DemandProfile(
                windows=(
                    DemandWindow(0.0, 100.0, 5),
                    DemandWindow(50.0, 150.0, 5),
                )
            )

    def test_commuter_day_shape(self):
        profile = DemandProfile.commuter_day(
            peak_objects=100, offpeak_objects=20
        )
        assert len(profile.windows) == 3
        assert [w.object_count for w in profile.windows] == [100, 20, 100]
        assert profile.total_objects == 220

    def test_gaps_between_windows_allowed(self):
        profile = DemandProfile(
            windows=(
                DemandWindow(0.0, 100.0, 2),
                DemandWindow(500.0, 600.0, 2),
            )
        )
        assert profile.total_objects == 4


class TestSimulateDemand:
    def test_contiguous_ids(self, net):
        profile = DemandProfile.commuter_day(
            peak_objects=15, offpeak_objects=5, window_seconds=600.0
        )
        dataset = simulate_demand(net, profile)
        assert [tr.trid for tr in dataset] == list(range(len(dataset)))

    def test_departures_inside_windows(self, net):
        profile = DemandProfile(
            windows=(
                DemandWindow(0.0, 300.0, 10),
                DemandWindow(1000.0, 1300.0, 10),
            ),
            seed=3,
        )
        dataset = simulate_demand(net, profile)
        starts = sorted(tr.start.t for tr in dataset)
        early = [t for t in starts if t < 500.0]
        late = [t for t in starts if t >= 1000.0]
        assert len(early) + len(late) == len(dataset)
        assert early and late
        for t in late:
            assert 1000.0 <= t <= 1300.0

    def test_zero_count_window_skipped(self, net):
        profile = DemandProfile(
            windows=(
                DemandWindow(0.0, 100.0, 5),
                DemandWindow(100.0, 200.0, 0),
            ),
            seed=4,
        )
        dataset = simulate_demand(net, profile)
        assert all(tr.start.t < 100.0 for tr in dataset)

    def test_reshuffle_changes_layout_between_windows(self, net):
        profile = DemandProfile(
            windows=(
                DemandWindow(0.0, 300.0, 20, seed_offset=0),
                DemandWindow(400.0, 700.0, 20, seed_offset=1),
            ),
            seed=5,
            reshuffle_layout=True,
        )
        dataset = simulate_demand(net, profile)
        first = {tr.segment_ids()[0] for tr in dataset if tr.start.t < 300.0}
        second = {tr.segment_ids()[0] for tr in dataset if tr.start.t >= 400.0}
        assert first != second  # different hotspot neighbourhoods

    def test_deterministic(self, net):
        profile = DemandProfile.commuter_day(
            peak_objects=10, offpeak_objects=5, window_seconds=300.0, seed=6
        )
        a = simulate_demand(net, profile)
        b = simulate_demand(net, profile)
        assert a.total_points == b.total_points
        for ta, tb in zip(a, b):
            assert ta == tb

    def test_feeds_timeslice_cleanly(self, net):
        from repro.core.config import NEATConfig
        from repro.core.timeslice import time_sliced_clustering

        profile = DemandProfile.commuter_day(
            peak_objects=20, offpeak_objects=5, window_seconds=600.0, seed=7
        )
        dataset = simulate_demand(net, profile)
        slices = time_sliced_clustering(
            net, list(dataset), window=600.0, config=NEATConfig(min_card=0)
        )
        assert len(slices) == 3
        counts = [s.trajectory_count for s in slices]
        assert counts[0] > counts[1] < counts[2]  # rush, lull, rush
