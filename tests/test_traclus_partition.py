"""Unit tests for TraClus MDL-based partitioning."""

from __future__ import annotations

from repro.core.model import Location, Trajectory
from repro.roadnet.geometry import Point
from repro.traclus.partition import (
    characteristic_points,
    partition_all,
    partition_trajectory,
)


def traj(points, trid=0) -> Trajectory:
    return Trajectory(
        trid,
        tuple(
            Location(0, x, y, float(i)) for i, (x, y) in enumerate(points)
        ),
    )


class TestCharacteristicPoints:
    def test_straight_line_keeps_endpoints_only(self):
        points = [Point(x * 10.0, 0.0) for x in range(20)]
        indices = characteristic_points(points)
        assert indices[0] == 0
        assert indices[-1] == len(points) - 1
        # A perfectly straight path compresses to very few points.
        assert len(indices) <= 3

    def test_sharp_turn_detected(self):
        out = [Point(x * 10.0, 0.0) for x in range(10)]
        back = [Point(90.0, (i + 1) * 10.0) for i in range(10)]
        indices = characteristic_points(out + back)
        # The corner (index 9) or its immediate neighbour must be kept.
        assert any(8 <= i <= 10 for i in indices[1:-1])

    def test_two_points(self):
        assert characteristic_points([Point(0, 0), Point(1, 1)]) == [0, 1]

    def test_single_point(self):
        assert characteristic_points([Point(0, 0)]) == [0]

    def test_indices_strictly_increasing(self):
        import math

        points = [
            Point(t * 10.0, 40.0 * math.sin(t / 2.0)) for t in range(30)
        ]
        indices = characteristic_points(points)
        assert all(a < b for a, b in zip(indices, indices[1:]))


class TestPartitionTrajectory:
    def test_segments_cover_endpoints(self):
        tr = traj([(x * 10.0, 0.0) for x in range(10)])
        segments = partition_trajectory(tr)
        assert segments
        assert segments[0].start == Point(0.0, 0.0)
        assert segments[-1].end == Point(90.0, 0.0)

    def test_segments_carry_trid(self):
        tr = traj([(0, 0), (10, 0), (20, 0)], trid=42)
        for segment in partition_trajectory(tr):
            assert segment.trid == 42

    def test_consecutive_segments_connect(self):
        out = [(x * 10.0, 0.0) for x in range(10)]
        back = [(90.0, (i + 1) * 10.0) for i in range(10)]
        segments = partition_trajectory(traj(out + back))
        for a, b in zip(segments, segments[1:]):
            assert a.end == b.start

    def test_duplicate_points_skipped(self):
        tr = traj([(0, 0), (0, 0), (10, 0), (10, 0), (20, 0)])
        segments = partition_trajectory(tr)
        for segment in segments:
            assert segment.length > 0.0

    def test_all_duplicates_yields_nothing(self):
        tr = traj([(5, 5), (5, 5), (5, 5)])
        assert partition_trajectory(tr) == []


class TestPartitionAll:
    def test_concatenates(self):
        trs = [traj([(0, 0), (10, 0)], trid=0), traj([(0, 5), (10, 5)], trid=1)]
        segments = partition_all(trs)
        assert {s.trid for s in segments} == {0, 1}
