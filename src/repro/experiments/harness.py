"""Experiment harness helpers: timing and text-table rendering.

Every benchmark module regenerates one of the paper's tables/figures and
prints a "paper vs measured" text table; the helpers here keep that output
consistent and the timing methodology in one place.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def timed(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` once, returning ``(result, wall_seconds)``."""
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def format_table(header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width text table with a separator under the header."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    all_rows = [list(header)] + text_rows
    widths = [
        max(len(row[i]) for row in all_rows) for i in range(len(header))
    ]
    lines = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(all_rows[0])),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    lines.extend(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in text_rows
    )
    return "\n".join(lines)


def format_seconds(seconds: float) -> str:
    """Human-friendly duration with sensible precision."""
    if seconds < 0.01:
        return f"{seconds * 1000:.2f}ms"
    if seconds < 10.0:
        return f"{seconds:.3f}s"
    return f"{seconds:.1f}s"


def banner(title: str) -> str:
    """A section banner for benchmark output."""
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"
