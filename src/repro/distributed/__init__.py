"""Distributed preprocessing substrate (the paper's Section II-C sketch).

The NEAT system "distributes trajectory datasets across multiple nodes in
a cluster.  These data nodes can perform some data preprocessing tasks."
This package simulates that 3-tier deployment in-process: data nodes run
Phase 1 over their trajectory shards, the coordinator merges the partial
base clusters (base-cluster formation is a group-by, so the merge is
exact) and runs Phases 2-3 centrally.

The tier is fault-tolerant: dispatches retry under
:class:`~repro.resilience.RetryPolicy`, dead nodes are tracked and their
shards re-dispatched (or reported in ``NEATResult.dropped_shards``), and
the :class:`NeatService` facade adds admission control, per-call
deadlines, a circuit breaker and degraded-mode (stale-snapshot) serving.
See ``docs/robustness.md``.
"""

from .nodes import DataNode, NeatCoordinator, merge_base_clusters, shard_round_robin
from .service import NeatService, ServiceStats

__all__ = [
    "DataNode",
    "NeatCoordinator",
    "NeatService",
    "ServiceStats",
    "merge_base_clusters",
    "shard_round_robin",
]
