"""Phase 2: flow cluster formation.

Implements Section III-B of the paper.  Starting from the dense-core of
the base-cluster list, flows are grown by repeatedly selecting, at each
open end, the f-neighbor with the highest *merging selectivity*
``SF = wq*q + wk*k + wv*v`` (Definitions 9/10), subject to the domination
rule of Section III-B2: when the netflow between two f-neighbors of the
frontier cluster dominates its maxFlow by a factor ``β``, those two
neighbors are withheld (they will anchor their own, stronger flow later)
and selection restarts with the reduced neighborhood.  Exhausted seeds are
followed by the next densest unassigned cluster until the pool empties;
flows under the ``minCard`` trajectory-cardinality threshold are split off
as noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from ..roadnet.network import RoadNetwork
from .base_cluster import BaseCluster, netflow
from .config import NEATConfig
from .flow_cluster import FlowCluster
from .neighborhood import BaseClusterPool


@dataclass
class FlowFormationResult:
    """Output of Phase 2.

    Attributes:
        flows: Flow clusters meeting the ``minCard`` threshold, in
            formation order (densest seed first).
        noise_flows: Flows filtered out by ``minCard``.
        min_card_used: The threshold actually applied (resolved from the
            config, or the mean cardinality when the config leaves it
            automatic).
    """

    flows: list[FlowCluster] = field(default_factory=list)
    noise_flows: list[FlowCluster] = field(default_factory=list)
    min_card_used: int = 0

    @property
    def all_flows(self) -> list[FlowCluster]:
        """Every formed flow, kept and noise alike, in formation order."""
        combined = self.flows + self.noise_flows
        return combined


def form_flow_clusters(
    network: RoadNetwork,
    base_clusters: Sequence[BaseCluster],
    config: NEATConfig | None = None,
    seed_strategy: str = "density",
    seed_rng=None,
    metrics=None,
) -> FlowFormationResult:
    """Run Phase 2 over a base-cluster list.

    Args:
        network: The road network.
        base_clusters: Phase 1 output (any order; the pool re-sorts).
        config: NEAT parameters; defaults to :class:`NEATConfig`'s defaults.
        seed_strategy: ``"density"`` (the paper's dense-core-first order,
            deterministic) or ``"random"`` (ablation only; requires
            ``seed_rng``).
        seed_rng: ``random.Random`` driving the ``"random"`` strategy.
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when given, the ``neat.phase2.*`` counters are published.

    Returns:
        The formed flows partitioned by the ``minCard`` filter.
    """
    if config is None:
        config = NEATConfig()
    if seed_strategy not in ("density", "random"):
        raise ValueError(f"unknown seed strategy {seed_strategy!r}")
    if seed_strategy == "random" and seed_rng is None:
        raise ValueError("seed_strategy='random' requires seed_rng")
    pool = BaseClusterPool(network, base_clusters)
    formed: list[FlowCluster] = []
    while pool:
        if seed_strategy == "density":
            seed = pool.pop_densest()
        else:
            seed = pool.pop_random(seed_rng)
        flow = FlowCluster(network, seed)
        _expand(flow, pool, config, at_end=True)
        _expand(flow, pool, config, at_end=False)
        formed.append(flow)

    min_card = config.min_card
    if min_card is None:
        if formed:
            mean = sum(f.trajectory_cardinality for f in formed) / len(formed)
            min_card = max(1, round(mean))
        else:
            min_card = 0

    result = FlowFormationResult(min_card_used=min_card)
    for flow in formed:
        if flow.trajectory_cardinality >= min_card:
            result.flows.append(flow)
        else:
            result.noise_flows.append(flow)
    if metrics is not None:
        metrics.counter(
            "neat.phase2.flows_formed", "Flow clusters grown in Phase 2"
        ).inc(len(formed))
        metrics.counter(
            "neat.phase2.merges",
            "Base clusters merged into an existing flow (appends + prepends)",
        ).inc(sum(len(flow.members) - 1 for flow in formed))
        metrics.counter(
            "neat.phase2.flows_kept", "Flows meeting the minCard threshold"
        ).inc(len(result.flows))
        metrics.counter(
            "neat.phase2.min_card_drops", "Flows filtered out by minCard"
        ).inc(len(result.noise_flows))
        metrics.gauge(
            "neat.phase2.min_card_used", "The resolved minCard threshold"
        ).set(min_card)
    return result


def _expand(
    flow: FlowCluster, pool: BaseClusterPool, config: NEATConfig, at_end: bool
) -> None:
    """Grow one end of ``flow`` until its frontier has no f-neighbor."""
    while True:
        frontier = flow.members[-1] if at_end else flow.members[0]
        node = flow.end_node if at_end else flow.front_node
        candidates = pool.f_neighbors_at(frontier, node)
        candidates = _apply_domination(frontier, candidates, config.beta)
        if not candidates:
            return
        chosen = _select_candidate(frontier, flow, candidates, config)
        pool.remove(chosen)
        if at_end:
            flow.append(chosen)
        else:
            flow.prepend(chosen)


def _apply_domination(
    frontier: BaseCluster, candidates: list[BaseCluster], beta: float
) -> list[BaseCluster]:
    """Remove f-neighbor pairs whose mutual netflow dominates the maxFlow.

    Section III-B2: if ``f(S_i, S_j) / maxFlow(S) >= β`` for two
    f-neighbors ``S_i, S_j`` of the frontier ``S``, both are removed and
    the check restarts on the reduced neighborhood.  With ``β = inf`` the
    neighborhood is returned untouched.
    """
    if math.isinf(beta) or len(candidates) < 2:
        return candidates
    remaining = list(candidates)
    while len(remaining) >= 2:
        max_flow = max(netflow(frontier, c) for c in remaining)
        if max_flow <= 0:
            break
        dominated_pair: tuple[BaseCluster, BaseCluster] | None = None
        for i in range(len(remaining)):
            for j in range(i + 1, len(remaining)):
                mutual = netflow(remaining[i], remaining[j])
                if mutual > 0 and mutual / max_flow >= beta:
                    dominated_pair = (remaining[i], remaining[j])
                    break
            if dominated_pair:
                break
        if dominated_pair is None:
            break
        remaining = [c for c in remaining if c not in dominated_pair]
    return remaining


def _select_candidate(
    frontier: BaseCluster,
    flow: FlowCluster,
    candidates: list[BaseCluster],
    config: NEATConfig,
) -> BaseCluster:
    """Pick the candidate with the highest merging selectivity (Def. 10).

    The factor denominators follow Definition 9, computed over the current
    (post-domination) neighborhood.  Ties break on the netflow with the
    whole flow cluster (the paper's "consider the netflows between the flow
    cluster under consideration ... and the candidate base clusters"), then
    on netflow with the frontier, density, and finally sid.
    """
    network = flow.network
    cardinality = max(1, frontier.trajectory_cardinality)
    density_denominator = frontier.density + sum(c.density for c in candidates)
    speed_denominator = sum(network.segment(c.sid).speed_limit for c in candidates)

    best: BaseCluster | None = None
    best_key: tuple[float, int, int, int, int] | None = None
    for candidate in candidates:
        q = netflow(frontier, candidate) / cardinality
        k = candidate.density / density_denominator if density_denominator else 0.0
        v = (
            network.segment(candidate.sid).speed_limit / speed_denominator
            if speed_denominator
            else 0.0
        )
        selectivity = config.wq * q + config.wk * k + config.wv * v
        key = (
            selectivity,
            flow.netflow_with(candidate),
            netflow(frontier, candidate),
            candidate.density,
            -candidate.sid,
        )
        if best_key is None or key > best_key:
            best = candidate
            best_key = key
    assert best is not None
    return best
