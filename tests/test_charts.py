"""Tests for the standalone SVG chart builder."""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET

import pytest

from repro.analysis.charts import LineChart, SERIES_COLORS, _fmt, _nice_step


def simple_chart(log_y: bool = False) -> LineChart:
    chart = LineChart("Test chart", x_label="x", y_label="y", log_y=log_y)
    chart.add_series("alpha", [(0, 1.0), (10, 5.0), (20, 3.0)])
    chart.add_series("beta", [(0, 2.0), (10, 8.0), (20, 13.0)])
    return chart


class TestRendering:
    def test_valid_xml(self):
        ET.fromstring(simple_chart().to_svg())

    def test_one_polyline_per_series(self):
        svg = simple_chart().to_svg()
        assert svg.count("<polyline") == 2

    def test_line_spec(self):
        svg = simple_chart().to_svg()
        for line in re.findall(r"<polyline[^>]+>", svg):
            assert 'stroke-width="2"' in line
            assert 'stroke-linecap="round"' in line

    def test_end_markers_with_surface_ring(self):
        svg = simple_chart().to_svg()
        # Two circles per series: the 2px surface ring (r=6) under the
        # r=4 marker.
        assert svg.count('r="6"') == 2
        assert svg.count('r="4"') == 2

    def test_legend_for_two_series(self):
        svg = simple_chart().to_svg()
        assert "alpha" in svg and "beta" in svg

    def test_no_legend_for_single_series(self):
        chart = LineChart("Solo")
        chart.add_series("only", [(0, 1.0), (5, 2.0)])
        svg = chart.to_svg()
        # The name appears once (direct end label), not twice (no legend).
        assert svg.count("only") == 1

    def test_series_colors_fixed_order(self):
        svg = simple_chart().to_svg()
        assert SERIES_COLORS[0] in svg
        assert SERIES_COLORS[1] in svg

    def test_text_never_wears_series_color(self):
        svg = simple_chart().to_svg()
        for text in re.findall(r"<text[^>]+>", svg):
            for color in SERIES_COLORS:
                assert color not in text

    def test_empty_chart_rejected(self):
        with pytest.raises(ValueError):
            LineChart("empty").to_svg()

    def test_save(self, tmp_path):
        path = simple_chart().save(tmp_path / "chart.svg")
        assert path.exists()
        ET.fromstring(path.read_text())

    def test_marks_inside_canvas(self):
        chart = simple_chart()
        svg = chart.to_svg()
        for cx, cy in re.findall(r'<circle cx="([\d.]+)" cy="([\d.]+)"', svg):
            assert 0 <= float(cx) <= chart.width
            assert 0 <= float(cy) <= chart.height


class TestLogScale:
    def test_log_requires_positive(self):
        chart = LineChart("log", log_y=True)
        with pytest.raises(ValueError):
            chart.add_series("bad", [(0, 0.0), (1, 5.0)])

    def test_log_ticks_are_powers_of_ten(self):
        chart = LineChart("log", log_y=True)
        chart.add_series("a", [(0, 0.01), (10, 100.0)])
        ticks = chart._y_ticks()
        for tick in ticks:
            import math

            assert math.log10(tick) == pytest.approx(round(math.log10(tick)))

    def test_semi_log_orders_of_magnitude_separate(self):
        # The Figure 5(d) use case: curves 3 orders apart must not overlap.
        chart = LineChart("fig5d", log_y=True)
        chart.add_series("fast", [(0, 0.01), (10, 0.02)])
        chart.add_series("slow", [(0, 10.0), (10, 60.0)])
        fast_y = chart._ty(0.02)
        slow_y = chart._ty(60.0)
        assert fast_y - slow_y > 100  # pixels apart


class TestHelpers:
    @pytest.mark.parametrize(
        "raw,expected",
        [(0.3, 0.5), (1.2, 2.0), (4.0, 5.0), (7.0, 10.0), (30.0, 50.0)],
    )
    def test_nice_step(self, raw, expected):
        assert _nice_step(raw) == pytest.approx(expected)

    @pytest.mark.parametrize(
        "value,expected",
        [(0.0, "0"), (1500.0, "1,500"), (2.5, "2.5"), (0.01, "0.01")],
    )
    def test_fmt(self, value, expected):
        assert _fmt(value) == expected
