"""Latency SLO watchdog drills against the NEAT service.

Chaos-style: latency faults are injected through the service's named
injection points with a *real* sleeper, so the latency histograms see the
stall; the watchdog evaluates inline, so two identical runs must produce
byte-identical counters and gauges.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.config import NEATConfig
from repro.distributed.service import NeatService
from repro.resilience import FaultPlan

from conftest import trajectory_through

pytestmark = pytest.mark.usefixtures("line3")


def batch(network, trid: int):
    return [trajectory_through(network, trid, [0, 1])]


def make_service(network, **slo) -> NeatService:
    return NeatService(network, NEATConfig(min_card=0, eps=500.0, **slo))


class TestIngestSLO:
    def test_breach_sheds_load_and_clears(self, line3):
        svc = make_service(line3, slo_ingest_p99_s=0.05)
        assert svc.effective_max_pending == svc.config.max_pending

        svc.faults.arm("ingest", FaultPlan(latency_s=0.2), sleeper=time.sleep)
        svc.submit(batch(line3, 0))
        assert svc.slo_watchdog.breached
        assert svc.effective_max_pending == svc.config.max_pending // 2
        assert svc.health()["status"] == "degraded"
        assert svc.telemetry.metrics.value("service.slo_breach") == 1.0
        assert svc.stats().slo_breaches == 1

        # Faults gone, latencies recover, the breach clears.
        svc.faults.disarm("ingest")
        svc.submit(batch(line3, 1))
        assert not svc.slo_watchdog.breached
        assert svc.effective_max_pending == svc.config.max_pending
        assert svc.health()["status"] == "ok"
        assert svc.telemetry.metrics.value("service.slo_breach") == 0.0
        assert svc.telemetry.metrics.value("service.slo_recoveries") == 1.0

    def test_shed_admission_rejects_earlier(self, line3):
        from repro.errors import RetriesExhausted, ServiceOverloaded

        svc = make_service(line3, slo_ingest_p99_s=0.05, max_pending=2)
        svc.faults.arm("ingest", FaultPlan(latency_s=0.2), sleeper=time.sleep)
        svc.submit(batch(line3, 0))
        assert svc.effective_max_pending == 1
        # One batch stuck in the queue now trips admission immediately.
        svc.faults.arm("ingest", FaultPlan(kill_from=1))
        with pytest.raises(RetriesExhausted):
            svc.submit(batch(line3, 1))  # fails, stays pending
        assert svc.pending_batches == 1
        with pytest.raises(ServiceOverloaded):
            svc.submit(batch(line3, 2))

    def test_no_slo_configured_never_evaluates(self, line3):
        svc = make_service(line3)
        svc.faults.arm("ingest", FaultPlan(latency_s=0.2), sleeper=time.sleep)
        svc.submit(batch(line3, 0))
        assert svc.slo_watchdog.rules == []
        assert not svc.slo_watchdog.breached
        assert svc.effective_max_pending == svc.config.max_pending
        assert svc.stats().slo_breaches == 0


class TestQuerySLO:
    def test_breach_serves_stale_then_recovers(self, line3):
        svc = make_service(line3, slo_query_p99_s=0.05)
        svc.submit(batch(line3, 0))

        svc.faults.arm("refresh", FaultPlan(latency_s=0.2), sleeper=time.sleep)
        slow = svc.get_clustering()
        assert slow["stale"] is False  # breach judged after the call
        assert "slo_degraded" not in slow
        assert svc.slo_watchdog.breached

        # While breached: refresh skipped, snapshot served, flagged.
        stale = svc.get_clustering()
        assert stale["stale"] is True
        assert stale["slo_degraded"] is True
        assert svc.stats().slo_stale_queries == 1
        # The stale answer was fast, so that window cleared the breach …
        assert not svc.slo_watchdog.breached

        # … and with the fault disarmed the next query refreshes live.
        svc.faults.disarm("refresh")
        fresh = svc.get_clustering()
        assert "slo_degraded" not in fresh
        assert fresh["stale"] is False

    def test_stale_needs_a_snapshot(self, line3):
        # Breached query SLO but no snapshot yet: the refresh still runs.
        svc = make_service(line3, slo_query_p99_s=0.05)
        svc.faults.arm("refresh", FaultPlan(latency_s=0.2), sleeper=time.sleep)
        first = svc.get_clustering()  # slow, but served live
        assert "slo_degraded" not in first
        assert first["stale"] is False
        assert first["clusters"] == []


class TestChaosDeterminism:
    """Two identical chaos runs must flip the same state the same way."""

    @staticmethod
    def run_drill(network) -> str:
        svc = make_service(
            network, slo_ingest_p99_s=0.05, slo_query_p99_s=0.05
        )
        svc.faults.arm("ingest", FaultPlan(latency_s=0.2), sleeper=time.sleep)
        svc.submit(batch(network, 0))  # ingest breach
        svc.submit(batch(network, 1))  # still breached, no transition
        svc.faults.disarm("ingest")
        svc.submit(batch(network, 2))  # recovery
        svc.faults.arm("refresh", FaultPlan(latency_s=0.2), sleeper=time.sleep)
        svc.get_clustering()  # query breach
        svc.get_clustering()  # stale, fast -> recovery
        svc.faults.disarm("refresh")
        svc.get_clustering()  # live again
        snapshot = svc.telemetry.metrics.as_dict()
        # Counters and gauges are deterministic; histogram sums carry
        # wall-clock noise, so only their observation counts are kept.
        return json.dumps(
            {
                "counters": snapshot["counters"],
                "gauges": snapshot["gauges"],
                "observations": {
                    name: body["count"]
                    for name, body in snapshot["histograms"].items()
                },
            },
            sort_keys=True,
        )

    def test_two_runs_byte_identical(self, line3):
        first = self.run_drill(line3)
        second = self.run_drill(line3)
        assert first == second
        document = json.loads(first)
        assert document["counters"]["service.slo_breaches"] == 2
        assert document["counters"]["service.slo_recoveries"] == 2
        assert document["counters"]["service.slo_stale_queries"] == 1
        assert document["gauges"]["service.slo_breach"] == 0.0
