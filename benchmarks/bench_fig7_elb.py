"""Figure 7: effectiveness of the Euclidean-lower-bound optimization.

opt-NEAT with ELB pruning vs opt-NEAT computing every shortest path with
Dijkstra, across dataset sizes on both the ATL and SJ networks.  The
report includes the shortest-path counts the pruning avoids, and shows
Phase 3 cost tracking the number of flows (Table III) rather than the
data size.
"""

from __future__ import annotations

from conftest import NEAT_COUNTS

from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT
from repro.experiments.figures import DEFAULT_EPS, run_fig7
from repro.experiments.harness import result_metrics
from repro.experiments.workloads import build_suite


def bench_fig7_elb_sj(benchmark, emit):
    """Time ELB-enabled opt-NEAT on the largest SJ dataset; report sweep."""
    network, datasets = build_suite("SJ", NEAT_COUNTS)
    neat = NEAT(network, NEATConfig(eps=DEFAULT_EPS["SJ"], use_elb=True))
    result = benchmark.pedantic(
        lambda: neat.run_opt(datasets[-1]), rounds=3, iterations=1
    )
    assert result.clusters is not None

    fig = run_fig7("SJ", object_counts=NEAT_COUNTS)
    emit("fig7_elb_sj", fig.render(), metrics=result_metrics(result))
    _emit_chart(fig, "fig7b_elb_sj.svg")
    for row in fig.rows:
        _name, _points, _flows, _elb_s, _dij_s, sp_elb, sp_dij = row
        assert sp_elb <= sp_dij, "ELB must never add shortest paths"


def _emit_chart(fig, filename: str) -> None:
    """Regenerate a Figure 7 panel as SVG."""
    from conftest import OUTPUT_DIR

    from repro.analysis.charts import LineChart

    chart = LineChart(
        f"Figure 7: opt-NEAT-ELB vs opt-NEAT-Dijkstra ({fig.region})",
        x_label="points in dataset",
        y_label="seconds",
    )
    chart.add_series("opt-NEAT-ELB", [(r[1], r[3]) for r in fig.rows])
    chart.add_series("opt-NEAT-Dijkstra", [(r[1], r[4]) for r in fig.rows])
    chart.save(OUTPUT_DIR / filename)


def bench_fig7_dijkstra_sj(benchmark):
    """The unpruned counterpart (the paper's opt-NEAT-Dijkstra curve)."""
    network, datasets = build_suite("SJ", NEAT_COUNTS)
    neat = NEAT(network, NEATConfig(eps=DEFAULT_EPS["SJ"], use_elb=False))
    result = benchmark.pedantic(
        lambda: neat.run_opt(datasets[-1]), rounds=3, iterations=1
    )
    assert result.clusters is not None


def bench_fig7_pruning_tiers(emit):
    """ELB-only vs ELB+LLB pruning rates on the paper-scale workload.

    Extends the Figure 7 discussion with the landmark lower-bound tier:
    the same Phase 3 workload runs through the pairwise, tiered and
    tiered+LLB oracles, and the ``BENCH_distance_oracle.json`` artifact
    records the executed-search/settled-node reductions alongside both
    pruning rates.  Pruning must never change the clustering.
    """
    from bench_distance_oracle import (
        ARTIFACT,
        render_oracle_comparison,
        run_oracle_comparison,
    )

    from repro.experiments.harness import export_metrics

    report = run_oracle_comparison()
    export_metrics(report, ARTIFACT)
    emit("fig7_pruning_tiers", render_oracle_comparison(report))
    assert report["identical_clusters"]
    elb_only = report["tiered"]["combined_prune_rate"]
    combined = report["tiered_llb"]["combined_prune_rate"]
    assert combined >= elb_only, "the LLB tier must never prune fewer pairs"


def bench_fig7_elb_atl(benchmark, emit):
    """The ATL panel of Figure 7."""
    network, datasets = build_suite("ATL", NEAT_COUNTS)
    neat = NEAT(network, NEATConfig(eps=DEFAULT_EPS["ATL"], use_elb=True))
    result = benchmark.pedantic(
        lambda: neat.run_opt(datasets[-1]), rounds=3, iterations=1
    )
    assert result.clusters is not None

    fig = run_fig7("ATL", object_counts=NEAT_COUNTS)
    emit("fig7_elb_atl", fig.render(), metrics=result_metrics(result))
    _emit_chart(fig, "fig7a_elb_atl.svg")
