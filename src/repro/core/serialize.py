"""JSON (de)serialization of NEAT clustering results.

The paper's system sketch (Section II-C) has clients requesting
"trajectory clustering results for a particular road network" from a NEAT
server — which needs a wire format.  This module round-trips a
:class:`~repro.core.result.NEATResult` through a JSON-compatible dict:
base clusters with their fragments, flows as ordered member references,
final clusters as flow references.

Schema (version 1)::

    {
      "format": "repro-clustering", "version": 1,
      "mode": "opt", "min_card_used": 5, "network_name": "...",
      "stale": false,
      "dropped_shards": [],
      "base_clusters": [
        {"sid": 3, "fragments": [
            {"trid": 0, "locations": [[sid, x, y, t, node_id|null], ...]},
        ]},
      ],
      "flows": [{"member_sids": [3, 5, 8]}],
      "noise_flows": [{"member_sids": [9]}],
      "clusters": [{"cluster_id": 0, "flow_indices": [0, 2]}]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..errors import ClusteringError, CorruptSnapshot, RoadNetworkError
from ..roadnet.network import RoadNetwork
from .base_cluster import BaseCluster
from .flow_cluster import FlowCluster
from .model import Location, TFragment
from .refinement import TrajectoryCluster
from .result import NEATResult

FORMAT_TAG = "repro-clustering"
FORMAT_VERSION = 1


def _fragment_to_list(
    fragment: TFragment,
    cache: dict[int, tuple[Any, Any]] | None = None,
) -> dict[str, Any]:
    if cache is None:
        return {
            "trid": fragment.trid,
            "locations": [
                [l.sid, l.x, l.y, l.t, l.node_id] for l in fragment.locations
            ],
        }
    hit = cache.get(id(fragment))
    if hit is not None:
        return hit[1]
    # Cached documents use tuples for the location rows: json.dumps
    # writes tuples and lists identically, but CPython's GC *untracks*
    # tuples (and dicts) of atomic values — so a long-lived cache of
    # thousands of fragments adds almost nothing to gen-2 collections,
    # where an equivalent list-of-lists cache would be rescanned forever.
    document = {
        "trid": fragment.trid,
        "locations": tuple(
            (l.sid, l.x, l.y, l.t, l.node_id) for l in fragment.locations
        ),
    }
    # The fragment itself is kept in the entry so its id() can never
    # be recycled onto a different object while the cache is alive.
    cache[id(fragment)] = (fragment, document)
    return document


def _fragments_to_lists(
    fragments,
    cache: dict[int, tuple[Any, Any]] | None,
) -> list[dict[str, Any]]:
    if cache is not None:
        try:
            # Entries pin their fragment, so a live id() can only be a
            # genuine hit; the slow path below fills any misses.
            return [cache[id(f)][1] for f in fragments]
        except KeyError:
            pass
    return [_fragment_to_list(f, cache) for f in fragments]


def _cluster_to_dict(
    cluster: BaseCluster,
    cache: dict[int, tuple[Any, Any, Any]] | None,
) -> dict[str, Any]:
    if cache is None:
        return {
            "sid": cluster.sid,
            "fragments": _fragments_to_lists(cluster.fragments, None),
        }
    # Whole-cluster memo: a base cluster only ever *grows* (fragments are
    # appended, never replaced), so an entry pinned on the cluster with a
    # matching fragment count is still the current serialization.
    hit = cache.get(id(cluster))
    if hit is not None and hit[0] is cluster and hit[1] == len(cluster.fragments):
        return hit[2]
    entry = {
        "sid": cluster.sid,
        "fragments": _fragments_to_lists(cluster.fragments, cache),
    }
    cache[id(cluster)] = (cluster, len(cluster.fragments), entry)
    return entry


def _fragment_from_dict(data: dict[str, Any]) -> TFragment:
    locations = tuple(
        Location(int(sid), float(x), float(y), float(t),
                 None if node_id is None else int(node_id))
        for sid, x, y, t, node_id in data["locations"]
    )
    return TFragment(int(data["trid"]), locations[0].sid, locations)


def result_to_dict(
    result: NEATResult,
    network_name: str = "",
    stale: bool = False,
    fragment_cache: dict[int, tuple[Any, Any]] | None = None,
) -> dict[str, Any]:
    """Serialize a NEAT result to a JSON-compatible dictionary.

    Args:
        result: The result to serialize.
        network_name: Name recorded in the document.
        stale: Degraded-mode marker — ``True`` when a NEAT server is
            serving a previously validated snapshot because the fresh
            refresh failed (see ``docs/robustness.md``).
        fragment_cache: Optional memo reused across calls — t-fragments
            are immutable, so repeated snapshots of a growing state
            (per-batch checkpoints) skip re-serializing old fragments.
    """
    flow_index = {id(flow): i for i, flow in enumerate(result.flows)}
    base_index = {id(c): i for i, c in enumerate(result.base_clusters)}
    return {
        "format": FORMAT_TAG,
        "version": FORMAT_VERSION,
        "mode": result.mode,
        "min_card_used": result.min_card_used,
        "network_name": network_name,
        "stale": bool(stale),
        "dropped_shards": list(result.dropped_shards),
        "base_clusters": [
            _cluster_to_dict(cluster, fragment_cache)
            for cluster in result.base_clusters
        ],
        # Flows reference their member base clusters by *index* into the
        # base_clusters list (the redundant member_sids are kept for human
        # readability): incremental/service snapshots can hold several
        # base clusters for the same segment, so sids alone are ambiguous.
        "flows": [
            _flow_to_dict(flow, base_index) for flow in result.flows
        ],
        "noise_flows": [
            _flow_to_dict(flow, base_index) for flow in result.noise_flows
        ],
        "clusters": [
            {
                "cluster_id": cluster.cluster_id,
                "flow_indices": [flow_index[id(flow)] for flow in cluster.flows],
            }
            for cluster in result.clusters
        ],
    }


def _flow_to_dict(flow: FlowCluster, base_index: dict[int, int]) -> dict:
    return {
        "members": [base_index[id(member)] for member in flow.members],
        "member_sids": list(flow.sids),
    }


def result_from_dict(data: dict[str, Any], network: RoadNetwork) -> NEATResult:
    """Rebuild a NEAT result against its road network.

    The network must contain every referenced segment (i.e. be the same
    network, or a superset, of the one the result was computed on).
    """
    if data.get("format") != FORMAT_TAG:
        raise ClusteringError(f"not a clustering document: {data.get('format')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise ClusteringError(f"unsupported version: {data.get('version')!r}")

    base_by_sid: dict[int, BaseCluster] = {}
    base_clusters: list[BaseCluster] = []
    for entry in data["base_clusters"]:
        cluster = BaseCluster(int(entry["sid"]))
        for fragment in entry["fragments"]:
            cluster.add(_fragment_from_dict(fragment))
        base_by_sid[cluster.sid] = cluster
        base_clusters.append(cluster)

    def rebuild_flow(entry: dict[str, Any]) -> FlowCluster:
        if "members" in entry:
            members = [base_clusters[int(i)] for i in entry["members"]]
        else:  # legacy sid-keyed documents
            members = [base_by_sid[int(sid)] for sid in entry["member_sids"]]
        return FlowCluster.from_members(network, members)

    flows = [rebuild_flow(entry) for entry in data["flows"]]
    noise_flows = [rebuild_flow(entry) for entry in data["noise_flows"]]
    clusters = [
        TrajectoryCluster(
            int(entry["cluster_id"]),
            [flows[i] for i in entry["flow_indices"]],
        )
        for entry in data["clusters"]
    ]
    result = NEATResult(mode=data.get("mode", "opt"))
    result.base_clusters = base_clusters
    result.flows = flows
    result.noise_flows = noise_flows
    result.clusters = clusters
    result.min_card_used = int(data.get("min_card_used", 0))
    result.dropped_shards = [int(s) for s in data.get("dropped_shards", [])]
    return result


def save_result(
    result: NEATResult, path: str | Path, network_name: str = ""
) -> None:
    """Write a clustering result to a checksum-sealed file, atomically.

    The JSON document is wrapped in the SHA-256 sealed envelope of
    :mod:`repro.persist.store` and written via temp file + fsync +
    rename, so a crash mid-save leaves either the previous file or the
    complete new one — never a torn result.
    """
    # Imported here, not at module level: repro.persist depends on core
    # model types, so a top-level import would be circular.
    from ..persist.store import atomic_write, seal_snapshot

    payload = json.dumps(result_to_dict(result, network_name)).encode("utf-8")
    atomic_write(Path(path), seal_snapshot(payload))


def load_result(path: str | Path, network: RoadNetwork) -> NEATResult:
    """Read a clustering result from a file, verifying integrity.

    Sealed envelopes (the :func:`save_result` format) are SHA-256
    verified; legacy plain-JSON files are still accepted.  Every decode
    failure surfaces as a typed error naming the offending file — a
    partially-built result is never returned.

    Raises:
        TornWrite: The file ends mid-envelope (interrupted write).
        CorruptSnapshot: Checksum mismatch, non-JSON payload, or a
            payload that does not decode to a clustering document.
        RoadNetworkError: The document is intact but references segments
            ``network`` does not have (wrong network, not corruption).
    """
    from ..persist.store import SNAPSHOT_MAGIC, unseal_snapshot

    target = Path(path)
    try:
        raw = target.read_bytes()
    except OSError as error:
        raise CorruptSnapshot(target, f"unreadable: {error}") from error

    if raw[: len(SNAPSHOT_MAGIC)] == SNAPSHOT_MAGIC or raw.lstrip()[:1] != b"{":
        payload = unseal_snapshot(raw, source=target)
    else:  # legacy plain-JSON result
        payload = raw

    try:
        document = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise CorruptSnapshot(target, f"payload is not JSON: {error}") from error
    try:
        return result_from_dict(document, network)
    except RoadNetworkError:
        raise
    except (ClusteringError, KeyError, ValueError, TypeError, IndexError) as error:
        raise CorruptSnapshot(
            target, f"undecodable clustering document: {error!r}"
        ) from error
