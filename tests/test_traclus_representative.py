"""Unit tests for TraClus representative trajectories."""

from __future__ import annotations

import pytest

from repro.roadnet.geometry import Point
from repro.traclus.model import LineSegment
from repro.traclus.representative import (
    average_direction,
    representative_trajectory,
)


def seg(x1, y1, x2, y2, trid=0) -> LineSegment:
    return LineSegment(trid, Point(x1, y1), Point(x2, y2))


class TestAverageDirection:
    def test_aligned_segments(self):
        ux, uy = average_direction([seg(0, 0, 10, 0), seg(5, 2, 25, 2)])
        assert ux == pytest.approx(1.0)
        assert uy == pytest.approx(0.0, abs=1e-9)

    def test_antiparallel_segments_do_not_cancel(self):
        ux, uy = average_direction([seg(0, 0, 10, 0), seg(30, 1, 20, 1)])
        assert abs(ux) == pytest.approx(1.0)
        assert uy == pytest.approx(0.0, abs=1e-9)

    def test_empty_default(self):
        assert average_direction([]) == (1.0, 0.0)

    def test_unit_norm(self):
        import math

        ux, uy = average_direction([seg(0, 0, 3, 4), seg(1, 1, 4, 6)])
        assert math.hypot(ux, uy) == pytest.approx(1.0)


class TestRepresentative:
    def test_bundle_of_parallel_segments(self):
        segments = [seg(0, y, 100, y, trid=i) for i, y in enumerate((0, 2, 4))]
        rep = representative_trajectory(segments, min_lns=3, gamma=10.0)
        assert len(rep) >= 2
        # The representative runs down the middle of the bundle.
        for point in rep:
            assert point.y == pytest.approx(2.0, abs=0.5)

    def test_min_lns_filters_sparse_regions(self):
        # Only one segment extends to the right: positions past x=100
        # gather fewer than min_lns crossings and emit nothing.
        segments = [seg(0, 0, 100, 0), seg(0, 2, 100, 2), seg(0, 4, 300, 4)]
        rep = representative_trajectory(segments, min_lns=2, gamma=10.0)
        assert rep
        assert max(p.x for p in rep) <= 110.0

    def test_too_few_segments_empty(self):
        rep = representative_trajectory([seg(0, 0, 100, 0)], min_lns=3)
        assert rep == ()

    def test_gamma_thins_points(self):
        segments = [seg(x, 0, x + 50, 0, trid=i) for i, x in enumerate(range(0, 100, 5))]
        dense = representative_trajectory(segments, min_lns=2, gamma=1.0)
        sparse = representative_trajectory(segments, min_lns=2, gamma=30.0)
        assert len(sparse) <= len(dense)

    def test_empty_input(self):
        assert representative_trajectory([], min_lns=1) == ()
