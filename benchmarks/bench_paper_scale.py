"""Paper-scale feasibility run (opt-in: set REPRO_PAPER_SCALE=1).

Runs opt-NEAT at the paper's actual scale — the full-size ATL network
(~7k junctions, ~9.2k segments) with 5000 objects (~0.8M points) and the
paper's eps = 6500 m — to confirm the implementation handles Table II's
magnitudes, not just the scaled bench workloads.  Skipped by default:
trace generation alone takes ~1 minute.

Reference measurement on this repository's development machine:
dataset generation 54.6 s; opt-NEAT 13.3 s total (Phase 1: 9.9 s,
Phase 2: 1.2 s, Phase 3: 2.2 s with ELB) — the same order of magnitude
as the paper's 59.7 s for ATL5000 on 2008-era Java.

Standalone: ``python benchmarks/bench_paper_scale.py [--smoke]
[--profile stress] [--append-history]`` runs a workload-ladder rung of
the same shape and writes ``output/BENCH_paper_scale.json`` — ``--smoke``
shrinks the stress rung to the CI-feasible stand-in, whose deterministic
counters (t_fragments, flows, clusters) the tuning CI job gates against
the committed ``baselines/BENCH_paper_scale_smoke.json``.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

OUTPUT_DIR = Path(__file__).parent / "output"
ARTIFACT = OUTPUT_DIR / "BENCH_paper_scale.json"

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import pytest  # noqa: E402

from repro.core.config import NEATConfig  # noqa: E402
from repro.core.pipeline import NEAT  # noqa: E402
from repro.experiments.harness import format_seconds  # noqa: E402
from repro.experiments.workloads import (  # noqa: E402
    WorkloadSpec,
    build_dataset,
    build_network,
)

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_PAPER_SCALE") != "1",
    reason="paper-scale run is opt-in (REPRO_PAPER_SCALE=1)",
)


def bench_paper_scale_atl5000(benchmark, emit):
    """opt-NEAT over the full-size ATL network with 5000 objects."""
    network = build_network("ATL", network_scale=1.0)
    dataset = build_dataset(
        network, WorkloadSpec("ATL", 5000, network_scale=1.0)
    )
    neat = NEAT(network, NEATConfig(eps=6500.0))
    result = benchmark.pedantic(
        lambda: neat.run_opt(dataset), rounds=1, iterations=1
    )
    emit(
        "paper_scale",
        "Paper-scale run: full ATL network, ATL5000\n"
        f"  network: {network.junction_count} junctions, "
        f"{network.segment_count} segments (paper: 6979 / 9187)\n"
        f"  dataset: {dataset.total_points} points (paper: 1,277,521)\n"
        f"  opt-NEAT: {format_seconds(result.timings.total)} "
        f"(paper: 59.7 s on 2008 Java) -> {result.flow_count} flows, "
        f"{result.cluster_count} clusters",
    )
    assert result.flows


def run_profile_rung(spec: WorkloadSpec, profile: str, smoke: bool) -> dict:
    """opt-NEAT over one ladder rung; returns the gateable artifact.

    The counters (t_fragments, flows, clusters) are deterministic for a
    fixed spec, so ``check_perf_regression.py`` can gate the smoke rung
    against a committed baseline; the timings are informational.
    """
    generation_started = time.perf_counter()
    network = build_network(spec.region, spec.network_scale, spec.seed)
    dataset = build_dataset(network, spec)
    generation_s = time.perf_counter() - generation_started

    # The paper's eps (6500 m on full-size ATL) shrinks with the map.
    eps = 6500.0 * spec.resolved_scale
    result = NEAT(network, NEATConfig(eps=eps)).run_opt(dataset)
    timings = result.timings
    return {
        "network": spec.region,
        "profile": profile,
        "smoke": smoke,
        "objects": len(dataset),
        "points": dataset.total_points,
        "network_scale": spec.resolved_scale,
        "eps": eps,
        "junctions": network.junction_count,
        "segments": network.segment_count,
        "t_fragments": sum(
            len(cluster.fragments) for cluster in result.base_clusters
        ),
        "flows": len(result.flows),
        "clusters": len(result.clusters),
        "generation_s": round(generation_s, 2),
        "phase1_s": round(timings.base, 3),
        "phase2_s": round(timings.flow, 3),
        "phase3_s": round(timings.refine, 3),
        "total_s": round(timings.total, 3),
    }


def render_rung(report: dict) -> str:
    rung = "smoke rung" if report["smoke"] else "full rung"
    return (
        f"Paper-scale ladder ({report['profile']} profile, {rung}): "
        f"{report['network']} @ scale {report['network_scale']}\n"
        f"  network: {report['junctions']} junctions, "
        f"{report['segments']} segments\n"
        f"  dataset: {report['objects']} objects, "
        f"{report['points']} points (generated in "
        f"{format_seconds(report['generation_s'])})\n"
        f"  opt-NEAT: {format_seconds(report['total_s'])} "
        f"(P1 {report['phase1_s']}s / P2 {report['phase2_s']}s / "
        f"P3 {report['phase3_s']}s) -> {report['t_fragments']} t-fragments, "
        f"{report['flows']} flows, {report['clusters']} clusters"
    )


def main(argv: list[str] | None = None) -> int:
    """Standalone runner for the workload ladder's paper-scale rung."""
    import argparse

    from repro.experiments.harness import export_metrics
    from repro.tune.profiles import add_profile_argument, resolve_profile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the profile's CI-feasible smoke stand-in instead of "
             "the full paper-scale workload",
    )
    add_profile_argument(parser, default="stress")
    parser.add_argument(
        "--append-history",
        action="store_true",
        help="append the artifact to benchmarks/history/"
             "BENCH_history.jsonl, labeled with the profile",
    )
    options = parser.parse_args(argv)

    profile = resolve_profile(options.profile)
    spec = profile.bench_spec(smoke=options.smoke)
    report = run_profile_rung(spec, profile.name, options.smoke)
    export_metrics(report, ARTIFACT)
    print(render_rung(report))
    print(f"\nwrote {ARTIFACT}")
    assert report["flows"] > 0, "paper-scale rung produced no flows"
    if options.append_history:
        from bench_history import append_entry

        entry = append_entry(ARTIFACT, profile=profile.name)
        print(
            f"appended paper_scale ({entry['workload']}, profile "
            f"{entry['profile']}) @ {entry['git_sha']} to the bench ledger"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
