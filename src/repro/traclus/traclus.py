"""The TraClus pipeline: partition-and-group trajectory clustering.

The paper's baseline (Section IV-C).  TraClus knows nothing about road
networks: it cuts trajectories at MDL characteristic points and groups the
resulting line segments under a Euclidean three-component distance.  The
result objects expose representative-trajectory lengths and cluster counts
— the quantities Figures 4 and 5 compare against flow-NEAT.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.model import Trajectory, TrajectoryDataset
from .grouping import TraClusParams, group_segments
from .model import LineSegment, SegmentCluster
from .partition import partition_all


@dataclass
class TraClusResult:
    """Output of a TraClus run.

    Attributes:
        clusters: The discovered segment clusters with representatives.
        segment_count: Number of line segments produced by partitioning.
        partition_seconds: Wall-clock time of the partitioning phase.
        grouping_seconds: Wall-clock time of the grouping phase.
    """

    clusters: list[SegmentCluster] = field(default_factory=list)
    segment_count: int = 0
    partition_seconds: float = 0.0
    grouping_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Total clustering time."""
        return self.partition_seconds + self.grouping_seconds

    @property
    def cluster_count(self) -> int:
        """Number of discovered clusters."""
        return len(self.clusters)

    def representative_lengths(self) -> list[float]:
        """Lengths of all non-empty representative trajectories, metres."""
        return [
            c.representative_length for c in self.clusters if len(c.representative) >= 2
        ]


class TraClus:
    """Partition-and-group trajectory clustering (Lee et al., SIGMOD'07).

    Args:
        params: Clustering parameters (``eps``, ``min_lns``, ...).

    Example:
        >>> from repro.traclus import TraClus, TraClusParams
        >>> clusterer = TraClus(TraClusParams(eps=10.0, min_lns=3))
    """

    def __init__(self, params: TraClusParams | None = None) -> None:
        self.params = params if params is not None else TraClusParams()

    def run(
        self,
        trajectories: TrajectoryDataset | Sequence[Trajectory] | Iterable[Trajectory],
    ) -> TraClusResult:
        """Cluster ``trajectories`` and return clusters with representatives."""
        if isinstance(trajectories, TrajectoryDataset):
            trajectory_list = list(trajectories.trajectories)
        else:
            trajectory_list = list(trajectories)

        result = TraClusResult()
        started = time.perf_counter()
        segments: list[LineSegment] = partition_all(trajectory_list)
        result.partition_seconds = time.perf_counter() - started
        result.segment_count = len(segments)

        started = time.perf_counter()
        result.clusters = group_segments(segments, self.params)
        result.grouping_seconds = time.perf_counter() - started
        return result
