"""Gate CI on benchmark counter regressions against a committed baseline.

Compares selected (dotted) keys of a freshly produced ``BENCH_*.json``
artifact against a baseline checked into ``benchmarks/baselines/`` and
fails when the current value exceeds the baseline by more than the
allowed fraction.  Counters such as executed Dijkstra searches and
settled nodes are deterministic for a fixed workload, so the default
10% headroom only forgives intentional small shifts (e.g. a generator
tweak) while catching a broken prune tier or grouping planner outright.

Usage::

    python benchmarks/check_perf_regression.py \
        --baseline benchmarks/baselines/BENCH_distance_oracle_smoke.json \
        --current benchmarks/output/BENCH_distance_oracle.json \
        --key tiered.sp_computations --key tiered.nodes_expanded

Exit status 0 when every key is within bounds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def lookup(document: dict, dotted: str):
    """Resolve ``a.b.c`` into nested dictionaries."""
    node = document
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(dotted)
        node = node[part]
    return node


def check(baseline: dict, current: dict, keys: list[str], max_regression: float) -> list[str]:
    """Return one human-readable failure line per violated key."""
    failures = []
    for key in keys:
        try:
            base_value = float(lookup(baseline, key))
        except KeyError:
            failures.append(f"{key}: missing from baseline")
            continue
        try:
            new_value = float(lookup(current, key))
        except KeyError:
            failures.append(f"{key}: missing from current artifact")
            continue
        allowed = base_value * (1.0 + max_regression)
        if new_value > allowed:
            failures.append(
                f"{key}: {new_value:g} exceeds baseline {base_value:g} "
                f"by more than {max_regression:.0%} (allowed <= {allowed:g})"
            )
        else:
            print(f"ok: {key} = {new_value:g} (baseline {base_value:g})")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed baseline JSON")
    parser.add_argument("--current", type=Path, required=True,
                        help="artifact produced by this run")
    parser.add_argument("--key", action="append", required=True, dest="keys",
                        help="dotted key to compare (repeatable)")
    parser.add_argument("--max-regression", type=float, default=0.10,
                        help="allowed fractional increase (default 0.10)")
    options = parser.parse_args(argv)

    baseline = json.loads(options.baseline.read_text(encoding="utf-8"))
    current = json.loads(options.current.read_text(encoding="utf-8"))
    failures = check(baseline, current, options.keys, options.max_regression)
    for line in failures:
        print(f"REGRESSION {line}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
