"""Tests for GeoJSON export."""

from __future__ import annotations

import json

import pytest

from repro.analysis.geojson import (
    clusters_geojson,
    flows_geojson,
    network_geojson,
    save_geojson,
    trajectories_geojson,
)
from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT

from conftest import trajectory_through


@pytest.fixture
def clustered(line3):
    trs = [trajectory_through(line3, i, [0, 1, 2]) for i in range(3)]
    result = NEAT(line3, NEATConfig(min_card=0, eps=500.0)).run_opt(trs)
    return line3, trs, result


class TestNetworkGeojson:
    def test_one_feature_per_segment(self, grid3x3):
        document = network_geojson(grid3x3)
        assert document["type"] == "FeatureCollection"
        assert len(document["features"]) == grid3x3.segment_count

    def test_properties(self, grid3x3):
        feature = network_geojson(grid3x3)["features"][0]
        properties = feature["properties"]
        assert {"sid", "road_class", "speed_limit", "length_m"} <= set(properties)
        assert feature["geometry"]["type"] == "LineString"
        assert len(feature["geometry"]["coordinates"]) == 2

    def test_json_serializable(self, grid3x3):
        json.dumps(network_geojson(grid3x3))


class TestTrajectoriesGeojson:
    def test_linestring_per_trip(self, line3):
        trs = [trajectory_through(line3, i, [0, 1]) for i in range(2)]
        document = trajectories_geojson(trs)
        assert len(document["features"]) == 2
        for feature, trajectory in zip(document["features"], trs):
            assert feature["properties"]["trid"] == trajectory.trid
            assert len(feature["geometry"]["coordinates"]) == len(trajectory)


class TestFlowsGeojson:
    def test_flow_geometry_follows_route(self, clustered):
        network, _trs, result = clustered
        document = flows_geojson(network, result.flows)
        assert len(document["features"]) == len(result.flows)
        feature = document["features"][0]
        route_nodes = result.flows[0].route_nodes()
        assert len(feature["geometry"]["coordinates"]) == len(route_nodes)
        assert feature["properties"]["cardinality"] == (
            result.flows[0].trajectory_cardinality
        )

    def test_empty(self, line3):
        assert flows_geojson(line3, [])["features"] == []


class TestClustersGeojson:
    def test_multilinestring_per_cluster(self, clustered):
        network, _trs, result = clustered
        document = clusters_geojson(network, result.clusters)
        assert len(document["features"]) == len(result.clusters)
        feature = document["features"][0]
        assert feature["geometry"]["type"] == "MultiLineString"
        assert feature["properties"]["flows"] == len(result.clusters[0].flows)

    def test_save(self, clustered, tmp_path):
        network, _trs, result = clustered
        path = save_geojson(
            clusters_geojson(network, result.clusters), tmp_path / "c.geojson"
        )
        assert json.loads(path.read_text())["type"] == "FeatureCollection"


class TestRealisticWorkload:
    def test_full_export_chain(self, small_workload, tmp_path):
        network, dataset = small_workload
        result = NEAT(network, NEATConfig(eps=500.0)).run_opt(dataset)
        for name, document in (
            ("network", network_geojson(network)),
            ("trips", trajectories_geojson(list(dataset))),
            ("flows", flows_geojson(network, result.flows)),
            ("clusters", clusters_geojson(network, result.clusters)),
        ):
            path = save_geojson(document, tmp_path / f"{name}.geojson")
            parsed = json.loads(path.read_text())
            assert parsed["features"], name
