"""Unit tests for network builders and canned topologies."""

from __future__ import annotations

import pytest

from repro.roadnet.builder import line_network, network_from_edges, star_network


class TestNetworkFromEdges:
    def test_node_and_segment_ids(self):
        net = network_from_edges([(0, 0), (100, 0), (200, 0)], [(0, 1), (1, 2)])
        assert net.node_ids() == [0, 1, 2]
        assert net.segment_ids() == [0, 1]

    def test_lengths_default_to_chords(self):
        net = network_from_edges([(0, 0), (30, 40)], [(0, 1)])
        assert net.segment(0).length == pytest.approx(50.0)

    def test_speed_limit_applied(self):
        net = network_from_edges([(0, 0), (10, 0)], [(0, 1)], speed_limit=5.0)
        assert net.segment(0).speed_limit == 5.0


class TestLineNetwork:
    def test_shape(self):
        net = line_network(5, segment_length=50.0)
        assert net.junction_count == 6
        assert net.segment_count == 5
        assert net.total_length() == pytest.approx(250.0)

    def test_chain_is_route(self):
        net = line_network(4)
        assert net.is_route([0, 1, 2, 3])

    def test_rejects_zero_segments(self):
        with pytest.raises(ValueError):
            line_network(0)


class TestStarNetwork:
    def test_shape(self):
        net = star_network(5, branch_length=80.0)
        assert net.junction_count == 6
        assert net.segment_count == 5
        assert net.degree(0) == 5

    def test_all_leaves_are_dead_ends(self):
        net = star_network(3)
        for leaf in (1, 2, 3):
            assert net.degree(leaf) == 1

    def test_rejects_zero_branches(self):
        with pytest.raises(ValueError):
            star_network(0)
