"""Dataset summaries: the rows of Table II in the paper.

Table II reports the total number of location points per (region, object
count) dataset.  :func:`format_table2` renders the same table for any set
of generated datasets.
"""

from __future__ import annotations

from ..core.model import TrajectoryDataset


def dataset_summary(dataset: TrajectoryDataset) -> dict[str, object]:
    """Key statistics of one dataset."""
    lengths = [len(tr) for tr in dataset.trajectories]
    return {
        "name": dataset.name,
        "trajectories": len(dataset),
        "total_points": dataset.total_points,
        "min_points": min(lengths, default=0),
        "max_points": max(lengths, default=0),
        "avg_points": (sum(lengths) / len(lengths)) if lengths else 0.0,
    }


def format_table2(datasets_by_region: dict[str, list[TrajectoryDataset]]) -> str:
    """Render Table II: rows = object counts, columns = regions.

    Args:
        datasets_by_region: Mapping such as ``{"ATL": [atl500, atl1000],
            "SJ": [...]}``; lists must be aligned by object count.
    """
    regions = list(datasets_by_region)
    if not regions:
        return "(no datasets)"
    row_count = max(len(v) for v in datasets_by_region.values())
    header = ["Datasets"] + regions
    rows: list[list[str]] = [header]
    for i in range(row_count):
        label_parts = []
        cells = []
        for region in regions:
            datasets = datasets_by_region[region]
            if i < len(datasets):
                label_parts.append(datasets[i].name)
                cells.append(str(datasets[i].total_points))
            else:
                cells.append("-")
        rows.append(["/".join(label_parts)] + cells)
    widths = [max(len(row[c]) for row in rows) for c in range(len(header))]
    return "\n".join(
        "  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row))
        for row in rows
    )
