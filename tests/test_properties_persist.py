"""Property-based fuzz tests (hypothesis) for the persistence layer.

Three durability invariants, fuzzed rather than example-tested:

* the framed codec is prefix-stable — truncating a frame stream at ANY
  byte offset yields exactly the payloads whose frames survived intact,
  with the torn flag set iff bytes were dropped mid-frame;
* flipping any single bit of a sealed snapshot envelope is always
  detected (typed error, never a silently different payload);
* journal replay after random truncation recovers exactly the state a
  never-crashed run reaches over the surviving record prefix.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import trajectory_through
from repro.core import NEATConfig
from repro.core.incremental import IncrementalNEAT
from repro.core.serialize import result_to_dict
from repro.errors import PersistenceError
from repro.persist import (
    encode_frame,
    scan_frames,
    seal_snapshot,
    unseal_snapshot,
)
from repro.roadnet.builder import network_from_edges

payloads_strategy = st.lists(
    st.binary(min_size=0, max_size=64), min_size=0, max_size=8
)


def _line3():
    coordinates = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]
    edges = [(0, 1), (1, 2), (2, 3)]
    return network_from_edges(coordinates, edges, name="line3")


class TestFramedCodecProperties:
    @given(payloads_strategy)
    def test_round_trip_is_lossless(self, payloads):
        data = b"".join(encode_frame(p) for p in payloads)
        scan = scan_frames(data)
        assert scan.payloads == payloads
        assert scan.good_bytes == len(data)
        assert not scan.torn

    @given(payloads_strategy, st.data())
    def test_any_truncation_yields_exact_prefix(self, payloads, data):
        stream = b"".join(encode_frame(p) for p in payloads)
        cut = data.draw(st.integers(min_value=0, max_value=len(stream)))
        scan = scan_frames(stream[:cut])
        # The scan recovers exactly the payloads whose frames fit in the
        # cut — never a partial payload, never one out of order.
        assert scan.payloads == payloads[: len(scan.payloads)]
        assert scan.good_bytes <= cut
        assert scan.torn == (cut != scan.good_bytes)
        survived = sum(
            len(encode_frame(p)) for p in payloads[: len(scan.payloads)]
        )
        assert scan.good_bytes == survived

    @given(st.binary(min_size=0, max_size=512), st.data())
    def test_envelope_single_bit_flip_always_detected(self, payload, data):
        sealed = bytearray(seal_snapshot(payload))
        position = data.draw(
            st.integers(min_value=0, max_value=len(sealed) * 8 - 1)
        )
        sealed[position // 8] ^= 1 << (position % 8)
        with pytest.raises(PersistenceError):
            unseal_snapshot(bytes(sealed), "fuzz")


class TestJournalReplayProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=2),
                min_size=1, max_size=3,
            ),
            min_size=1, max_size=4,
        ),
        st.data(),
    )
    def test_truncated_journal_recovers_prefix_state(self, routes, data):
        """Random batches + random truncation ⇒ recovery == prefix run."""
        network = _line3()
        config = NEATConfig(min_card=0)
        batches = []
        trid = 0
        for batch_index, starts in enumerate(routes):
            batch = []
            for start in starts:
                route = [start, start + 1] if start < 2 else [start]
                batch.append(
                    trajectory_through(
                        network, trid, route, t0=float(batch_index)
                    )
                )
                trid += 1
            batches.append(batch)

        with tempfile.TemporaryDirectory() as tmp:
            state_dir = Path(tmp)
            clusterer = IncrementalNEAT(network, config)
            clusterer.enable_persistence(state_dir, fsync=False)
            for batch in batches:
                clusterer.add_batch(batch)

            wal = state_dir / "journal.wal"
            blob = wal.read_bytes()
            cut = data.draw(st.integers(min_value=0, max_value=len(blob)))
            wal.write_bytes(blob[:cut])

            recovered = IncrementalNEAT.recover(state_dir, network, config)
            survived = recovered.batch_count
            assert survived <= len(batches)

            reference = IncrementalNEAT(network, config)
            for batch in batches[:survived]:
                reference.add_batch(batch)

            assert json.dumps(
                result_to_dict(recovered.snapshot_result(), "fuzz"),
                sort_keys=True,
            ) == json.dumps(
                result_to_dict(reference.snapshot_result(), "fuzz"),
                sort_keys=True,
            )
