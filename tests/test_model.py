"""Unit tests for the core trajectory data model."""

from __future__ import annotations

import pytest

from repro.core.model import Location, TFragment, Trajectory, TrajectoryDataset
from repro.errors import TrajectoryError
from repro.roadnet.geometry import Point


def loc(sid: int, x: float, t: float, node_id: int | None = None) -> Location:
    return Location(sid, x, 0.0, t, node_id)


class TestLocation:
    def test_point(self):
        assert loc(0, 5.0, 1.0).point == Point(5.0, 0.0)

    def test_junction_marking(self):
        # Inserted junction points are "marked as different points than the
        # original location samples" (paper, Section III-A1).
        assert not loc(0, 0.0, 0.0).is_junction
        assert loc(0, 0.0, 0.0, node_id=7).is_junction


class TestTrajectory:
    def test_requires_two_points(self):
        with pytest.raises(TrajectoryError):
            Trajectory(0, (loc(0, 0.0, 0.0),))

    def test_requires_time_order(self):
        with pytest.raises(TrajectoryError):
            Trajectory(0, (loc(0, 0.0, 5.0), loc(0, 1.0, 4.0)))

    def test_equal_timestamps_allowed(self):
        # Junction insertion produces co-located, co-timed points.
        tr = Trajectory(0, (loc(0, 0.0, 5.0), loc(1, 1.0, 5.0)))
        assert tr.duration == 0.0

    def test_from_samples(self):
        tr = Trajectory.from_samples(3, [(0, 0.0, 0.0, 0.0), (0, 5.0, 0.0, 1.0)])
        assert tr.trid == 3
        assert len(tr) == 2

    def test_start_end_duration(self):
        tr = Trajectory(0, (loc(0, 0.0, 2.0), loc(1, 5.0, 12.0)))
        assert tr.start.t == 2.0
        assert tr.end.t == 12.0
        assert tr.duration == 10.0

    def test_segment_ids_first_visit_order(self):
        tr = Trajectory(
            0,
            (loc(2, 0.0, 0.0), loc(1, 1.0, 1.0), loc(2, 2.0, 2.0), loc(0, 3.0, 3.0)),
        )
        assert tr.segment_ids() == [2, 1, 0]

    def test_iteration(self):
        tr = Trajectory(0, (loc(0, 0.0, 0.0), loc(0, 1.0, 1.0)))
        assert [l.x for l in tr] == [0.0, 1.0]


class TestTFragment:
    def test_all_locations_same_sid(self):
        with pytest.raises(TrajectoryError):
            TFragment(0, 1, (loc(1, 0.0, 0.0), loc(2, 1.0, 1.0)))

    def test_rejects_empty(self):
        with pytest.raises(TrajectoryError):
            TFragment(0, 1, ())

    def test_first_last(self):
        fragment = TFragment(0, 1, (loc(1, 0.0, 0.0), loc(1, 9.0, 5.0)))
        assert fragment.first.x == 0.0
        assert fragment.last.x == 9.0
        assert len(fragment) == 2


class TestTrajectoryDataset:
    def _dataset(self) -> TrajectoryDataset:
        trs = tuple(
            Trajectory(i, (loc(0, 0.0, 0.0), loc(0, 1.0, 1.0), loc(1, 2.0, 2.0)))
            for i in range(3)
        )
        return TrajectoryDataset("test", trs, network_name="net")

    def test_total_points(self):
        assert self._dataset().total_points == 9

    def test_len_and_iter(self):
        ds = self._dataset()
        assert len(ds) == 3
        assert [tr.trid for tr in ds] == [0, 1, 2]

    def test_lookup(self):
        assert self._dataset().trajectory(2).trid == 2

    def test_lookup_missing_raises(self):
        with pytest.raises(TrajectoryError):
            self._dataset().trajectory(99)
