#!/usr/bin/env python3
"""Traffic evolution: how the major flows change across the day.

Extends the paper's traffic-monitoring application with a temporal axis:
morning commuters flood one direction, evening commuters the other, and
a persistent midday trickle connects both.  Time-sliced flow-NEAT shows
the churn, and `persistent_segments` extracts the all-day corridors —
the strongest candidates for fixed infrastructure (bus lanes, sensors).

Run:  python examples/traffic_evolution.py
"""

from repro.core import (
    NEATConfig,
    flow_stability,
    persistent_segments,
    time_sliced_clustering,
)
from repro.mobisim import DemandProfile, simulate_demand
from repro.roadnet import atlanta_like

WINDOW = 3600.0  # one-hour windows

network = atlanta_like(scale=0.1)

# Three traffic regimes over three hours: morning rush, midday lull,
# evening rush — each window with its own hotspot layout (the evening
# commute mirrors the morning's, it doesn't replay it).
profile = DemandProfile.commuter_day(
    peak_objects=250, offpeak_objects=60, window_seconds=WINDOW, seed=100
)
dataset = simulate_demand(network, profile, name="commuter-day")
trajectories = list(dataset)
print(f"{len(trajectories)} trips over {len(profile.windows)} hours\n")

slices = time_sliced_clustering(
    network, trajectories, window=WINDOW, config=NEATConfig(min_card=5)
)

print(f"{'window':>6}  {'trips':>5}  {'flows':>5}  {'covered segments':>16}")
for timeslice in slices:
    print(
        f"{timeslice.index:>6}  {timeslice.trajectory_count:>5}  "
        f"{len(timeslice.result.flows):>5}  "
        f"{len(timeslice.covered_segments):>16}"
    )

stabilities = flow_stability(slices)
print("\nFlow stability between consecutive windows (Jaccard):")
for index, stability in enumerate(stabilities):
    print(f"  window {index} -> {index + 1}: {stability:.2f}")

persistent = persistent_segments(slices, min_fraction=1.0)
print(
    f"\n{len(persistent)} road segments carry a major flow in EVERY window "
    "- the all-day corridors worth permanent infrastructure."
)
