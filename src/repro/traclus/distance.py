"""The three-component line-segment distance of TraClus.

Lee et al. (SIGMOD'07), Section 4.2: the distance between two line
segments is a weighted sum of

* the *perpendicular* distance ``d_perp`` — how far apart the segments'
  supporting lines are,
* the *parallel* distance ``d_par`` — how far the shorter segment's
  projection extends beyond the longer one,
* the *angular* distance ``d_theta`` — the shorter segment's length scaled
  by the sine of the angle between them (the full length for angles past
  90 degrees).

All components are computed with the *longer* segment as the reference,
making the function symmetric.  The default weights are all 1, as in the
original paper and the NEAT paper's TraClus runs.
"""

from __future__ import annotations

import math

from ..roadnet.geometry import Point
from .model import LineSegment


def _project_scalar(p: Point, a: Point, b: Point) -> float:
    """Unclamped projection parameter of ``p`` on the line through a->b."""
    vx, vy = b.x - a.x, b.y - a.y
    denominator = vx * vx + vy * vy
    if denominator <= 0.0:
        return 0.0
    return ((p.x - a.x) * vx + (p.y - a.y) * vy) / denominator


def _point_line_distance(p: Point, a: Point, b: Point) -> float:
    """Distance from ``p`` to the infinite line through ``a -> b``."""
    t = _project_scalar(p, a, b)
    foot = Point(a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t)
    return p.distance_to(foot)


def perpendicular_distance(longer: LineSegment, shorter: LineSegment) -> float:
    """Lehmer-mean perpendicular component ``(l1^2+l2^2)/(l1+l2)``."""
    l1 = _point_line_distance(shorter.start, longer.start, longer.end)
    l2 = _point_line_distance(shorter.end, longer.start, longer.end)
    if l1 + l2 <= 0.0:
        return 0.0
    return (l1 * l1 + l2 * l2) / (l1 + l2)


def parallel_distance(longer: LineSegment, shorter: LineSegment) -> float:
    """Overhang of the shorter segment's projection beyond the longer one."""
    length = longer.length
    if length <= 0.0:
        return shorter.start.distance_to(longer.start)
    t1 = _project_scalar(shorter.start, longer.start, longer.end)
    t2 = _project_scalar(shorter.end, longer.start, longer.end)
    # Distance from each projection point to the nearer endpoint of the
    # longer segment, measured along it; inside projections contribute 0.
    overhang1 = max(-t1, t1 - 1.0, 0.0) * length
    overhang2 = max(-t2, t2 - 1.0, 0.0) * length
    return min(overhang1, overhang2)


def angular_distance(longer: LineSegment, shorter: LineSegment) -> float:
    """``len(shorter) * sin(theta)``, or the full length past 90 degrees."""
    lx, ly = longer.end.x - longer.start.x, longer.end.y - longer.start.y
    sx, sy = shorter.end.x - shorter.start.x, shorter.end.y - shorter.start.y
    longer_len = math.hypot(lx, ly)
    shorter_len = math.hypot(sx, sy)
    if longer_len <= 0.0 or shorter_len <= 0.0:
        return 0.0
    cos_theta = (lx * sx + ly * sy) / (longer_len * shorter_len)
    cos_theta = min(1.0, max(-1.0, cos_theta))
    if cos_theta < 0.0:  # angle beyond 90 degrees
        return shorter_len
    sin_theta = math.sqrt(max(0.0, 1.0 - cos_theta * cos_theta))
    return shorter_len * sin_theta


def segment_distance(
    a: LineSegment,
    b: LineSegment,
    w_perpendicular: float = 1.0,
    w_parallel: float = 1.0,
    w_angular: float = 1.0,
) -> float:
    """The TraClus distance between two line segments."""
    # Deterministic reference choice: longer segment first, coordinate
    # order on exact length ties, so the function is exactly symmetric.
    key_a = (a.length, a.start.x, a.start.y, a.end.x, a.end.y)
    key_b = (b.length, b.start.x, b.start.y, b.end.x, b.end.y)
    longer, shorter = (a, b) if key_a >= key_b else (b, a)
    return (
        w_perpendicular * perpendicular_distance(longer, shorter)
        + w_parallel * parallel_distance(longer, shorter)
        + w_angular * angular_distance(longer, shorter)
    )
