"""Event-based mobility-trace simulator (GTMobiSIM equivalent).

Generates trajectory datasets with the recipe of Section IV-A of the
paper: ``object_count`` mobile objects are placed at hotspots, each travels
under segment speed limits along the shortest path to a destination chosen
randomly from a predefined set, and its location ``(sid, x, y, t)`` is
recorded at a fixed sampling interval.

The simulator is fully deterministic given its config (seeds included), so
every dataset in the benchmarks can be regenerated bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.model import Location, Trajectory, TrajectoryDataset
from ..roadnet.network import RoadNetwork
from .agents import RouteWalk
from .hotspots import HotspotLayout, choose_layout
from .trips import TripPlanner


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Parameters of one trace-generation run.

    Attributes:
        object_count: Number of mobile objects (= trajectories attempted).
        sample_interval: Seconds between recorded location samples.
        hotspot_count: Number of start hotspots (paper's ATL500 uses 2).
        destination_count: Size of the predefined destination set (3 in
            the paper's ATL example).
        start_radius: Radius in metres around a hotspot from which start
            junctions are drawn.
        start_window: Departure times are uniform in ``[0, start_window]``.
        min_speed_factor: Lower bound of per-object speed variation.
        seed: Master RNG seed.
        name: Dataset name (e.g. ``"ATL500"``).
    """

    object_count: int
    sample_interval: float = 10.0
    hotspot_count: int = 2
    destination_count: int = 3
    start_radius: float = 800.0
    start_window: float = 300.0
    min_speed_factor: float = 0.75
    seed: int = 23
    name: str = "dataset"

    def __post_init__(self) -> None:
        if self.object_count < 1:
            raise ValueError("object_count must be >= 1")
        if self.sample_interval <= 0.0:
            raise ValueError("sample_interval must be positive")


@dataclass
class SimulationReport:
    """Bookkeeping from a simulation run."""

    planned: int = 0
    failed: int = 0
    total_points: int = 0
    layout: HotspotLayout | None = field(default=None, repr=False)


def simulate_dataset(
    network: RoadNetwork,
    config: SimulationConfig,
    report: SimulationReport | None = None,
) -> TrajectoryDataset:
    """Generate a trajectory dataset on ``network`` per ``config``.

    Objects whose endpoints cannot be connected (possible on barely
    connected networks) are skipped and counted in ``report.failed``;
    trajectory ids remain contiguous over the successful ones.
    """
    rng = random.Random(config.seed)
    layout = choose_layout(
        network,
        hotspot_count=config.hotspot_count,
        destination_count=config.destination_count,
        start_radius=config.start_radius,
        seed=rng.randrange(1 << 30),
    )
    planner = TripPlanner(
        network,
        layout,
        rng,
        start_window=config.start_window,
        min_speed_factor=config.min_speed_factor,
    )
    if report is None:
        report = SimulationReport()
    report.layout = layout

    trajectories: list[Trajectory] = []
    for trid in range(config.object_count):
        report.planned += 1
        try:
            plan = planner.plan_trip(trid)
        except Exception:
            report.failed += 1
            continue
        walk = RouteWalk(
            network, plan.route, start_time=plan.start_time,
            speed_factor=plan.speed_factor,
        )
        locations = []
        for t in walk.sample_times(config.sample_interval):
            sample = walk.position_at(t)
            locations.append(
                Location(sample.sid, sample.point.x, sample.point.y, t)
            )
        if len(locations) < 2:
            report.failed += 1
            continue
        trajectories.append(Trajectory(len(trajectories), tuple(locations)))

    dataset = TrajectoryDataset(
        name=config.name,
        trajectories=tuple(trajectories),
        network_name=network.name,
        metadata={
            "object_count": config.object_count,
            "sample_interval": config.sample_interval,
            "seed": config.seed,
            "hotspots": list(layout.hotspot_nodes),
            "destinations": list(layout.destination_nodes),
        },
    )
    report.total_points = dataset.total_points
    return dataset
