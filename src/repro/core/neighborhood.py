"""f-neighborhood operators over the active base-cluster pool.

Implements Definitions 6 and 7 of the paper.  Phase 2 repeatedly asks,
for the base cluster at the open end of a growing flow, "which *unassigned*
base clusters are its f-neighbors at this junction, and which carries the
maximum netflow?".  :class:`BaseClusterPool` maintains the shrinking set
``B`` of unassigned clusters and answers those queries.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..roadnet.network import RoadNetwork
from .base_cluster import BaseCluster, netflow


class BaseClusterPool:
    """The set ``B`` of base clusters not yet merged into a flow cluster.

    Iterating Phase 2 pops the densest remaining cluster as the next seed
    (Section III-B1's deterministic order) and removes clusters as flows
    absorb them.

    Args:
        network: The road network (for segment adjacency).
        clusters: Initial base clusters; any order (re-sorted internally).
    """

    def __init__(self, network: RoadNetwork, clusters: Iterable[BaseCluster]) -> None:
        self._network = network
        self._by_sid: dict[int, BaseCluster] = {}
        for cluster in clusters:
            if cluster.sid in self._by_sid:
                raise ValueError(f"duplicate base cluster for segment {cluster.sid}")
            self._by_sid[cluster.sid] = cluster
        # Density-descending seed order, sid ascending on ties; consumed
        # lazily by pop_densest (removed entries are skipped).
        self._seed_order = sorted(
            self._by_sid.values(), key=lambda s: (-s.density, s.sid)
        )
        self._seed_cursor = 0

    def __len__(self) -> int:
        return len(self._by_sid)

    def __bool__(self) -> bool:
        return bool(self._by_sid)

    def __contains__(self, sid: int) -> bool:
        return sid in self._by_sid

    def remove(self, cluster: BaseCluster) -> None:
        """Remove a cluster that has been merged into a flow."""
        del self._by_sid[cluster.sid]

    def pop_densest(self) -> BaseCluster:
        """Remove and return the densest remaining cluster (the next seed)."""
        while self._seed_cursor < len(self._seed_order):
            candidate = self._seed_order[self._seed_cursor]
            self._seed_cursor += 1
            if candidate.sid in self._by_sid:
                del self._by_sid[candidate.sid]
                return candidate
        raise IndexError("pop_densest from empty pool")

    def pop_random(self, rng) -> BaseCluster:
        """Remove and return a uniformly random remaining cluster.

        Exists for the seeding ablation: the paper argues (Section
        III-B1) that random seeds can grow flows describing negligible
        streams and lose determinism; this method lets the benchmark
        demonstrate it.
        """
        if not self._by_sid:
            raise IndexError("pop_random from empty pool")
        sid = rng.choice(sorted(self._by_sid))
        cluster = self._by_sid.pop(sid)
        return cluster

    # ------------------------------------------------------------------
    # Definitions 6 and 7
    # ------------------------------------------------------------------
    def f_neighbors_at(self, cluster: BaseCluster, node_id: int) -> list[BaseCluster]:
        """``N_f(S, n_u)`` restricted to unassigned clusters (Definition 6).

        Active base clusters whose segment is adjacent to ``cluster``'s at
        ``node_id`` and which share at least one participating trajectory.
        Sorted by sid for determinism.
        """
        neighbors = []
        for sid in self._network.adjacent_segments_at(cluster.sid, node_id):
            candidate = self._by_sid.get(sid)
            if candidate is not None and netflow(cluster, candidate) > 0:
                neighbors.append(candidate)
        neighbors.sort(key=lambda s: s.sid)
        return neighbors

    def f_neighbors(self, cluster: BaseCluster) -> list[BaseCluster]:
        """``N_f(S)``: f-neighbors at either endpoint (Definition 6)."""
        segment = self._network.segment(cluster.sid)
        at_u = self.f_neighbors_at(cluster, segment.node_u)
        seen = {s.sid for s in at_u}
        combined = list(at_u)
        for neighbor in self.f_neighbors_at(cluster, segment.node_v):
            if neighbor.sid not in seen:
                combined.append(neighbor)
        combined.sort(key=lambda s: s.sid)
        return combined


def maxflow_neighbor(
    cluster: BaseCluster, neighbors: Sequence[BaseCluster]
) -> tuple[BaseCluster | None, int]:
    """``maxFlow(S, n_u)``: the neighbor with the largest netflow (Def. 7).

    Ties break on lower sid for determinism.  Returns ``(None, 0)`` for an
    empty neighborhood.
    """
    best: BaseCluster | None = None
    best_flow = 0
    for neighbor in neighbors:
        flow = netflow(cluster, neighbor)
        if flow > best_flow or (
            flow == best_flow and best is not None and neighbor.sid < best.sid
        ):
            best = neighbor
            best_flow = flow
    return best, best_flow
