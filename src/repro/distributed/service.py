"""The NEAT server facade (Section II-C, in-process).

The paper sketches a 3-tier system: clients "send trajectories to a NEAT
server and make requests to the server to get trajectory clustering
results for a particular road network".  :class:`NeatService` is that
server tier as a library object, composing the pieces built elsewhere:

* ingestion goes through :class:`~repro.core.incremental.IncrementalNEAT`
  (batched Phases 1-2, warm Phase 3 refreshes);
* query responses are the serialized wire format of
  :mod:`repro.core.serialize`;
* every response is checked by :mod:`repro.core.validate` before leaving
  the service (a malformed answer is a bug, not a payload).

Everything is synchronous and in-process; transports (HTTP, gRPC) would
wrap this object without changing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..core.config import NEATConfig
from ..core.incremental import IncrementalNEAT
from ..core.model import Trajectory
from ..core.result import NEATResult
from ..core.serialize import result_to_dict
from ..core.validate import validate_result
from ..roadnet.network import RoadNetwork


@dataclass(frozen=True, slots=True)
class ServiceStats:
    """Operational counters of a service instance."""

    batches_ingested: int
    trajectories_ingested: int
    flow_count: int
    cluster_count: int
    shortest_path_computations: int


class NeatService:
    """An in-process NEAT server for one road network.

    Args:
        network: The road network clients' trajectories travel on.
        config: NEAT parameters applied to every ingest/refresh.

    Example:
        >>> from repro.roadnet import line_network
        >>> service = NeatService(line_network(3))
    """

    def __init__(self, network: RoadNetwork, config: NEATConfig | None = None) -> None:
        self.network = network
        self.config = config if config is not None else NEATConfig()
        self._incremental = IncrementalNEAT(network, self.config)
        self._batches = 0
        self._trajectories = 0

    # ------------------------------------------------------------------
    # Ingestion (the client -> server direction)
    # ------------------------------------------------------------------
    def submit(self, trajectories: Sequence[Trajectory]) -> dict[str, Any]:
        """Ingest a trajectory batch; returns an acknowledgement summary.

        Trajectory ids are re-assigned server-side (clients should not
        need to coordinate id spaces).
        """
        batch = self._incremental.add_batch(
            list(trajectories), auto_offset_ids=True
        )
        self._batches += 1
        self._trajectories += len(trajectories)
        return {
            "batch": batch.batch_index,
            "accepted": len(trajectories),
            "new_flows": len(batch.new_flows),
            "total_flows": len(self._incremental.flows),
            "clusters": len(batch.clusters),
        }

    # ------------------------------------------------------------------
    # Queries (the server -> client direction)
    # ------------------------------------------------------------------
    def get_clustering(self) -> dict[str, Any]:
        """The current global clustering as a serialized document.

        The response is validated against the framework invariants before
        being returned.
        """
        result = self._snapshot()
        validate_result(
            result, self.network, allow_shared_segments=True
        ).raise_if_invalid()
        return result_to_dict(result, network_name=self.network.name)

    def get_flow_summaries(self) -> list[dict[str, Any]]:
        """Lightweight per-flow digests (for map UIs / previews)."""
        return [
            {
                "flow": index,
                "segments": list(flow.sids),
                "endpoints": list(flow.endpoints),
                "cardinality": flow.trajectory_cardinality,
                "route_length_m": round(flow.route_length, 1),
            }
            for index, flow in enumerate(self._incremental.flows)
        ]

    def stats(self) -> ServiceStats:
        """Operational counters."""
        return ServiceStats(
            batches_ingested=self._batches,
            trajectories_ingested=self._trajectories,
            flow_count=len(self._incremental.flows),
            cluster_count=len(self._incremental.clusters),
            shortest_path_computations=self._incremental.engine.computations,
        )

    # ------------------------------------------------------------------
    def _snapshot(self) -> NEATResult:
        """Assemble a NEATResult view of the service's current state.

        The document covers the *retained* flows only: noise flows were
        filtered per batch (possibly under different auto thresholds), so
        including them could not satisfy a single global ``minCard`` — the
        served clustering is the kept-flow world, self-consistent by
        construction.
        """
        incremental = self._incremental
        result = NEATResult(mode="opt")
        members = [
            member for flow in incremental.flows for member in flow.members
        ]
        result.base_clusters = sorted(
            members, key=lambda cluster: (-cluster.density, cluster.sid)
        )
        result.flows = incremental.flows
        result.clusters = incremental.clusters
        cards = [flow.trajectory_cardinality for flow in result.flows]
        result.min_card_used = min(cards) if cards else 0
        return result
