"""Tests for trajectory preprocessing (trips, stays, simplification)."""

from __future__ import annotations

import pytest

from repro.core.model import Location, Trajectory
from repro.core.preprocess import (
    deduplicate,
    preprocess_stream,
    remove_stay_points,
    simplify,
    split_by_time_gap,
)


def loc(sid: int, x: float, y: float, t: float) -> Location:
    return Location(sid, x, y, t)


class TestSplitByTimeGap:
    def test_no_gap_single_trip(self):
        stream = Trajectory(5, tuple(loc(0, i * 10.0, 0, i * 5.0) for i in range(6)))
        trips = split_by_time_gap(stream, max_gap=10.0)
        assert len(trips) == 1
        assert trips[0].trid == 5
        assert len(trips[0]) == 6

    def test_gap_splits(self):
        locations = [loc(0, 0, 0, 0.0), loc(0, 10, 0, 5.0),
                     loc(0, 500, 0, 4000.0), loc(0, 510, 0, 4005.0)]
        trips = split_by_time_gap(Trajectory(0, tuple(locations)), max_gap=60.0)
        assert len(trips) == 2
        assert [tr.trid for tr in trips] == [0, 1]
        assert [len(tr) for tr in trips] == [2, 2]

    def test_singleton_runs_dropped(self):
        locations = [loc(0, 0, 0, 0.0), loc(0, 1, 0, 1000.0), loc(0, 2, 0, 2000.0)]
        trips = split_by_time_gap(Trajectory(0, tuple(locations)), max_gap=60.0)
        assert trips == []

    def test_next_trid(self):
        stream = Trajectory(0, (loc(0, 0, 0, 0.0), loc(0, 1, 0, 1.0)))
        trips = split_by_time_gap(stream, max_gap=60.0, next_trid=100)
        assert trips[0].trid == 100

    def test_rejects_bad_gap(self):
        stream = Trajectory(0, (loc(0, 0, 0, 0.0), loc(0, 1, 0, 1.0)))
        with pytest.raises(ValueError):
            split_by_time_gap(stream, max_gap=0.0)


class TestRemoveStayPoints:
    def test_collapses_parked_period(self):
        moving = [loc(0, i * 50.0, 0, i * 5.0) for i in range(3)]
        parked = [loc(0, 100.0 + dx, 0, 15.0 + k * 60.0)
                  for k, dx in enumerate((0.0, 2.0, -1.0, 3.0, 1.0))]
        onward = [loc(0, 200.0, 0, 400.0), loc(0, 300.0, 0, 420.0)]
        stream = Trajectory(0, tuple(moving + parked + onward))
        cleaned = remove_stay_points(stream, radius=10.0, min_duration=120.0)
        # The last moving sample sits at the parking spot, so it anchors
        # the stay: 5 parked samples + that anchor collapse into 1 point.
        assert len(cleaned) == (len(moving) - 1) + 1 + len(onward)
        assert [l.t for l in cleaned.locations] == [0.0, 5.0, 10.0, 400.0, 420.0]

    def test_short_pause_kept(self):
        # A 30 s stop at a red light is below min_duration: untouched.
        samples = [loc(0, 0, 0, 0.0), loc(0, 1, 0, 10.0), loc(0, 1.5, 0, 40.0),
                   loc(0, 100, 0, 60.0)]
        stream = Trajectory(0, tuple(samples))
        cleaned = remove_stay_points(stream, radius=10.0, min_duration=120.0)
        assert len(cleaned) == 4

    def test_always_valid_output(self):
        # Everything is one long stay: output still has >= 2 samples.
        samples = [loc(0, 0.1 * i, 0, 100.0 * i) for i in range(5)]
        stream = Trajectory(0, tuple(samples))
        cleaned = remove_stay_points(stream, radius=10.0, min_duration=60.0)
        assert len(cleaned) >= 2


class TestDeduplicate:
    def test_drops_identical_consecutive(self):
        stream = Trajectory(0, (
            loc(0, 5, 5, 0.0), loc(0, 5, 5, 1.0), loc(0, 5, 5, 2.0),
            loc(0, 9, 5, 3.0),
        ))
        cleaned = deduplicate(stream)
        assert len(cleaned) == 2

    def test_same_position_different_sid_kept(self):
        # Junction points carry the same coordinates but different sids.
        stream = Trajectory(0, (
            loc(0, 5, 5, 0.0), loc(0, 10, 5, 1.0), loc(1, 10, 5, 1.0),
            loc(1, 15, 5, 2.0),
        ))
        assert len(deduplicate(stream)) == 4


class TestSimplify:
    def test_straight_run_reduces_to_endpoints(self):
        stream = Trajectory(0, tuple(loc(0, i * 10.0, 0, i * 1.0) for i in range(10)))
        simplified = simplify(stream, epsilon=1.0)
        assert len(simplified) == 2
        assert simplified.start == stream.start
        assert simplified.end == stream.end

    def test_detour_point_survives(self):
        samples = [loc(0, 0, 0, 0.0), loc(0, 50, 40.0, 1.0), loc(0, 100, 0, 2.0)]
        simplified = simplify(Trajectory(0, tuple(samples)), epsilon=5.0)
        assert len(simplified) == 3

    def test_never_simplifies_across_segments(self):
        # Straight geometry but a segment change mid-way: the boundary
        # samples must survive for Phase 1's junction detection.
        samples = [loc(0, 0, 0, 0.0), loc(0, 50, 0, 1.0),
                   loc(1, 100, 0, 2.0), loc(1, 150, 0, 3.0)]
        simplified = simplify(Trajectory(0, tuple(samples)), epsilon=100.0)
        sids = [l.sid for l in simplified.locations]
        assert sids == [0, 0, 1, 1]

    def test_rejects_negative_epsilon(self):
        stream = Trajectory(0, (loc(0, 0, 0, 0.0), loc(0, 1, 0, 1.0)))
        with pytest.raises(ValueError):
            simplify(stream, epsilon=-1.0)


class TestPipeline:
    def test_full_pipeline(self):
        # A morning trip, a parked workday, an evening trip.
        morning = [loc(0, i * 20.0, 0, i * 10.0) for i in range(10)]
        parked = [loc(0, 180.0, 0, 100.0 + k * 600.0) for k in range(5)]
        evening = [loc(0, 180.0 - i * 20.0, 0, 4000.0 + i * 10.0) for i in range(10)]
        stream = Trajectory(7, tuple(morning + parked + evening))
        trips = preprocess_stream(
            stream, max_gap=300.0, stay_radius=10.0, stay_duration=300.0
        )
        assert len(trips) == 2  # morning and evening trips
        assert all(len(tr) >= 2 for tr in trips)
        assert trips[0].trid != trips[1].trid

    def test_clusterable_output(self, line3):
        """Preprocessed trips feed Phase 1 without issue."""
        from repro.core.base_cluster import form_base_clusters

        samples = [loc(0, 10.0 + i * 8.0, 0, i * 5.0) for i in range(10)]
        samples += [loc(1, 110.0 + i * 8.0, 0, 50.0 + i * 5.0) for i in range(10)]
        stream = Trajectory(0, tuple(samples))
        trips = preprocess_stream(stream)
        clusters = form_base_clusters(line3, trips)
        assert {c.sid for c in clusters} == {0, 1}
