"""Generic clustering building blocks shared by NEAT and TraClus."""

from .dbscan import NOISE, clusters_from_labels, dbscan

__all__ = ["NOISE", "clusters_from_labels", "dbscan"]
