"""Unit tests for road segment and junction value types."""

from __future__ import annotations

import pytest

from repro.roadnet.geometry import Point
from repro.roadnet.segment import (
    DEFAULT_SPEED_LIMIT,
    DirectedEdge,
    Junction,
    RoadSegment,
)


class TestRoadSegment:
    def test_basic_fields(self):
        segment = RoadSegment(sid=7, node_u=1, node_v=2, length=120.0)
        assert segment.endpoints == (1, 2)
        assert segment.speed_limit == DEFAULT_SPEED_LIMIT
        assert segment.bidirectional

    def test_other_endpoint(self):
        segment = RoadSegment(0, 1, 2, 100.0)
        assert segment.other_endpoint(1) == 2
        assert segment.other_endpoint(2) == 1

    def test_other_endpoint_rejects_stranger(self):
        with pytest.raises(ValueError):
            RoadSegment(0, 1, 2, 100.0).other_endpoint(3)

    def test_has_endpoint(self):
        segment = RoadSegment(0, 4, 9, 100.0)
        assert segment.has_endpoint(4)
        assert segment.has_endpoint(9)
        assert not segment.has_endpoint(5)

    def test_travel_time(self):
        segment = RoadSegment(0, 1, 2, length=100.0, speed_limit=10.0)
        assert segment.travel_time == pytest.approx(10.0)

    def test_rejects_non_positive_length(self):
        with pytest.raises(ValueError):
            RoadSegment(0, 1, 2, length=0.0)

    def test_rejects_non_positive_speed(self):
        with pytest.raises(ValueError):
            RoadSegment(0, 1, 2, length=10.0, speed_limit=-1.0)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            RoadSegment(0, 1, 1, length=10.0)


class TestDirectedEdge:
    def test_travel_time(self):
        edge = DirectedEdge(sid=0, tail=1, head=2, length=50.0, speed_limit=25.0)
        assert edge.travel_time == pytest.approx(2.0)


class TestJunction:
    def test_fields(self):
        junction = Junction(3, Point(1.0, 2.0))
        assert junction.node_id == 3
        assert junction.point == Point(1.0, 2.0)
