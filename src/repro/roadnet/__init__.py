"""Road-network substrate: graph model, routing, indexing, generators.

This package implements the reference road-network model of Section II-A of
the NEAT paper and everything the rest of the library needs from it:
shortest paths, spatial lookup, synthetic map generation and statistics.
"""

from .builder import line_network, network_from_edges, star_network
from .generators import (
    GridConfig,
    RadialConfig,
    REGION_PRESETS,
    atlanta_like,
    generate_grid_network,
    generate_radial_network,
    miami_like,
    san_jose_like,
)
from .csr import CSRGraph, build_csr
from .csv_io import load_network_csv, save_network_csv
from .geometry import Point
from .io import load_network, network_from_dict, network_to_dict, save_network
from .landmarks import LandmarkOracle, many_to_many_distances
from .network import RoadNetwork
from .segment import DEFAULT_SPEED_LIMIT, DirectedEdge, Junction, RoadSegment
from .shortest_path import (
    INFINITY,
    Route,
    ShortestPathEngine,
    dijkstra_distance,
    dijkstra_distance_counted,
    dijkstra_multi_target,
    dijkstra_single_source,
    plan_source_groups,
    shortest_route,
)
from .spatial_index import SegmentGridIndex
from .stats import NetworkStats, format_table1, network_stats
from .subnetwork import clip_trajectories, crop_network

__all__ = [
    "CSRGraph",
    "DEFAULT_SPEED_LIMIT",
    "DirectedEdge",
    "GridConfig",
    "INFINITY",
    "Junction",
    "LandmarkOracle",
    "NetworkStats",
    "Point",
    "REGION_PRESETS",
    "RadialConfig",
    "RoadNetwork",
    "RoadSegment",
    "Route",
    "SegmentGridIndex",
    "ShortestPathEngine",
    "atlanta_like",
    "build_csr",
    "clip_trajectories",
    "crop_network",
    "dijkstra_distance",
    "dijkstra_distance_counted",
    "dijkstra_multi_target",
    "dijkstra_single_source",
    "format_table1",
    "generate_grid_network",
    "generate_radial_network",
    "line_network",
    "load_network",
    "load_network_csv",
    "many_to_many_distances",
    "miami_like",
    "network_from_dict",
    "network_from_edges",
    "network_stats",
    "network_to_dict",
    "plan_source_groups",
    "san_jose_like",
    "save_network",
    "save_network_csv",
    "shortest_route",
    "star_network",
]
