"""Hotspot and destination placement for trace generation.

The paper's traces (Section IV-A, Figure 3) place mobile objects at a small
number of *hotspots* and send each to a destination "chosen randomly from a
predefined set of locations as in real life traveling".  This module picks
those anchor junctions deterministically from a seeded RNG, and samples
per-object start junctions in a radius around their hotspot so starts are
dense but not identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..roadnet.network import RoadNetwork


@dataclass(frozen=True, slots=True)
class HotspotLayout:
    """The chosen anchor junctions for a trace workload.

    Attributes:
        hotspot_nodes: Junctions around which objects begin their trips.
        destination_nodes: The predefined destination set.
        start_pool: For each hotspot, the junctions within the start radius
            (including the hotspot itself) that objects may start from.
    """

    hotspot_nodes: tuple[int, ...]
    destination_nodes: tuple[int, ...]
    start_pool: tuple[tuple[int, ...], ...]


def choose_layout(
    network: RoadNetwork,
    hotspot_count: int = 2,
    destination_count: int = 3,
    start_radius: float = 800.0,
    seed: int = 11,
) -> HotspotLayout:
    """Pick hotspots, destinations and start pools on ``network``.

    Hotspots and destinations are sampled without replacement from all
    junctions, with destinations forced to be distinct from hotspots so
    trips have non-trivial routes.  The start pool of a hotspot contains
    every junction whose Euclidean distance from it is at most
    ``start_radius``.

    Raises:
        ValueError: when the network has too few junctions for the request.
    """
    node_ids = network.node_ids()
    needed = hotspot_count + destination_count
    if len(node_ids) < needed:
        raise ValueError(
            f"network has {len(node_ids)} junctions, need at least {needed}"
        )
    rng = random.Random(seed)
    chosen = rng.sample(node_ids, needed)
    hotspot_nodes = tuple(chosen[:hotspot_count])
    destination_nodes = tuple(chosen[hotspot_count:])

    pools: list[tuple[int, ...]] = []
    for hotspot in hotspot_nodes:
        center = network.node_point(hotspot)
        pool = tuple(
            node_id
            for node_id in node_ids
            if network.node_point(node_id).distance_to(center) <= start_radius
        )
        pools.append(pool if pool else (hotspot,))
    return HotspotLayout(hotspot_nodes, destination_nodes, tuple(pools))
