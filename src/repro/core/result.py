"""Result containers for NEAT runs.

A :class:`NEATResult` carries the output of every phase that ran — base
clusters, flow clusters (kept and noise), final trajectory clusters — plus
per-phase wall-clock timings and Phase 3 instrumentation, so benchmarks can
report the exact quantities the paper's figures plot without re-running
anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .base_cluster import BaseCluster
from .flow_cluster import FlowCluster
from .refinement import RefinementStats, TrajectoryCluster


@dataclass
class PhaseTimings:
    """Wall-clock seconds spent in each NEAT phase."""

    base: float = 0.0
    flow: float = 0.0
    refine: float = 0.0

    @property
    def total(self) -> float:
        """Total clustering time across the phases that ran."""
        return self.base + self.flow + self.refine


@dataclass
class NEATResult:
    """Everything produced by one NEAT run.

    Attributes:
        mode: ``"base"``, ``"flow"`` or ``"opt"`` — which variant ran.
        base_clusters: Phase 1 output, density-descending.
        flows: Phase 2 flows meeting ``minCard`` (empty in base mode).
        noise_flows: Phase 2 flows filtered by ``minCard``.
        clusters: Phase 3 final clusters (empty unless mode is ``"opt"``).
        min_card_used: The resolved ``minCard`` threshold.
        timings: Per-phase wall-clock times (derived from the run's
            ``phase*`` trace spans).
        refinement_stats: Phase 3 instrumentation (ELB counters).
        telemetry: The run's full telemetry snapshot — ``{"trace": [...],
            "metrics": {...}}`` as produced by
            :meth:`repro.obs.Telemetry.snapshot`.  Empty when the run was
            executed with telemetry disabled.
        dropped_shards: Shard indices a distributed run had to abandon
            (node dead, retries exhausted, re-dispatch impossible); empty
            for centralized runs and fault-free distributed runs.  A
            non-empty list means the result covers the *surviving* shards
            only.
    """

    mode: str
    base_clusters: list[BaseCluster] = field(default_factory=list)
    flows: list[FlowCluster] = field(default_factory=list)
    noise_flows: list[FlowCluster] = field(default_factory=list)
    clusters: list[TrajectoryCluster] = field(default_factory=list)
    min_card_used: int = 0
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    refinement_stats: RefinementStats = field(default_factory=RefinementStats)
    telemetry: dict[str, Any] = field(default_factory=dict)
    dropped_shards: list[int] = field(default_factory=list)

    @property
    def flow_count(self) -> int:
        """Number of kept flow clusters (the Table III quantity)."""
        return len(self.flows)

    @property
    def cluster_count(self) -> int:
        """Number of final trajectory clusters."""
        return len(self.clusters)

    def summary(self) -> str:
        """One-line human-readable run summary."""
        dropped = (
            f" dropped_shards={self.dropped_shards}" if self.dropped_shards else ""
        )
        return (
            f"NEAT[{self.mode}] base={len(self.base_clusters)} "
            f"flows={len(self.flows)} (+{len(self.noise_flows)} noise, "
            f"minCard={self.min_card_used}) clusters={len(self.clusters)} "
            f"in {self.timings.total:.3f}s{dropped}"
        )
