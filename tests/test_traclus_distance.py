"""Unit tests for TraClus's three-component segment distance."""

from __future__ import annotations

import math

import pytest

from repro.roadnet.geometry import Point
from repro.traclus.distance import (
    angular_distance,
    parallel_distance,
    perpendicular_distance,
    segment_distance,
)
from repro.traclus.model import LineSegment


def seg(x1, y1, x2, y2, trid=0) -> LineSegment:
    return LineSegment(trid, Point(x1, y1), Point(x2, y2))


class TestPerpendicular:
    def test_parallel_offset(self):
        longer = seg(0, 0, 100, 0)
        shorter = seg(10, 5, 90, 5)
        assert perpendicular_distance(longer, shorter) == pytest.approx(5.0)

    def test_collinear_zero(self):
        assert perpendicular_distance(seg(0, 0, 100, 0), seg(20, 0, 60, 0)) == 0.0

    def test_lehmer_mean_weights_larger(self):
        longer = seg(0, 0, 100, 0)
        tilted = seg(0, 0, 100, 10)  # distances 0 and 10
        assert perpendicular_distance(longer, tilted) == pytest.approx(10.0)


class TestParallel:
    def test_contained_projection_zero(self):
        longer = seg(0, 0, 100, 0)
        shorter = seg(20, 5, 60, 5)
        assert parallel_distance(longer, shorter) == 0.0

    def test_overhang(self):
        longer = seg(0, 0, 100, 0)
        shorter = seg(110, 0, 150, 0)
        # Both projections beyond the end: overhangs 10 and 50, min = 10.
        assert parallel_distance(longer, shorter) == pytest.approx(10.0)

    def test_before_start(self):
        longer = seg(0, 0, 100, 0)
        shorter = seg(-30, 0, -10, 0)
        assert parallel_distance(longer, shorter) == pytest.approx(10.0)


class TestAngular:
    def test_parallel_zero(self):
        assert angular_distance(seg(0, 0, 100, 0), seg(0, 5, 50, 5)) == 0.0

    def test_right_angle_full_length(self):
        assert angular_distance(seg(0, 0, 100, 0), seg(0, 0, 0, 40)) == (
            pytest.approx(40.0)
        )

    def test_45_degrees(self):
        shorter = seg(0, 0, 10, 10)
        assert angular_distance(seg(0, 0, 100, 0), shorter) == pytest.approx(
            shorter.length * math.sin(math.pi / 4)
        )

    def test_obtuse_angle_full_length(self):
        # Anti-parallel-ish segments count their full length.
        shorter = seg(50, 0, 10, 1)
        assert angular_distance(seg(0, 0, 100, 0), shorter) == pytest.approx(
            shorter.length
        )


class TestSegmentDistance:
    def test_symmetric(self):
        a = seg(0, 0, 100, 0)
        b = seg(20, 30, 90, 45)
        assert segment_distance(a, b) == pytest.approx(segment_distance(b, a))

    def test_identical_zero(self):
        a = seg(5, 5, 50, 20)
        assert segment_distance(a, a) == 0.0

    def test_nonnegative(self):
        pairs = [
            (seg(0, 0, 10, 0), seg(100, 100, 120, 130)),
            (seg(0, 0, 10, 0), seg(0, 0, -10, 0)),
            (seg(1, 1, 1.5, 2), seg(-3, 4, 0, 0)),
        ]
        for a, b in pairs:
            assert segment_distance(a, b) >= 0.0

    def test_weights_apply(self):
        longer = seg(0, 0, 100, 0)
        shorter = seg(10, 5, 90, 5)
        only_perp = segment_distance(
            longer, shorter, w_perpendicular=1.0, w_parallel=0.0, w_angular=0.0
        )
        assert only_perp == pytest.approx(5.0)
        doubled = segment_distance(
            longer, shorter, w_perpendicular=2.0, w_parallel=0.0, w_angular=0.0
        )
        assert doubled == pytest.approx(10.0)

    def test_closer_pairs_have_smaller_distance(self):
        reference = seg(0, 0, 100, 0)
        near = seg(0, 2, 100, 2)
        far = seg(0, 40, 100, 40)
        assert segment_distance(reference, near) < segment_distance(reference, far)
