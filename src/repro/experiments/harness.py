"""Experiment harness helpers: timing, metrics export, table rendering.

Every benchmark module regenerates one of the paper's tables/figures and
prints a "paper vs measured" text table; the helpers here keep that output
consistent and the timing methodology in one place.  Runs that produce a
:class:`~repro.core.result.NEATResult` can export its telemetry snapshot
alongside the text report with :func:`result_metrics` +
:func:`export_metrics`, making every operational counter behind a figure
(Phase timings, ELB prunes, Dijkstra calls) reproducible from one JSON
artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Sequence, TypeVar

T = TypeVar("T")


def timed(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` once, returning ``(result, wall_seconds)``."""
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def result_metrics(result) -> dict[str, Any]:
    """A NEAT run's telemetry snapshot, derived if the run carried none.

    Prefers the :attr:`~repro.core.result.NEATResult.telemetry` snapshot
    recorded by the pipeline; for results produced with telemetry disabled
    (or deserialized ones) it falls back to reconstructing the phase
    timings and refinement counters from the result's own fields, so every
    caller gets the same document shape.
    """
    if result.telemetry:
        return result.telemetry
    stats = result.refinement_stats
    timings = result.timings
    return {
        "trace": [
            {
                "name": "neat.run",
                "duration_s": timings.total,
                "children": [
                    {"name": "phase1.fragmentation", "duration_s": timings.base},
                    {"name": "phase2.flow_formation", "duration_s": timings.flow},
                    {"name": "phase3.refinement", "duration_s": timings.refine},
                ],
            }
        ],
        "metrics": {
            "counters": {
                "neat.phase3.pair_checks": stats.pair_checks,
                "neat.phase3.elb_pruned": stats.elb_pruned,
                "neat.phase3.hausdorff_evaluations": stats.hausdorff_evaluations,
                "neat.phase3.sp_computations": stats.shortest_path_computations,
                "neat.phase3.clusters": len(result.clusters),
            },
            "gauges": {"neat.phase2.min_card_used": result.min_card_used},
            "histograms": {},
        },
    }


def export_metrics(snapshot: dict[str, Any], path: str | Path) -> Path:
    """Write a telemetry snapshot as pretty-printed JSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return target


def export_trace(snapshot: dict[str, Any], path: str | Path) -> Path:
    """Write a snapshot's span forest as Chrome trace-event JSON.

    Accepts the same documents :func:`result_metrics` produces (legacy
    snapshots without timeline offsets are laid out sequentially), so any
    benchmark artifact can be opened in Perfetto next to its text table.
    """
    from ..obs.export import save_chrome_trace

    return save_chrome_trace(snapshot, path)


def format_table(header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width text table with a separator under the header."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    all_rows = [list(header)] + text_rows
    widths = [
        max(len(row[i]) for row in all_rows) for i in range(len(header))
    ]
    lines = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(all_rows[0])),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    lines.extend(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in text_rows
    )
    return "\n".join(lines)


def format_seconds(seconds: float) -> str:
    """Human-friendly duration with sensible precision."""
    if seconds < 0.01:
        return f"{seconds * 1000:.2f}ms"
    if seconds < 10.0:
        return f"{seconds:.3f}s"
    return f"{seconds:.1f}s"


def banner(title: str) -> str:
    """A section banner for benchmark output."""
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"
