"""Unit tests for the generic pluggable-neighborhood DBSCAN."""

from __future__ import annotations

import pytest

from repro.cluster.dbscan import NOISE, clusters_from_labels, dbscan


def region_from_points(points, eps):
    """1-D region query over a list of scalars."""

    def query(i):
        return [j for j in range(len(points)) if j != i and abs(points[i] - points[j]) <= eps]

    return query


class TestDbscan:
    def test_two_blobs(self):
        points = [0.0, 1.0, 2.0, 100.0, 101.0]
        labels = dbscan(len(points), region_from_points(points, 1.5), min_pts=2)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]

    def test_noise_with_high_min_pts(self):
        points = [0.0, 50.0, 100.0]
        labels = dbscan(len(points), region_from_points(points, 1.0), min_pts=2)
        assert labels == [NOISE, NOISE, NOISE]

    def test_min_pts_one_connected_components(self):
        points = [0.0, 1.0, 10.0]
        labels = dbscan(len(points), region_from_points(points, 2.0), min_pts=1)
        assert labels[0] == labels[1]
        assert labels[2] != labels[0]
        assert NOISE not in labels

    def test_border_point_joins_first_cluster(self):
        # Point 2 is a border point between two dense groups; standard
        # DBSCAN assigns it to whichever cluster reaches it first.
        points = [0.0, 1.0, 2.0, 3.0, 4.0]
        labels = dbscan(len(points), region_from_points(points, 1.1), min_pts=3)
        assert labels.count(NOISE) == 0
        assert len(set(labels)) == 1

    def test_order_controls_cluster_ids(self):
        points = [0.0, 1.0, 100.0, 101.0]
        query = region_from_points(points, 2.0)
        forward = dbscan(len(points), query, 1, order=[0, 1, 2, 3])
        backward = dbscan(len(points), query, 1, order=[3, 2, 1, 0])
        # Same partition, different ids.
        assert forward[0] == 0 and backward[3] == 0
        assert {frozenset([0, 1]), frozenset([2, 3])} == {
            frozenset(i for i, l in enumerate(forward) if l == c)
            for c in set(forward)
        }

    def test_min_pts_validation(self):
        with pytest.raises(ValueError):
            dbscan(3, lambda i: [], 0)

    def test_empty(self):
        assert dbscan(0, lambda i: [], 1) == []

    def test_region_query_including_self_ok(self):
        # The contract allows the region query to include the item itself.
        points = [0.0, 1.0]

        def query(i):
            return [j for j in range(2) if abs(points[i] - points[j]) <= 2.0]

        labels = dbscan(2, query, min_pts=2)
        assert labels[0] == labels[1] != NOISE


class TestClustersFromLabels:
    def test_groups_and_drops_noise(self):
        labels = [0, 1, 0, NOISE, 1]
        assert clusters_from_labels(labels) == [[0, 2], [1, 4]]

    def test_empty(self):
        assert clusters_from_labels([]) == []
