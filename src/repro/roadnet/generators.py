"""Synthetic road-network generators calibrated to the paper's Table I.

The paper evaluates on three real maps (North-West Atlanta, West San Jose,
Miami-Dade) obtained from USGS/TIGER data, which is unavailable offline.
NEAT's behaviour depends on the *structure* of the map — junction/segment
counts, segment lengths, junction degrees, connectivity — not on geographic
fidelity, so this module generates networks matching those structural
statistics (see ``DESIGN.md`` Section 3 for the substitution rationale).

The construction is a jittered grid: junctions sit on a perturbed lattice
(so segment lengths vary realistically), a random spanning tree keeps the
network connected, non-tree lattice edges are thinned to hit the target
segment/junction ratio (which fixes the average degree), and a few "hub"
junctions receive extra diagonal links to reach the target maximum degree.
Arterial rows/columns get higher speed limits, giving the speed-limit
factor ``v`` of Definition 9 something meaningful to weigh.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from .geometry import Point
from .network import RoadNetwork

#: Speed limits in metres/second by road class.
SPEEDS = {"local": 13.9, "arterial": 22.2, "highway": 29.1}


@dataclass(frozen=True, slots=True)
class GridConfig:
    """Parameters for :func:`generate_grid_network`.

    Attributes:
        rows: Lattice rows (junctions per column).
        cols: Lattice columns (junctions per row).
        spacing: Target average segment length in metres.
        jitter: Maximum junction displacement as a fraction of ``spacing``
            (kept below 0.5 so neighbouring junctions never swap order).
        avg_degree: Target mean junction degree; controls how many non-tree
            lattice edges survive thinning.
        max_degree: Target maximum junction degree; reached by adding
            diagonal links at hub junctions.
        hub_count: Number of hub junctions receiving extra links.
        arterial_every: Every ``k``-th row/column is an arterial road.
        highway_rows: Number of highway corridors crossing the map.
        seed: RNG seed; the generator is fully deterministic given a seed.
        name: Name for the resulting network.
    """

    rows: int
    cols: int
    spacing: float = 150.0
    jitter: float = 0.25
    avg_degree: float = 2.6
    max_degree: int = 6
    hub_count: int = 3
    arterial_every: int = 5
    highway_rows: int = 1
    seed: int = 7
    name: str = "synthetic-grid"

    def __post_init__(self) -> None:
        if self.rows < 2 or self.cols < 2:
            raise ValueError("grid must be at least 2x2")
        if not (0.0 <= self.jitter < 0.5):
            raise ValueError("jitter must be in [0, 0.5)")
        if self.avg_degree < 2.0:
            raise ValueError("avg_degree below 2 cannot stay connected on a lattice")


def generate_grid_network(config: GridConfig) -> RoadNetwork:
    """Generate a connected road network from a jittered lattice.

    The result is deterministic for a given config (including seed).
    """
    rng = random.Random(config.seed)
    network = RoadNetwork(name=config.name)

    node_ids: dict[tuple[int, int], int] = {}
    for r in range(config.rows):
        for c in range(config.cols):
            dx = rng.uniform(-config.jitter, config.jitter) * config.spacing
            dy = rng.uniform(-config.jitter, config.jitter) * config.spacing
            point = Point(c * config.spacing + dx, r * config.spacing + dy)
            node_ids[(r, c)] = network.add_junction(point)

    lattice_edges = _lattice_edges(config)
    tree_edges = _random_spanning_tree(config, lattice_edges, rng)
    extra_pool = [edge for edge in lattice_edges if edge not in tree_edges]
    rng.shuffle(extra_pool)

    junctions = config.rows * config.cols
    target_segments = max(junctions - 1, round(config.avg_degree * junctions / 2.0))
    chosen = list(tree_edges)
    chosen.extend(extra_pool[: max(0, target_segments - len(chosen))])

    for (ra, ca), (rb, cb) in sorted(chosen):
        road_class = _road_class(config, (ra, ca), (rb, cb))
        network.add_segment(
            node_ids[(ra, ca)],
            node_ids[(rb, cb)],
            speed_limit=SPEEDS[road_class],
            road_class=road_class,
        )

    _add_hub_links(config, network, node_ids, rng)
    return network


def _lattice_edges(
    config: GridConfig,
) -> list[tuple[tuple[int, int], tuple[int, int]]]:
    """All horizontal/vertical neighbour pairs of the lattice."""
    edges = []
    for r in range(config.rows):
        for c in range(config.cols):
            if c + 1 < config.cols:
                edges.append(((r, c), (r, c + 1)))
            if r + 1 < config.rows:
                edges.append(((r, c), (r + 1, c)))
    return edges


def _random_spanning_tree(
    config: GridConfig,
    edges: list[tuple[tuple[int, int], tuple[int, int]]],
    rng: random.Random,
) -> set[tuple[tuple[int, int], tuple[int, int]]]:
    """A uniform-ish random spanning tree over the lattice (randomized DFS)."""
    adjacency: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for a, b in edges:
        adjacency.setdefault(a, []).append(b)
        adjacency.setdefault(b, []).append(a)
    start = (0, 0)
    visited = {start}
    tree: set[tuple[tuple[int, int], tuple[int, int]]] = set()
    stack = [start]
    while stack:
        node = stack[-1]
        neighbors = [n for n in adjacency[node] if n not in visited]
        if not neighbors:
            stack.pop()
            continue
        nxt = rng.choice(neighbors)
        visited.add(nxt)
        a, b = min(node, nxt), max(node, nxt)
        tree.add((a, b))
        stack.append(nxt)
    return tree


def _road_class(
    config: GridConfig, a: tuple[int, int], b: tuple[int, int]
) -> str:
    """Classify a lattice edge as highway, arterial or local."""
    highway_rows = {
        round((i + 1) * config.rows / (config.highway_rows + 1))
        for i in range(config.highway_rows)
    }
    if a[0] == b[0] and a[0] in highway_rows:
        return "highway"
    if a[0] == b[0] and a[0] % config.arterial_every == 0:
        return "arterial"
    if a[1] == b[1] and a[1] % config.arterial_every == 0:
        return "arterial"
    return "local"


def _add_hub_links(
    config: GridConfig,
    network: RoadNetwork,
    node_ids: dict[tuple[int, int], int],
    rng: random.Random,
) -> None:
    """Add diagonal links at hub junctions to reach the target max degree."""
    interior = [
        (r, c)
        for r in range(1, config.rows - 1)
        for c in range(1, config.cols - 1)
    ]
    if not interior:
        return
    hubs = rng.sample(interior, min(config.hub_count, len(interior)))
    for r, c in hubs:
        hub_id = node_ids[(r, c)]
        diagonals = [(r - 1, c - 1), (r - 1, c + 1), (r + 1, c - 1), (r + 1, c + 1)]
        extra_targets = diagonals + [(r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)]
        for target in extra_targets:
            if network.degree(hub_id) >= config.max_degree:
                break
            target_id = node_ids.get(target)
            if target_id is None:
                continue
            already = any(
                network.segment(sid).has_endpoint(target_id)
                for sid in network.incident_segments(hub_id)
            )
            if not already:
                network.add_segment(
                    hub_id, target_id, speed_limit=SPEEDS["arterial"],
                    road_class="arterial",
                )


# ----------------------------------------------------------------------
# Presets calibrated to Table I of the paper
# ----------------------------------------------------------------------

#: Target structural statistics from Table I: (junctions, segments,
#: avg segment length in metres, max degree).
TABLE1_TARGETS = {
    "ATL": (6979, 9187, 150.7, 6),
    "SJ": (10929, 14600, 124.7, 6),
    "MIA": (103377, 154681, 169.0, 9),
}


def _preset(region: str, scale: float, seed: int) -> RoadNetwork:
    """Build a region preset scaled by ``scale`` (1.0 = paper size)."""
    junctions, segments, avg_len, max_degree = TABLE1_TARGETS[region]
    target_junctions = max(4, round(junctions * scale))
    side = max(2, round(math.sqrt(target_junctions)))
    avg_degree = 2.0 * segments / junctions
    config = GridConfig(
        rows=side,
        cols=max(2, round(target_junctions / side)),
        spacing=avg_len,
        avg_degree=avg_degree,
        max_degree=max_degree,
        hub_count=max(1, round(3 * math.sqrt(scale * 10))),
        seed=seed,
        name=f"{region}(x{scale:g})",
    )
    return generate_grid_network(config)


def atlanta_like(scale: float = 0.1, seed: int = 71) -> RoadNetwork:
    """North-West-Atlanta-like network (Table I row 1), scaled."""
    return _preset("ATL", scale, seed)


def san_jose_like(scale: float = 0.1, seed: int = 72) -> RoadNetwork:
    """West-San-Jose-like network (Table I row 2), scaled."""
    return _preset("SJ", scale, seed)


def miami_like(scale: float = 0.02, seed: int = 73) -> RoadNetwork:
    """Miami-Dade-like network (Table I row 3), scaled.

    Miami-Dade is ~15x larger than the other two maps, so its default
    scale is smaller to keep bench runtimes proportionate.
    """
    return _preset("MIA", scale, seed)


REGION_PRESETS = {
    "ATL": atlanta_like,
    "SJ": san_jose_like,
    "MIA": miami_like,
}


# ----------------------------------------------------------------------
# Radial (ring-and-spoke) topology
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class RadialConfig:
    """Parameters for :func:`generate_radial_network`.

    A ring-and-spoke city: a centre junction, ``rings`` concentric rings
    of ``spokes`` junctions each, radial arterials along the spokes and
    local roads along the rings.  European-style topologies stress NEAT
    differently from the grid presets: junction degrees are uniform but
    route choice between two points is much richer.
    """

    rings: int = 5
    spokes: int = 8
    ring_spacing: float = 300.0
    jitter: float = 0.1
    ring_keep_fraction: float = 0.9
    seed: int = 7
    name: str = "radial"

    def __post_init__(self) -> None:
        if self.rings < 1 or self.spokes < 3:
            raise ValueError("need at least 1 ring and 3 spokes")
        if not (0.0 <= self.jitter < 0.5):
            raise ValueError("jitter must be in [0, 0.5)")
        if not (0.0 < self.ring_keep_fraction <= 1.0):
            raise ValueError("ring_keep_fraction must be in (0, 1]")


def generate_radial_network(config: RadialConfig) -> RoadNetwork:
    """Generate a ring-and-spoke road network.

    Spokes are always complete (keeping the network connected); ring
    segments are randomly thinned to ``ring_keep_fraction``.
    """
    rng = random.Random(config.seed)
    network = RoadNetwork(name=config.name)
    center = network.add_junction(Point(0.0, 0.0))

    node_ids: dict[tuple[int, int], int] = {}
    for ring in range(1, config.rings + 1):
        radius = ring * config.ring_spacing
        for spoke in range(config.spokes):
            angle = 2.0 * math.pi * spoke / config.spokes
            wobble = rng.uniform(-config.jitter, config.jitter) * config.ring_spacing
            point = Point(
                (radius + wobble) * math.cos(angle),
                (radius + wobble) * math.sin(angle),
            )
            node_ids[(ring, spoke)] = network.add_junction(point)

    # Spokes: centre out to the last ring (arterial).
    for spoke in range(config.spokes):
        previous = center
        for ring in range(1, config.rings + 1):
            network.add_segment(
                previous, node_ids[(ring, spoke)],
                speed_limit=SPEEDS["arterial"], road_class="arterial",
            )
            previous = node_ids[(ring, spoke)]

    # Rings: neighbours along each ring, thinned (local roads).
    for ring in range(1, config.rings + 1):
        for spoke in range(config.spokes):
            if rng.random() > config.ring_keep_fraction:
                continue
            network.add_segment(
                node_ids[(ring, spoke)],
                node_ids[(ring, (spoke + 1) % config.spokes)],
                speed_limit=SPEEDS["local"], road_class="local",
            )
    return network
