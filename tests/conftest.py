"""Shared fixtures: canned networks, trajectories and datasets.

The ``paper_example`` fixture reconstructs the worked example of
Figure 1(b) of the NEAT paper — five trajectories over a star junction —
whose base-cluster densities, netflows and f-neighborhoods the paper
states explicitly; several test modules assert against those numbers.
"""

from __future__ import annotations

import pytest

from repro.core.model import Location, Trajectory
from repro.roadnet.builder import line_network, network_from_edges, star_network
from repro.roadnet.network import RoadNetwork


def trajectory_through(
    network: RoadNetwork, trid: int, sids: list[int], t0: float = 0.0
) -> Trajectory:
    """A trajectory sampled at the midpoint of each segment of a route.

    Consecutive sids must belong to connected segments; junction insertion
    during fragmentation recovers the crossings.
    """
    locations = []
    t = t0
    for sid in sids:
        length = network.segment(sid).length
        for fraction in (1.0 / 3.0, 2.0 / 3.0):
            point = network.point_on_segment(sid, length * fraction)
            locations.append(Location(sid, point.x, point.y, t))
            t += 5.0
    return Trajectory(trid, tuple(locations))


@pytest.fixture
def line3() -> RoadNetwork:
    """Three segments in a row: nodes 0-1-2-3, sids 0,1,2."""
    return line_network(3, segment_length=100.0)


@pytest.fixture
def star4() -> RoadNetwork:
    """Four segments radiating from node 0 (Figure 1(b)'s junction n2)."""
    return star_network(4, branch_length=100.0)


@pytest.fixture
def grid3x3() -> RoadNetwork:
    """A full 3x3 lattice: 9 nodes, 12 segments, spacing 100 m."""
    coordinates = [(c * 100.0, r * 100.0) for r in range(3) for c in range(3)]
    edges = []
    for r in range(3):
        for c in range(3):
            node = r * 3 + c
            if c < 2:
                edges.append((node, node + 1))
            if r < 2:
                edges.append((node, node + 3))
    return network_from_edges(coordinates, edges, name="grid3x3")


class PaperExample:
    """Figure 1(b): the network, trajectories, and expected quantities.

    Segment mapping (paper name -> sid): n1n2 -> s1, n2n3 -> s2,
    n2n4 -> s3, n2n5 -> s4, plus a helper spur at n1 (s5) that lets
    trajectory T3 leave and re-enter n1n2, giving n1n2 its four
    t-fragments from three trajectories as the paper states.
    """

    def __init__(self) -> None:
        network = star_network(4, branch_length=100.0, name="fig1b")
        # Star: node 0 = n2 (center); leaves 1..4 = n1, n3, n4, n5.
        # sids: s1=0 (n2-n1), s2=1 (n2-n3), s3=2 (n2-n4), s4=3 (n2-n5).
        spur_node = network.add_junction(
            network.node_point(1).translated(50.0, 50.0)
        )
        self.spur_sid = network.add_segment(1, spur_node)  # s5 = 4
        self.network = network
        self.center = 0
        self.s1, self.s2, self.s3, self.s4 = 0, 1, 2, 3

        def through(trid: int, sids: list[int]) -> Trajectory:
            return trajectory_through(network, trid, sids)

        self.trajectories = [
            through(1, [self.s1, self.s2]),              # T1: n1 -> n2 -> n3
            through(2, [self.s1, self.s3]),              # T2: n1 -> n2 -> n4
            # T3: n3 -> n2 -> n1 -> spur -> n1 -> n2 -> n5 (two s1 fragments)
            through(3, [self.s2, self.s1, self.spur_sid, self.s1, self.s4]),
            through(4, [self.s2]),                       # T4: on n2n3 only
            through(5, [self.s4]),                       # T5: on n2n5 only
        ]
        #: The paper's stated densities for S1..S4.
        self.expected_densities = {self.s1: 4, self.s2: 3, self.s3: 1, self.s4: 2}
        #: The paper's stated netflows.
        self.expected_netflows = {
            (self.s1, self.s2): 2,
            (self.s1, self.s3): 1,
            (self.s1, self.s4): 1,
            (self.s2, self.s3): 0,
            (self.s2, self.s4): 1,
        }


@pytest.fixture
def paper_example() -> PaperExample:
    return PaperExample()


@pytest.fixture
def small_workload():
    """A small ATL-like network with a 60-object dataset (module-scope cost)."""
    from repro.mobisim.simulator import SimulationConfig, simulate_dataset
    from repro.roadnet.generators import atlanta_like

    network = atlanta_like(scale=0.05, seed=5)
    dataset = simulate_dataset(
        network, SimulationConfig(object_count=60, seed=5, name="ATL60")
    )
    return network, dataset
