"""Unit tests for base-cluster formation (Phase 1, step 2)."""

from __future__ import annotations

import pytest

from repro.core.base_cluster import (
    BaseCluster,
    densecore,
    form_base_clusters,
    group_fragments,
    netflow,
)
from repro.core.model import Location, TFragment

from conftest import trajectory_through


def frag(trid: int, sid: int) -> TFragment:
    return TFragment(
        trid, sid, (Location(sid, 0.0, 0.0, 0.0), Location(sid, 1.0, 0.0, 1.0))
    )


class TestBaseCluster:
    def test_add_checks_sid(self):
        cluster = BaseCluster(5)
        with pytest.raises(ValueError):
            cluster.add(frag(0, 6))

    def test_density_counts_fragments(self):
        cluster = BaseCluster(0)
        cluster.add(frag(1, 0))
        cluster.add(frag(1, 0))  # same trajectory, second fragment
        assert cluster.density == 2
        assert cluster.trajectory_cardinality == 1

    def test_participants_cache_invalidated_on_add(self):
        cluster = BaseCluster(0)
        cluster.add(frag(1, 0))
        assert cluster.participants == frozenset({1})
        cluster.add(frag(2, 0))
        assert cluster.participants == frozenset({1, 2})


class TestNetflow:
    def test_counts_shared_trajectories(self):
        a = BaseCluster(0)
        b = BaseCluster(1)
        for trid in (1, 2, 3):
            a.add(frag(trid, 0))
        for trid in (2, 3, 4):
            b.add(frag(trid, 1))
        assert netflow(a, b) == 2

    def test_disjoint_is_zero(self):
        a = BaseCluster(0)
        a.add(frag(1, 0))
        b = BaseCluster(1)
        b.add(frag(2, 1))
        assert netflow(a, b) == 0

    def test_multiple_fragments_count_once(self):
        # Netflow counts common *trajectories*, not fragments.
        a = BaseCluster(0)
        a.add(frag(1, 0))
        a.add(frag(1, 0))
        b = BaseCluster(1)
        b.add(frag(1, 1))
        assert netflow(a, b) == 1


class TestGroupFragments:
    def test_groups_by_sid(self):
        fragments = [frag(0, 0), frag(1, 0), frag(0, 1)]
        clusters = group_fragments(fragments)
        assert {c.sid: c.density for c in clusters} == {0: 2, 1: 1}

    def test_sorted_by_density_then_sid(self):
        fragments = [frag(0, 2), frag(0, 1), frag(1, 1), frag(0, 3), frag(1, 3)]
        clusters = group_fragments(fragments)
        assert [c.sid for c in clusters] == [1, 3, 2]

    def test_empty(self):
        assert group_fragments([]) == []


class TestFormBaseClusters:
    def test_end_to_end(self, line3):
        trs = [trajectory_through(line3, i, [0, 1]) for i in range(3)]
        trs.append(trajectory_through(line3, 3, [2]))
        clusters = form_base_clusters(line3, trs)
        assert {c.sid: c.density for c in clusters} == {0: 3, 1: 3, 2: 1}

    def test_head_is_densecore(self, line3):
        trs = [trajectory_through(line3, i, [1]) for i in range(4)]
        trs.append(trajectory_through(line3, 9, [0]))
        clusters = form_base_clusters(line3, trs)
        assert clusters[0].sid == 1
        assert densecore(clusters).sid == 1


class TestDensecore:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            densecore([])

    def test_tie_breaks_on_sid(self):
        a = BaseCluster(3)
        a.add(frag(0, 3))
        b = BaseCluster(1)
        b.add(frag(0, 1))
        assert densecore([a, b]).sid == 1
