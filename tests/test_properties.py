"""Property-based tests (hypothesis) for core invariants.

Covers the library's load-bearing mathematical properties: metric-like
behaviour of the distance functions, the Euclidean-lower-bound inequality
that justifies the ELB pruning, losslessness of Phase 1/2 partitioning,
and serialization round-trips.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.dbscan import NOISE, dbscan
from repro.roadnet.geometry import (
    Point,
    angle_between,
    interpolate,
    point_segment_distance,
    project_onto_segment,
)
from repro.traclus.distance import segment_distance
from repro.traclus.model import LineSegment

coordinates = st.floats(
    min_value=-1e5, max_value=1e5, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coordinates, coordinates)


class TestGeometryProperties:
    @given(points, points)
    def test_distance_symmetric_nonnegative(self, a, b):
        assert a.distance_to(b) >= 0.0
        assert a.distance_to(b) == b.distance_to(a)

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(points, points, points)
    def test_projection_distance_minimal(self, p, a, b):
        closest, t, distance = project_onto_segment(p, a, b)
        assert 0.0 <= t <= 1.0
        # No sampled point on the segment is closer than the projection.
        for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
            candidate = interpolate(a, b, fraction)
            assert distance <= p.distance_to(candidate) + 1e-6

    @given(points, points, st.floats(min_value=0.0, max_value=1.0))
    def test_interpolation_on_segment(self, a, b, t):
        q = interpolate(a, b, t)
        assert point_segment_distance(q, a, b) <= 1e-6 * max(
            1.0, a.distance_to(b)
        )

    @given(
        st.floats(min_value=-math.pi, max_value=math.pi),
        st.floats(min_value=-math.pi, max_value=math.pi),
    )
    def test_angle_between_bounds_and_symmetry(self, h1, h2):
        angle = angle_between(h1, h2)
        assert 0.0 <= angle <= math.pi + 1e-12
        assert angle == pytest.approx(angle_between(h2, h1), abs=1e-9)


segments = st.builds(
    LineSegment, st.just(0), points, points
).filter(lambda s: s.length > 1e-6)


class TestTraClusDistanceProperties:
    @given(segments, segments)
    @settings(max_examples=200)
    def test_symmetric(self, a, b):
        assert segment_distance(a, b) == segment_distance(b, a)

    @given(segments, segments)
    @settings(max_examples=200)
    def test_nonnegative(self, a, b):
        assert segment_distance(a, b) >= 0.0

    @given(segments)
    def test_self_distance_near_zero(self, a):
        # Exact zero up to floating-point noise in the sin() of the
        # angular component for near-degenerate directions.
        assert segment_distance(a, a) <= 1e-6 * max(1.0, a.length)


class TestDbscanProperties:
    @given(
        st.lists(
            st.floats(min_value=-1000, max_value=1000, allow_nan=False),
            min_size=0,
            max_size=30,
        ),
        st.floats(min_value=0.1, max_value=100.0),
    )
    def test_min_pts_one_partitions_everything(self, values, eps):
        def query(i):
            return [
                j
                for j in range(len(values))
                if j != i and abs(values[i] - values[j]) <= eps
            ]

        labels = dbscan(len(values), query, min_pts=1)
        assert NOISE not in labels
        # eps-connected neighbours share a label (transitivity of the
        # connected-component semantics).
        for i in range(len(values)):
            for j in query(i):
                assert labels[i] == labels[j]

    @given(
        st.lists(
            st.floats(min_value=-1000, max_value=1000, allow_nan=False),
            min_size=2,
            max_size=25,
        ),
        st.floats(min_value=0.1, max_value=50.0),
        st.integers(min_value=1, max_value=4),
    )
    def test_labels_well_formed(self, values, eps, min_pts):
        def query(i):
            return [
                j
                for j in range(len(values))
                if j != i and abs(values[i] - values[j]) <= eps
            ]

        labels = dbscan(len(values), query, min_pts=min_pts)
        used = sorted(set(labels) - {NOISE})
        assert used == list(range(len(used)))  # dense cluster ids
