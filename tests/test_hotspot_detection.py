"""Tests for hotspot-area detection from flow endpoints."""

from __future__ import annotations


from repro.analysis.hotspot_detection import detect_hotspots
from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT

from conftest import trajectory_through


class TestDetectHotspots:
    def test_two_corridors_sharing_a_terminal(self, star4):
        # Flows 0-1 and 2-3 both terminate at the star centre: the centre
        # area aggregates all traffic, the leaf ends stay separate.
        trs = [trajectory_through(star4, i, [0, 1]) for i in range(3)]
        trs += [trajectory_through(star4, 10 + i, [2, 3]) for i in range(2)]
        result = NEAT(star4, NEATConfig(min_card=0)).run_flow(trs)
        areas = detect_hotspots(star4, result.flows, radius=50.0)
        # Flow endpoints are leaves (the routes pass through the centre),
        # each leaf 200 m from another leaf via the centre: 4 areas.
        assert len(areas) == 4
        assert areas[0].terminating_cardinality >= areas[-1].terminating_cardinality

    def test_radius_merges_nearby_terminals(self, star4):
        trs = [trajectory_through(star4, i, [0, 1]) for i in range(3)]
        result = NEAT(star4, NEATConfig(min_card=0)).run_flow(trs)
        tight = detect_hotspots(star4, result.flows, radius=50.0)
        loose = detect_hotspots(star4, result.flows, radius=500.0)
        assert len(loose) <= len(tight)

    def test_empty_flows(self, line3):
        assert detect_hotspots(line3, []) == []

    def test_recovers_simulator_layout(self, small_workload):
        """The Figure 3 inversion: endpoints reveal the true hotspots."""
        network, dataset = small_workload
        result = NEAT(network, NEATConfig(min_card=3)).run_flow(dataset)
        areas = detect_hotspots(network, result.flows, radius=600.0)
        assert areas
        # The simulator's true anchor junctions (hotspots + destinations)
        # should appear inside the detected areas' neighbourhoods.
        truth = set(dataset.metadata["hotspots"]) | set(
            dataset.metadata["destinations"]
        )
        detected_nodes = set()
        for area in areas:
            detected_nodes.update(area.nodes)
        from repro.roadnet.shortest_path import dijkstra_single_source

        near_truth = 0
        for anchor in truth:
            reachable = dijkstra_single_source(
                network, anchor, max_distance=800.0
            )
            if detected_nodes & set(reachable):
                near_truth += 1
        assert near_truth >= len(truth) * 0.6

    def test_cardinality_counts_distinct_trajectories(self, line3):
        trs = [trajectory_through(line3, i, [0, 1, 2]) for i in range(4)]
        result = NEAT(line3, NEATConfig(min_card=0)).run_flow(trs)
        areas = detect_hotspots(line3, result.flows, radius=50.0)
        total = max(a.terminating_cardinality for a in areas)
        assert total == 4
