"""Section IV-C's strengthened baseline: network-aware TraClus variant.

The paper hands TraClus every advantage — map-matched input, NEAT's base
clusters as units, the modified Hausdorff network distance — and it still
loses by orders of magnitude (SJ2000: 6396.79 s vs NEAT's 11.68 s) while
producing discrete density patches instead of continuous flows.
"""

from __future__ import annotations

from conftest import TRACLUS_COUNTS

from repro.core.base_cluster import form_base_clusters
from repro.experiments.figures import run_variant
from repro.experiments.workloads import WorkloadSpec, build_dataset, build_network
from repro.traclus.network_variant import network_traclus


def bench_variant_grouping(benchmark, emit):
    """Time the variant's grouping phase; report the full comparison."""
    object_count = TRACLUS_COUNTS[-1]
    network = build_network("SJ")
    dataset = build_dataset(network, WorkloadSpec("SJ", object_count))
    base_clusters = form_base_clusters(network, dataset.trajectories)

    result = benchmark.pedantic(
        lambda: network_traclus(network, base_clusters, eps=150.0, min_lns=2),
        rounds=1,
        iterations=1,
    )
    assert result.base_cluster_count == len(base_clusters)

    comparison = run_variant(object_count=object_count)
    emit("traclus_variant", comparison.render())
    # The paper's shape: the variant is far slower than full NEAT.
    assert comparison.variant_seconds > comparison.neat_seconds
