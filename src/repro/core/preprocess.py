"""Trajectory preprocessing: from device logs to clusterable trips.

The paper defines a trajectory as one *trip* with a beginning and a
destination (Section II-B).  Raw device logs are messier: multi-day
location streams, dwell periods (parked cars), duplicate fixes and
oversampled straightaways.  This module provides the standard cleaning
steps a NEAT deployment runs before Phase 1:

* :func:`split_by_time_gap` — cut a log into trips at recording gaps;
* :func:`remove_stay_points` — collapse dwell periods into single points;
* :func:`deduplicate` — drop consecutive identical fixes;
* :func:`simplify` — Douglas-Peucker thinning of oversampled geometry
  (sid-aware: never simplifies across a segment change, so Phase 1's
  junction detection is unaffected).
"""

from __future__ import annotations

from ..roadnet.geometry import point_segment_distance
from .model import Location, Trajectory


def split_by_time_gap(
    trajectory: Trajectory, max_gap: float, next_trid: int | None = None
) -> list[Trajectory]:
    """Split a location stream into trips at gaps longer than ``max_gap``.

    Args:
        trajectory: The raw stream.
        max_gap: Maximum seconds between consecutive samples of one trip.
        next_trid: First id for the resulting trips; defaults to the
            stream's own id (trips then get ``trid, trid+1, ...``).

    Returns:
        The trips in temporal order.  Singleton runs (one sample between
        two gaps) are dropped — a trip needs at least two samples.
    """
    if max_gap <= 0.0:
        raise ValueError(f"max_gap must be positive, got {max_gap}")
    base_id = trajectory.trid if next_trid is None else next_trid
    runs: list[list[Location]] = [[trajectory.locations[0]]]
    for previous, current in zip(trajectory.locations, trajectory.locations[1:]):
        if current.t - previous.t > max_gap:
            runs.append([])
        runs[-1].append(current)
    trips = []
    for run in runs:
        if len(run) >= 2:
            trips.append(Trajectory(base_id + len(trips), tuple(run)))
    return trips


def remove_stay_points(
    trajectory: Trajectory, radius: float = 25.0, min_duration: float = 120.0
) -> Trajectory:
    """Collapse dwell periods into their first sample.

    A *stay* is a maximal run of samples all within ``radius`` metres of
    the run's first sample and spanning at least ``min_duration`` seconds
    (a parked vehicle jittering in GPS noise).  Each stay contributes its
    first sample only.

    Returns the cleaned trajectory; if fewer than two samples survive,
    the original first and last samples are kept so the result stays a
    valid trajectory.
    """
    locations = trajectory.locations
    kept: list[Location] = []
    index = 0
    while index < len(locations):
        anchor = locations[index]
        end = index
        while (
            end + 1 < len(locations)
            and anchor.point.distance_to(locations[end + 1].point) <= radius
        ):
            end += 1
        if end > index and locations[end].t - anchor.t >= min_duration:
            kept.append(anchor)  # the stay collapses to its anchor
            index = end + 1
        else:
            kept.append(anchor)
            index += 1
    if len(kept) < 2:
        kept = [locations[0], locations[-1]]
    return Trajectory(trajectory.trid, tuple(kept))


def deduplicate(trajectory: Trajectory) -> Trajectory:
    """Drop consecutive samples with identical position and segment."""
    kept = [trajectory.locations[0]]
    for location in trajectory.locations[1:]:
        last = kept[-1]
        if (
            location.sid == last.sid
            and location.x == last.x
            and location.y == last.y
        ):
            continue
        kept.append(location)
    if len(kept) < 2:
        kept = [trajectory.locations[0], trajectory.locations[-1]]
    return Trajectory(trajectory.trid, tuple(kept))


def simplify(trajectory: Trajectory, epsilon: float = 5.0) -> Trajectory:
    """Douglas-Peucker thinning, applied per same-segment run.

    Never removes the first or last sample of a run, and never merges
    across a segment-id change — the samples Phase 1 needs to detect
    junction crossings always survive.

    Args:
        trajectory: Input trajectory (network-matched).
        epsilon: Maximum allowed perpendicular deviation in metres.
    """
    if epsilon < 0.0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    locations = trajectory.locations
    kept: list[Location] = []
    run_start = 0
    for index in range(1, len(locations) + 1):
        if index == len(locations) or locations[index].sid != locations[run_start].sid:
            run = list(locations[run_start:index])
            kept.extend(_douglas_peucker(run, epsilon))
            run_start = index
    return Trajectory(trajectory.trid, tuple(kept))


def _douglas_peucker(run: list[Location], epsilon: float) -> list[Location]:
    """Classic recursive simplification of one same-segment run."""
    if len(run) <= 2:
        return run
    first, last = run[0], run[-1]
    worst_index = 0
    worst_distance = -1.0
    for index in range(1, len(run) - 1):
        distance = point_segment_distance(
            run[index].point, first.point, last.point
        )
        if distance > worst_distance:
            worst_distance = distance
            worst_index = index
    if worst_distance <= epsilon:
        return [first, last]
    left = _douglas_peucker(run[: worst_index + 1], epsilon)
    right = _douglas_peucker(run[worst_index:], epsilon)
    return left[:-1] + right


def preprocess_stream(
    stream: Trajectory,
    max_gap: float = 300.0,
    stay_radius: float = 25.0,
    stay_duration: float = 120.0,
    simplify_epsilon: float | None = 5.0,
    next_trid: int | None = None,
) -> list[Trajectory]:
    """The full cleaning pipeline: split, de-dwell, dedupe, simplify.

    Returns the cleaned trips, ids assigned from ``next_trid`` (or the
    stream's id).
    """
    trips = split_by_time_gap(stream, max_gap, next_trid=next_trid)
    cleaned = []
    for trip in trips:
        trip = remove_stay_points(trip, stay_radius, stay_duration)
        trip = deduplicate(trip)
        if simplify_epsilon is not None:
            trip = simplify(trip, simplify_epsilon)
        if len(trip) >= 2:
            cleaned.append(trip)
    return cleaned
