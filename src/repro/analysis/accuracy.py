"""Clustering accuracy against simulator ground truth.

The paper claims NEAT is "highly accurate" but can only argue it visually
(Figures 3-4): real traces have no labelled clusters.  Our simulator
*does* know the truth — every trajectory's planned route — so this module
quantifies accuracy directly:

* **segment recall/precision** — how much of the truly-busy road surface
  the kept flows cover, and how much of what they cover is truly busy;
* **flow purity** — whether each flow's fragments come from trajectories
  that genuinely travelled its representative route together;
* **pairwise co-clustering** agreement — for trajectory pairs, does
  "shared flow" predict "shared ground-truth route segments"?

These metrics drive the accuracy experiment in
``benchmarks/bench_accuracy.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.model import Trajectory
from ..core.result import NEATResult


@dataclass(frozen=True, slots=True)
class SegmentAccuracy:
    """Coverage of the truly-busy road surface by the kept flows.

    Attributes:
        recall: Share of busy segments covered by flows.
        precision: Share of flow segments that are truly busy.
        f1: Harmonic mean of the two.
        busy_threshold: Trajectory count above which a segment counts as
            "truly busy".
    """

    recall: float
    precision: float
    busy_threshold: int

    @property
    def f1(self) -> float:
        """Harmonic mean of recall and precision."""
        if self.recall + self.precision == 0.0:
            return 0.0
        return 2.0 * self.recall * self.precision / (self.recall + self.precision)


def true_segment_usage(trajectories: Sequence[Trajectory]) -> dict[int, int]:
    """Ground truth: distinct trajectories per road segment."""
    usage: dict[int, set[int]] = {}
    for trajectory in trajectories:
        for sid in trajectory.segment_ids():
            usage.setdefault(sid, set()).add(trajectory.trid)
    return {sid: len(trids) for sid, trids in usage.items()}


def segment_accuracy(
    result: NEATResult,
    trajectories: Sequence[Trajectory],
    busy_threshold: int | None = None,
) -> SegmentAccuracy:
    """Recall/precision of flow coverage over truly-busy segments.

    Args:
        result: A flow- or opt-NEAT result.
        trajectories: The ground-truth input trajectories.
        busy_threshold: Minimum distinct-trajectory count for a segment to
            count as busy.  Defaults to the resolved ``minCard`` of the
            run (flows and busy segments then answer the same question:
            "carries at least minCard objects").
    """
    if busy_threshold is None:
        busy_threshold = max(1, result.min_card_used)
    usage = true_segment_usage(trajectories)
    busy = {sid for sid, count in usage.items() if count >= busy_threshold}
    covered = {sid for flow in result.flows for sid in flow.sids}
    if not busy:
        return SegmentAccuracy(
            recall=1.0 if not covered else 0.0,
            precision=0.0 if covered else 1.0,
            busy_threshold=busy_threshold,
        )
    true_positive = len(busy & covered)
    recall = true_positive / len(busy)
    precision = true_positive / len(covered) if covered else 1.0
    return SegmentAccuracy(recall, precision, busy_threshold)


def flow_purity(result: NEATResult) -> float:
    """Mean share of each flow's fragments backed by route-faithful traffic.

    For each flow, the fraction of its t-fragments whose trajectory also
    participates in the *adjacent* member base clusters (i.e. genuinely
    travels the route rather than merely crossing one segment of it).
    Single-member flows are trivially pure.
    """
    if not result.flows:
        return 1.0
    purities = []
    for flow in result.flows:
        members = flow.members
        if len(members) < 2:
            purities.append(1.0)
            continue
        faithful = 0
        total = 0
        for index, cluster in enumerate(members):
            neighbors: set[int] = set()
            if index > 0:
                neighbors |= members[index - 1].participants
            if index + 1 < len(members):
                neighbors |= members[index + 1].participants
            for fragment in cluster.fragments:
                total += 1
                faithful += fragment.trid in neighbors
        purities.append(faithful / total if total else 1.0)
    return sum(purities) / len(purities)


def co_clustering_agreement(
    result: NEATResult,
    trajectories: Sequence[Trajectory],
    min_shared_segments: int = 3,
    max_pairs: int = 20000,
) -> float:
    """Agreement between flow co-membership and route co-travel.

    Samples trajectory pairs and checks whether "both participate in some
    common flow" agrees with the ground truth "their routes share at least
    ``min_shared_segments`` road segments".  Returns the fraction of
    agreeing pairs (1.0 = clustering mirrors true co-travel exactly).
    """
    flow_members: dict[int, set[int]] = {}
    for flow_id, flow in enumerate(result.flows):
        for trid in flow.participants:
            flow_members.setdefault(trid, set()).add(flow_id)

    routes = {tr.trid: set(tr.segment_ids()) for tr in trajectories}
    trids = sorted(routes)
    agree = total = 0
    for i in range(len(trids)):
        for j in range(i + 1, len(trids)):
            if total >= max_pairs:
                break
            a, b = trids[i], trids[j]
            together_truth = len(routes[a] & routes[b]) >= min_shared_segments
            together_found = bool(
                flow_members.get(a, set()) & flow_members.get(b, set())
            )
            agree += together_truth == together_found
            total += 1
        if total >= max_pairs:
            break
    return agree / total if total else 1.0
