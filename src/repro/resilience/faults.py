"""Deterministic fault injection for tests, benchmarks and chaos drills.

A :class:`FaultPlan` describes *which* calls misbehave — purely by call
index, so a plan is reproducible by construction:

* ``fail_nth`` — raise on the given 1-based call number(s);
* ``kill_from`` — raise on every call from the given number on (a dead
  node: once down, down forever);
* ``latency_s`` — add synthetic latency to every call (recorded through
  an injectable sleeper, so tests observe it without actually sleeping);
* ``corrupt_nth`` — pass the given calls' results through ``corruptor``
  (payload corruption on the wire);
* ``refuse_nth`` / ``drop_nth`` / ``stall_nth`` / ``garble_nth`` —
  *connection* faults, interpreted by the distributed transport at the
  socket layer: a refused connect, a connection closed mid-message, a
  response stalled past the read deadline, a frame whose CRC fails.
  They are scheduling only — :meth:`FaultPlan.connection_fault` names
  the fault for a call index and the transport performs the real
  socket-level misbehavior (see ``repro.distributed.transport``).

:meth:`FaultPlan.wrap` turns any callable into a :class:`FaultyCallable`
that applies the plan and counts what it injected.  A
:class:`FaultInjector` holds armed plans by operation name so a
component (the NEAT service, the coordinator) can expose named injection
points without threading wrappers through its internals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..errors import ConfigError, FaultInjected

__all__ = ["FaultInjector", "FaultPlan", "FaultyCallable", "bit_flip"]


def _as_indices(value: int | Iterable[int] | None) -> frozenset[int]:
    if value is None:
        return frozenset()
    if isinstance(value, int):
        value = (value,)
    indices = frozenset(int(v) for v in value)
    if any(index < 1 for index in indices):
        raise ConfigError(f"call indices are 1-based, got {sorted(indices)}")
    return indices


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected misbehavior.

    Attributes:
        fail_nth: 1-based call number(s) that raise (int or iterable).
        kill_from: First call number of a permanent failure (the wrapped
            target is "dead" from that call on).
        latency_s: Synthetic latency added to every call.
        corrupt_nth: 1-based call number(s) whose *result* is passed
            through ``corruptor`` before being returned.
        corruptor: Result transform for corrupted calls (default: replace
            the payload with ``None``).
        exception: Factory ``(operation, call_index) -> BaseException``
            for injected failures (default :class:`FaultInjected`).
        refuse_nth: 1-based call number(s) whose connection is refused
            (the transport never reaches the peer).
        drop_nth: 1-based call number(s) whose connection is closed
            mid-message (a partial request frame reaches the peer).
        stall_nth: 1-based call number(s) whose response stalls past the
            client's read deadline (``stall_s`` seconds, served through
            the peer's chaos hook so the timeout fires for real).
        garble_nth: 1-based call number(s) whose request frame has one
            bit flipped on the wire (the peer's CRC check rejects it).
        stall_s: Stall duration for ``stall_nth`` calls.
    """

    fail_nth: int | Iterable[int] | None = None
    kill_from: int | None = None
    latency_s: float = 0.0
    corrupt_nth: int | Iterable[int] | None = None
    corruptor: Callable[[Any], Any] | None = None
    exception: Callable[[str, int], BaseException] = FaultInjected
    refuse_nth: int | Iterable[int] | None = None
    drop_nth: int | Iterable[int] | None = None
    stall_nth: int | Iterable[int] | None = None
    garble_nth: int | Iterable[int] | None = None
    stall_s: float = 0.25

    def __post_init__(self) -> None:
        object.__setattr__(self, "fail_nth", _as_indices(self.fail_nth))
        object.__setattr__(self, "corrupt_nth", _as_indices(self.corrupt_nth))
        for name in ("refuse_nth", "drop_nth", "stall_nth", "garble_nth"):
            object.__setattr__(self, name, _as_indices(getattr(self, name)))
        if self.kill_from is not None and self.kill_from < 1:
            raise ConfigError(f"kill_from is 1-based, got {self.kill_from}")
        if self.latency_s < 0:
            raise ConfigError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.stall_s <= 0:
            raise ConfigError(f"stall_s must be > 0, got {self.stall_s}")

    # ------------------------------------------------------------------
    def should_fail(self, call_index: int) -> bool:
        """Whether the plan injects a failure into this call."""
        if self.kill_from is not None and call_index >= self.kill_from:
            return True
        return call_index in self.fail_nth

    def should_corrupt(self, call_index: int) -> bool:
        """Whether the plan corrupts this call's result."""
        return call_index in self.corrupt_nth

    def connection_fault(self, call_index: int) -> str | None:
        """The connection fault injected into this call, if any.

        Returns ``"refuse"``, ``"drop"``, ``"stall"`` or ``"garble"``
        (checked in that order when a call index appears in several
        schedules), or ``None`` for a clean call.
        """
        if call_index in self.refuse_nth:
            return "refuse"
        if call_index in self.drop_nth:
            return "drop"
        if call_index in self.stall_nth:
            return "stall"
        if call_index in self.garble_nth:
            return "garble"
        return None

    def has_connection_faults(self) -> bool:
        """Whether any connection-fault schedule is non-empty."""
        return bool(
            self.refuse_nth or self.drop_nth or self.stall_nth or self.garble_nth
        )

    def corrupt(self, result: Any) -> Any:
        """The corrupted form of ``result``."""
        if self.corruptor is not None:
            return self.corruptor(result)
        return None

    def wrap(
        self,
        fn: Callable[..., Any],
        operation: str = "operation",
        sleeper: Callable[[float], None] | None = None,
    ) -> "FaultyCallable":
        """``fn`` under this plan (see :class:`FaultyCallable`)."""
        return FaultyCallable(fn, self, operation=operation, sleeper=sleeper)


class FaultyCallable:
    """A callable wrapped by a :class:`FaultPlan`, with injection counters.

    Attributes:
        calls: Total invocations so far.
        injected_failures: Failures the plan raised.
        injected_corruptions: Results the plan corrupted.
        injected_latency_s: Total synthetic latency injected.

    Args:
        fn: The target callable.
        plan: The fault schedule.
        operation: Name used in injected exceptions.
        sleeper: Receives each injected latency; defaults to a no-op
            recorder so tests stay fast — pass ``time.sleep`` (or
            :func:`real_sleeper`) to actually stall.
    """

    def __init__(
        self,
        fn: Callable[..., Any],
        plan: FaultPlan,
        operation: str = "operation",
        sleeper: Callable[[float], None] | None = None,
    ) -> None:
        self.fn = fn
        self.plan = plan
        self.operation = operation
        self.sleeper = sleeper
        self.calls = 0
        self.injected_failures = 0
        self.injected_corruptions = 0
        self.injected_latency_s = 0.0

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        self.calls += 1
        index = self.calls
        plan = self.plan
        if plan.latency_s > 0.0:
            self.injected_latency_s += plan.latency_s
            if self.sleeper is not None:
                self.sleeper(plan.latency_s)
        if plan.should_fail(index):
            self.injected_failures += 1
            raise plan.exception(self.operation, index)
        result = self.fn(*args, **kwargs)
        if plan.should_corrupt(index):
            self.injected_corruptions += 1
            return plan.corrupt(result)
        return result


def real_sleeper(seconds: float) -> None:
    """A sleeper that actually sleeps (for latency drills in benchmarks)."""
    time.sleep(seconds)


def bit_flip(data: bytes, index: int = 0) -> bytes:
    """``data`` with one bit inverted — the canonical read-corruptor.

    Use as a ``FaultPlan.corruptor`` against a read-path fault point
    (``snapshot.read``, ``journal.read``) to simulate media corruption::

        faults.arm("snapshot.read", FaultPlan(corrupt_nth=1, corruptor=bit_flip))

    Args:
        data: The payload to damage (returned unchanged when empty).
        index: Byte offset of the flipped bit's byte (wraps modulo
            ``len(data)``, so any index is safe).
    """
    if not data:
        return data
    flipped = bytearray(data)
    flipped[index % len(flipped)] ^= 0x01
    return bytes(flipped)


class FaultInjector:
    """Named injection points with armed :class:`FaultPlan` s.

    Components run their fallible operations through
    :meth:`run`; tests arm plans against the operation names without
    touching the component's internals::

        service.faults.arm("refresh", FaultPlan(fail_nth=1))

    Unarmed operations pass straight through with zero overhead beyond a
    dict lookup.
    """

    def __init__(self, sleeper: Callable[[float], None] | None = None) -> None:
        self._sleeper = sleeper
        self._wrappers: dict[str, FaultyCallable] = {}

    def arm(
        self,
        operation: str,
        plan: FaultPlan,
        sleeper: Callable[[float], None] | None = None,
    ) -> None:
        """Attach ``plan`` to ``operation`` (replacing any armed plan).

        Args:
            operation: The injection-point name.
            plan: The fault schedule.
            sleeper: Override for this operation's latency sleeper —
                pass :func:`real_sleeper` to actually stall the call
                (latency-SLO chaos drills); default: the injector-wide
                sleeper (a no-op recorder unless one was given).
        """
        self._wrappers[operation] = FaultyCallable(
            _identity_target,
            plan,
            operation=operation,
            sleeper=sleeper if sleeper is not None else self._sleeper,
        )

    def disarm(self, operation: str) -> None:
        """Remove the plan armed against ``operation`` (idempotent)."""
        self._wrappers.pop(operation, None)

    def armed(self, operation: str) -> bool:
        """Whether a plan is armed against ``operation``."""
        return operation in self._wrappers

    def wrapper(self, operation: str) -> FaultyCallable | None:
        """The armed wrapper (to read its injection counters), or None."""
        return self._wrappers.get(operation)

    def connection_fault(self, operation: str) -> tuple[str | None, "FaultPlan | None"]:
        """Advance ``operation``'s call counter; name the fault to inject.

        The transport layer calls this once per wire call (the 1-based
        index is the armed wrapper's ``calls`` counter, shared with
        :meth:`run`, so connection faults and result faults count the
        same call stream).  Returns ``(kind, plan)`` where ``kind`` is
        ``None`` for a clean call; the caller performs the real
        socket-level misbehavior and bumps ``injected_failures`` via
        :meth:`record_injected`.
        """
        wrapper = self._wrappers.get(operation)
        if wrapper is None:
            return None, None
        wrapper.calls += 1
        return wrapper.plan.connection_fault(wrapper.calls), wrapper.plan

    def record_injected(self, operation: str) -> None:
        """Count one transport-performed injection on ``operation``."""
        wrapper = self._wrappers.get(operation)
        if wrapper is not None:
            wrapper.injected_failures += 1

    def run(self, operation: str, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run ``fn`` through the plan armed against ``operation`` (if any)."""
        wrapper = self._wrappers.get(operation)
        if wrapper is None:
            return fn(*args, **kwargs)
        wrapper.fn = fn
        return wrapper(*args, **kwargs)


def _identity_target(*args: Any, **kwargs: Any) -> Any:  # pragma: no cover
    raise RuntimeError("FaultInjector wrapper called before a target was bound")
