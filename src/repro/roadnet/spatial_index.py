"""Uniform-grid spatial index over road segments.

Map matching and the mobility simulator need "which segments are near this
point?" queries.  A uniform grid over segment chords answers these in O(1)
expected time for road networks, whose segments are short and uniformly
spread (Table I: average segment length 125-170 m).
"""

from __future__ import annotations

import math
from typing import Iterable

from .geometry import Point, point_segment_distance
from .network import RoadNetwork


class SegmentGridIndex:
    """Spatial hash of segment chords into square cells.

    Args:
        network: Road network to index.  The index snapshots the network;
            segments added afterwards are not visible.
        cell_size: Cell edge in metres.  Defaults to twice the network's
            average segment length, a good balance between cell occupancy
            and the number of cells a query must scan.
    """

    def __init__(self, network: RoadNetwork, cell_size: float | None = None) -> None:
        self._network = network
        if cell_size is None:
            count = network.segment_count
            average = network.total_length() / count if count else 100.0
            cell_size = max(10.0, 2.0 * average)
        self.cell_size = float(cell_size)
        self._cells: dict[tuple[int, int], list[int]] = {}
        for segment in network.segments():
            a, b = network.segment_endpoints(segment.sid)
            for cell in self._cells_crossed(a, b):
                self._cells.setdefault(cell, []).append(segment.sid)

    # ------------------------------------------------------------------
    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        return (math.floor(x / self.cell_size), math.floor(y / self.cell_size))

    def _cells_crossed(self, a: Point, b: Point) -> Iterable[tuple[int, int]]:
        """All cells overlapped by the bounding box of chord ``a -> b``.

        Using the bbox rather than exact traversal slightly over-registers
        diagonal segments, which only costs a few extra candidates at query
        time and never misses one.
        """
        min_cx, min_cy = self._cell_of(min(a.x, b.x), min(a.y, b.y))
        max_cx, max_cy = self._cell_of(max(a.x, b.x), max(a.y, b.y))
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                yield (cx, cy)

    # ------------------------------------------------------------------
    def candidates_near(self, point: Point, radius: float) -> list[int]:
        """Segment ids whose chord may lie within ``radius`` of ``point``.

        The result is a superset filter: every segment within ``radius`` is
        included, some farther ones may be too.  Sorted for determinism.
        """
        min_cx, min_cy = self._cell_of(point.x - radius, point.y - radius)
        max_cx, max_cy = self._cell_of(point.x + radius, point.y + radius)
        found: set[int] = set()
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                found.update(self._cells.get((cx, cy), ()))
        return sorted(found)

    def segments_within(self, point: Point, radius: float) -> list[tuple[int, float]]:
        """``(sid, distance)`` pairs for segments truly within ``radius``.

        Sorted by distance then sid, so the nearest segment is first.
        """
        results: list[tuple[int, float]] = []
        for sid in self.candidates_near(point, radius):
            a, b = self._network.segment_endpoints(sid)
            distance = point_segment_distance(point, a, b)
            if distance <= radius:
                results.append((sid, distance))
        results.sort(key=lambda item: (item[1], item[0]))
        return results

    def nearest_segment(
        self, point: Point, initial_radius: float = 50.0, max_radius: float = 10000.0
    ) -> tuple[int, float] | None:
        """The nearest segment to ``point``, searching in expanding rings.

        Returns ``(sid, distance)`` or ``None`` when nothing lies within
        ``max_radius``.
        """
        radius = max(1.0, initial_radius)
        while radius <= max_radius:
            hits = self.segments_within(point, radius)
            if hits:
                return hits[0]
            radius *= 2.0
        return None

    @property
    def cell_count(self) -> int:
        """Number of non-empty grid cells."""
        return len(self._cells)
