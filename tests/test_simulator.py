"""Unit tests for the trace simulator (GTMobiSIM equivalent)."""

from __future__ import annotations

import pytest

from repro.mobisim.simulator import (
    SimulationConfig,
    SimulationReport,
    simulate_dataset,
)
from repro.roadnet.generators import GridConfig, generate_grid_network


@pytest.fixture(scope="module")
def net():
    return generate_grid_network(GridConfig(rows=12, cols=12, seed=8))


class TestConfigValidation:
    def test_object_count_positive(self):
        with pytest.raises(ValueError):
            SimulationConfig(object_count=0)

    def test_sample_interval_positive(self):
        with pytest.raises(ValueError):
            SimulationConfig(object_count=1, sample_interval=0.0)


class TestSimulateDataset:
    def test_produces_requested_objects(self, net):
        report = SimulationReport()
        dataset = simulate_dataset(
            net, SimulationConfig(object_count=25, seed=1), report
        )
        assert len(dataset) + report.failed == 25
        assert len(dataset) > 0

    def test_trajectory_ids_contiguous(self, net):
        dataset = simulate_dataset(net, SimulationConfig(object_count=20, seed=2))
        assert [tr.trid for tr in dataset] == list(range(len(dataset)))

    def test_samples_time_ordered_with_interval(self, net):
        interval = 7.0
        dataset = simulate_dataset(
            net, SimulationConfig(object_count=10, sample_interval=interval, seed=3)
        )
        for tr in dataset:
            times = [l.t for l in tr.locations]
            assert times == sorted(times)
            for a, b in zip(times[:-2], times[1:-1]):
                assert b - a == pytest.approx(interval)

    def test_locations_on_network_segments(self, net):
        dataset = simulate_dataset(net, SimulationConfig(object_count=10, seed=4))
        for tr in dataset:
            for location in tr.locations:
                assert net.has_segment(location.sid)

    def test_samples_lie_on_their_segment(self, net):
        from repro.roadnet.geometry import point_segment_distance

        dataset = simulate_dataset(net, SimulationConfig(object_count=10, seed=5))
        for tr in dataset:
            for location in tr.locations:
                a, b = net.segment_endpoints(location.sid)
                assert point_segment_distance(location.point, a, b) < 1e-6

    def test_consecutive_sids_connected(self, net):
        # A mobile object cannot teleport: consecutive samples are on the
        # same or adjacent segments (sampling interval < segment traversal
        # time is not guaranteed, so allow short skips via is_route of the
        # recovered crossing path instead of strict adjacency).
        from repro.mapmatch.path_inference import infer_crossings

        dataset = simulate_dataset(net, SimulationConfig(object_count=10, seed=6))
        for tr in dataset:
            for a, b in zip(tr.locations, tr.locations[1:]):
                if a.sid != b.sid:
                    crossings = infer_crossings(net, a.sid, b.sid)
                    assert crossings  # connected through the network

    def test_deterministic(self, net):
        a = simulate_dataset(net, SimulationConfig(object_count=15, seed=7))
        b = simulate_dataset(net, SimulationConfig(object_count=15, seed=7))
        assert a.total_points == b.total_points
        for ta, tb in zip(a, b):
            assert ta == tb

    def test_seed_changes_traces(self, net):
        a = simulate_dataset(net, SimulationConfig(object_count=15, seed=8))
        b = simulate_dataset(net, SimulationConfig(object_count=15, seed=9))
        assert any(ta != tb for ta, tb in zip(a, b))

    def test_metadata_recorded(self, net):
        dataset = simulate_dataset(
            net, SimulationConfig(object_count=5, seed=10, name="X5")
        )
        assert dataset.name == "X5"
        assert dataset.network_name == net.name
        assert dataset.metadata["object_count"] == 5
        assert len(dataset.metadata["hotspots"]) == 2
        assert len(dataset.metadata["destinations"]) == 3

    def test_report_total_points(self, net):
        report = SimulationReport()
        dataset = simulate_dataset(
            net, SimulationConfig(object_count=12, seed=11), report
        )
        assert report.total_points == dataset.total_points
        assert report.planned == 12
