"""Tests for incremental (online) NEAT clustering."""

from __future__ import annotations

import pytest

from repro.core.config import NEATConfig
from repro.core.incremental import IncrementalNEAT
from repro.core.pipeline import NEAT

from conftest import trajectory_through


class TestBatching:
    def test_single_batch_matches_oneshot_flows(self, line3):
        trs = [trajectory_through(line3, i, [0, 1, 2]) for i in range(4)]
        config = NEATConfig(min_card=0, eps=500.0)
        incremental = IncrementalNEAT(line3, config)
        batch = incremental.add_batch(trs)
        oneshot = NEAT(line3, config).run_opt(trs)
        assert [f.sids for f in batch.new_flows] == [f.sids for f in oneshot.flows]
        assert len(batch.clusters) == len(oneshot.clusters)

    def test_flows_accumulate_across_batches(self, star4):
        config = NEATConfig(min_card=0, eps=1e6)
        incremental = IncrementalNEAT(star4, config)
        first = [trajectory_through(star4, i, [0, 1]) for i in range(3)]
        second = [trajectory_through(star4, 10 + i, [2, 3]) for i in range(3)]
        incremental.add_batch(first)
        result = incremental.add_batch(second)
        assert incremental.batch_count == 2
        assert len(incremental.flows) == 2
        # A generous eps merges everything into one global cluster.
        assert len(result.clusters) == 1

    def test_duplicate_ids_rejected(self, line3):
        incremental = IncrementalNEAT(line3, NEATConfig(min_card=0))
        trs = [trajectory_through(line3, 0, [0, 1])]
        incremental.add_batch(trs)
        with pytest.raises(ValueError):
            incremental.add_batch(trs)

    def test_auto_offset_reassigns_ids(self, line3):
        incremental = IncrementalNEAT(line3, NEATConfig(min_card=0))
        trs = [trajectory_through(line3, 0, [0, 1])]
        incremental.add_batch(trs)
        result = incremental.add_batch(trs, auto_offset_ids=True)
        participants = {
            trid for flow in result.new_flows for trid in flow.participants
        }
        assert 0 not in participants

    def test_empty_batch_refreshes_clusters_only(self, line3):
        config = NEATConfig(min_card=0, eps=500.0)
        incremental = IncrementalNEAT(line3, config)
        incremental.add_batch(
            [trajectory_through(line3, i, [0, 1]) for i in range(2)]
        )
        before = len(incremental.clusters)
        result = incremental.add_batch([])
        assert result.new_flows == []
        assert len(result.clusters) == before


class TestEngineAmortization:
    def test_shortest_path_cache_warms_across_batches(self, small_workload):
        network, dataset = small_workload
        config = NEATConfig(min_card=0, eps=500.0)
        incremental = IncrementalNEAT(network, config)
        trajectories = list(dataset)
        third = len(trajectories) // 3
        incremental.add_batch(trajectories[:third])
        after_first = incremental.engine.computations
        incremental.add_batch(trajectories[third: 2 * third], auto_offset_ids=False)
        second_growth = incremental.engine.computations - after_first
        # The pool grows, yet the warm cache keeps new Dijkstra work in
        # the same ballpark as the first batch rather than exploding
        # quadratically with the pool size.
        assert second_growth <= max(20, after_first * 4)

    def test_streaming_equals_global_segment_coverage(self, small_workload):
        """Streaming must find the same major corridors as one-shot."""
        network, dataset = small_workload
        config = NEATConfig(min_card=0, eps=500.0)
        incremental = IncrementalNEAT(network, config)
        trajectories = list(dataset)
        half = len(trajectories) // 2
        incremental.add_batch(trajectories[:half])
        incremental.add_batch(trajectories[half:])

        oneshot = NEAT(network, config).run_flow(trajectories)
        streaming_sids = {sid for f in incremental.flows for sid in f.sids}
        oneshot_sids = {sid for f in oneshot.flows for sid in f.sids}
        assert streaming_sids == oneshot_sids
