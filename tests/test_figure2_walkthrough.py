"""The Figure 2 walkthrough: three flows, two final clusters.

Figure 2 of the paper illustrates the whole framework on a small map:
Phase 1 turns the trajectories into base clusters, Phase 2 groups them
into three flow clusters {F1, F2, F3}, and Phase 3 merges F1 and F3 —
whose representative routes end near each other — into one trajectory
cluster, leaving {C1 = F1+F3, C2 = F2}.

This module rebuilds that scenario concretely: two parallel east-west
corridors whose endpoints are joined by short (traffic-free) connector
streets, plus a third corridor far to the north.
"""

from __future__ import annotations

import pytest

from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT
from repro.roadnet.network import RoadNetwork
from repro.roadnet.geometry import Point

from conftest import trajectory_through


@pytest.fixture
def figure2():
    """The map: corridors A (y=0), B (y=240), C (y=6000), connectors."""
    net = RoadNetwork(name="figure2")
    corridor_sids: dict[str, list[int]] = {}
    corridor_nodes: dict[str, list[int]] = {}
    for label, y in (("A", 0.0), ("B", 240.0), ("C", 6000.0)):
        nodes = [net.add_junction(Point(x * 250.0, y)) for x in range(5)]
        sids = [net.add_segment(a, b) for a, b in zip(nodes, nodes[1:])]
        corridor_nodes[label] = nodes
        corridor_sids[label] = sids
    # Connector streets joining A and B at both ends (and a long feeder
    # to C so the graph is connected; no traffic rides the connectors).
    net.add_segment(corridor_nodes["A"][0], corridor_nodes["B"][0])
    net.add_segment(corridor_nodes["A"][-1], corridor_nodes["B"][-1])
    net.add_segment(corridor_nodes["B"][0], corridor_nodes["C"][0])
    return net, corridor_sids


@pytest.fixture
def figure2_result(figure2):
    net, corridors = figure2
    trajectories = []
    trid = 0
    for label in ("A", "B", "C"):
        for _ in range(4):
            trajectories.append(
                trajectory_through(net, trid, corridors[label])
            )
            trid += 1
    # eps = 400 m: the A/B endpoints are 240 m apart via the connector,
    # corridor C is kilometres away.
    config = NEATConfig(min_card=0, eps=400.0)
    return net, corridors, NEAT(net, config).run_opt(trajectories)


class TestPhase2Shape:
    def test_three_flows_one_per_corridor(self, figure2_result):
        _net, corridors, result = figure2_result
        assert result.flow_count == 3
        flow_routes = [set(flow.sids) for flow in result.flows]
        for label in ("A", "B", "C"):
            assert set(corridors[label]) in flow_routes

    def test_connectors_carry_no_flow(self, figure2_result):
        _net, corridors, result = figure2_result
        corridor_sids = {
            sid for sids in corridors.values() for sid in sids
        }
        for flow in result.flows:
            assert set(flow.sids) <= corridor_sids


class TestPhase3Shape:
    def test_two_final_clusters(self, figure2_result):
        _net, _corridors, result = figure2_result
        assert result.cluster_count == 2

    def test_parallel_corridors_merge(self, figure2_result):
        _net, corridors, result = figure2_result
        by_size = sorted(result.clusters, key=lambda c: -len(c.flows))
        merged, single = by_size
        merged_sids = {sid for flow in merged.flows for sid in flow.sids}
        assert merged_sids == set(corridors["A"]) | set(corridors["B"])
        single_sids = {sid for flow in single.flows for sid in flow.sids}
        assert single_sids == set(corridors["C"])

    def test_each_phase_compacts(self, figure2_result):
        _net, _corridors, result = figure2_result
        assert len(result.base_clusters) > result.flow_count > (
            result.cluster_count - 1
        )

    def test_smaller_eps_keeps_three_clusters(self, figure2):
        net, corridors = figure2
        trajectories = []
        trid = 0
        for label in ("A", "B", "C"):
            for _ in range(4):
                trajectories.append(
                    trajectory_through(net, trid, corridors[label])
                )
                trid += 1
        result = NEAT(net, NEATConfig(min_card=0, eps=100.0)).run_opt(
            trajectories
        )
        assert result.cluster_count == 3
