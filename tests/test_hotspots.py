"""Unit tests for hotspot/destination layout selection."""

from __future__ import annotations

import pytest

from repro.mobisim.hotspots import choose_layout
from repro.roadnet.generators import GridConfig, generate_grid_network


@pytest.fixture
def net10():
    return generate_grid_network(GridConfig(rows=10, cols=10, seed=3))


class TestChooseLayout:
    def test_counts(self, net10):
        layout = choose_layout(net10, hotspot_count=2, destination_count=3, seed=1)
        assert len(layout.hotspot_nodes) == 2
        assert len(layout.destination_nodes) == 3
        assert len(layout.start_pool) == 2

    def test_hotspots_and_destinations_disjoint(self, net10):
        layout = choose_layout(net10, hotspot_count=3, destination_count=4, seed=2)
        assert not set(layout.hotspot_nodes) & set(layout.destination_nodes)

    def test_start_pool_within_radius(self, net10):
        radius = 300.0
        layout = choose_layout(net10, start_radius=radius, seed=3)
        for hotspot, pool in zip(layout.hotspot_nodes, layout.start_pool):
            center = net10.node_point(hotspot)
            for node in pool:
                assert net10.node_point(node).distance_to(center) <= radius

    def test_start_pool_contains_hotspot(self, net10):
        layout = choose_layout(net10, seed=4)
        for hotspot, pool in zip(layout.hotspot_nodes, layout.start_pool):
            assert hotspot in pool

    def test_deterministic(self, net10):
        a = choose_layout(net10, seed=5)
        b = choose_layout(net10, seed=5)
        assert a == b

    def test_seed_changes_layout(self, net10):
        a = choose_layout(net10, seed=6)
        b = choose_layout(net10, seed=7)
        assert a != b

    def test_too_small_network_rejected(self, line3):
        with pytest.raises(ValueError):
            choose_layout(line3, hotspot_count=3, destination_count=3)
