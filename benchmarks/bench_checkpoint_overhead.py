"""Checkpointing overhead: what durability costs per ingested batch.

One measurement, one artifact (``output/BENCH_checkpoint_overhead.json``):
the same batched ingest run through :class:`IncrementalNEAT` three ways —

* ``off`` — no persistence at all (the baseline);
* ``journal`` — durable batch journal only (the floor every acknowledged
  batch pays);
* ``every`` — journal plus a full snapshot checkpoint after *every*
  batch (``checkpoint_every=1``, the worst case).

The artifact records best-of-N wall seconds per mode and the relative
overheads.  Acceptance (non-smoke): the *attributed* durability cost —
the ``incremental.journal`` + ``incremental.checkpoint`` span time of
the ``every`` run, as a fraction of the run's non-durability time — is
below **10%**.  The attributed ratio measures the same quantity as the
cross-run wall ratio, but both its numerator and denominator come from
one process under identical load, so background machine drift between
runs cannot fake a pass or a fail (the cross-run ratios are still
reported).  All three runs must produce byte-identical clustering
state — durability must never change answers.

Scale knobs: ``REPRO_BENCH_CKPT_OBJECTS`` (dataset size, default 500)
and ``REPRO_BENCH_CKPT_BATCHES`` (batch count, default 20).  Run
standalone with ``python benchmarks/bench_checkpoint_overhead.py
[--smoke]``.
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

OUTPUT_DIR = Path(__file__).parent / "output"
ARTIFACT = OUTPUT_DIR / "BENCH_checkpoint_overhead.json"

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.config import NEATConfig  # noqa: E402
from repro.core.incremental import IncrementalNEAT  # noqa: E402
from repro.core.serialize import result_to_dict  # noqa: E402
from repro.experiments.harness import export_metrics, format_table  # noqa: E402
from repro.experiments.workloads import (  # noqa: E402
    WorkloadSpec,
    build_dataset,
    build_network,
)

#: Spans that measure durability work inside an ingest run.
_DURABILITY_SPANS = frozenset({"incremental.journal", "incremental.checkpoint"})


def _object_count() -> int:
    return int(os.environ.get("REPRO_BENCH_CKPT_OBJECTS", "500"))


def _batch_count() -> int:
    return int(os.environ.get("REPRO_BENCH_CKPT_BATCHES", "20"))


def _split(dataset, batches: int):
    trajectories = list(dataset)
    size = max(1, (len(trajectories) + batches - 1) // batches)
    return [
        trajectories[i:i + size] for i in range(0, len(trajectories), size)
    ]


def _span_seconds(clusterer, names) -> float:
    """Total duration of every span named in ``names`` across the run."""
    total = 0.0
    stack = list(clusterer.telemetry.tracer.to_dict())
    while stack:
        node = stack.pop()
        stack.extend(node.get("children", ()))
        if node.get("name") in names:
            total += node["duration_s"]
    return total


def _ingest(network, config, batches, state_dir=None, checkpoint_every=0):
    """One full batched ingest → (wall seconds, state json, durability s)."""
    clusterer = IncrementalNEAT(network, config)
    if state_dir is not None:
        clusterer.enable_persistence(
            state_dir, checkpoint_every=checkpoint_every, fsync=True
        )
    started = time.perf_counter()
    for batch in batches:
        clusterer.add_batch(batch, auto_offset_ids=True)
    elapsed = time.perf_counter() - started
    document = json.dumps(
        result_to_dict(clusterer.snapshot_result(), "bench"), sort_keys=True
    )
    return elapsed, document, _span_seconds(clusterer, _DURABILITY_SPANS)


def run_overhead(
    region: str = "SJ",
    objects: int | None = None,
    batches: int | None = None,
    repeats: int = 3,
    network_scale: float | None = None,
) -> dict:
    """Time the three persistence modes over identical batches."""
    network = build_network(region, network_scale)
    dataset = build_dataset(
        network,
        WorkloadSpec(
            region,
            objects if objects is not None else _object_count(),
            network_scale=network_scale,
        ),
    )
    batch_list = _split(dataset, batches if batches is not None else _batch_count())
    config = NEATConfig(min_card=0)

    modes = {
        "off": dict(state_dir=None, checkpoint_every=0),
        "journal": dict(state_dir="use", checkpoint_every=0),
        "every": dict(state_dir="use", checkpoint_every=1),
    }
    seconds: dict[str, float] = {mode: float("inf") for mode in modes}
    documents: dict[str, str] = {}
    attributed = float("inf")
    # Repeats are interleaved across modes so slow drift in background
    # load skews every mode equally instead of biasing whichever ran
    # last; best-of-N then absorbs the spikes.
    for _ in range(repeats):
        for mode, options in modes.items():
            workdir = None
            state_dir = None
            if options["state_dir"] is not None:
                workdir = tempfile.mkdtemp(prefix=f"bench-ckpt-{mode}-")
                state_dir = Path(workdir)
            try:
                elapsed, document, durability = _ingest(
                    network, config, batch_list,
                    state_dir=state_dir,
                    checkpoint_every=options["checkpoint_every"],
                )
            finally:
                if workdir is not None:
                    shutil.rmtree(workdir, ignore_errors=True)
            seconds[mode] = min(seconds[mode], elapsed)
            documents[mode] = document
            if mode == "every":
                attributed = min(
                    attributed, durability / (elapsed - durability)
                )

    # Durability must never change answers.
    assert documents["journal"] == documents["off"]
    assert documents["every"] == documents["off"]

    def overhead(mode: str) -> float:
        return (seconds[mode] - seconds["off"]) / seconds["off"]

    return {
        "network": region,
        "objects": len(dataset),
        "batches": len(batch_list),
        "repeats": repeats,
        "off_s": round(seconds["off"], 4),
        "journal_s": round(seconds["journal"], 4),
        "checkpoint_every_1_s": round(seconds["every"], 4),
        "journal_overhead": round(overhead("journal"), 4),
        "checkpoint_overhead": round(overhead("every"), 4),
        "attributed_checkpoint_overhead": round(attributed, 4),
    }


def _render(report: dict) -> str:
    return "\n".join([
        "Checkpointing overhead: batched ingest wall-clock "
        f"({report['network']}, {report['objects']} objects, "
        f"{report['batches']} batches, best of {report['repeats']})",
        format_table(
            ("mode", "seconds", "overhead"),
            [
                ("persistence off", report["off_s"], "baseline"),
                (
                    "journal only",
                    report["journal_s"],
                    f"{report['journal_overhead'] * 100:+.1f}%",
                ),
                (
                    "checkpoint every batch",
                    report["checkpoint_every_1_s"],
                    f"{report['checkpoint_overhead'] * 100:+.1f}%",
                ),
            ],
        ),
        "attributed durability overhead (journal+checkpoint spans): "
        f"{report['attributed_checkpoint_overhead'] * 100:+.1f}%",
        "state documents byte-identical across all three modes",
    ])


def bench_checkpoint_overhead(emit):
    """Pytest entry point: measure, write the artifact, gate at 10%."""
    report = run_overhead()
    export_metrics(report, ARTIFACT)
    emit("checkpoint_overhead", _render(report))
    assert report["attributed_checkpoint_overhead"] < 0.10


def main(argv: list[str] | None = None) -> int:
    """Standalone runner (CI smoke mode shrinks the workload)."""
    import argparse

    from repro.tune.profiles import add_profile_argument, resolve_profile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload: checks the harness runs, not the overhead gate",
    )
    add_profile_argument(parser)
    options = parser.parse_args(argv)

    if options.profile:
        spec = resolve_profile(options.profile).bench_spec(smoke=options.smoke)
        report = run_overhead(
            region=spec.region,
            objects=spec.object_count,
            batches=4 if options.smoke else None,
            repeats=1 if options.smoke else 3,
            network_scale=spec.network_scale,
        )
    elif options.smoke:
        report = run_overhead(region="ATL", objects=40, batches=4, repeats=1)
    else:
        report = run_overhead()
    export_metrics(report, ARTIFACT)
    print(_render(report))
    if not options.smoke:
        assert report["attributed_checkpoint_overhead"] < 0.10, (
            "attributed per-batch checkpointing overhead "
            f"{report['attributed_checkpoint_overhead']:.1%} exceeds the "
            "10% budget"
        )
    print(f"\nwrote {ARTIFACT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
