"""Generic DBSCAN with pluggable neighborhood function.

Both consumers in this library — TraClus's line-segment grouping phase and
NEAT's Phase 3 flow-cluster refinement — are "DBSCAN with a custom distance
and a custom processing order".  This module implements the classic
algorithm (Ester et al., KDD'96) over abstract item indices so each
consumer only supplies its region query.

Labels follow the usual convention: cluster ids are ``0, 1, 2, ...`` and
``NOISE`` (= -1) marks unclustered items.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Sequence

#: Label of items not assigned to any cluster.
NOISE = -1

#: A region query: item index -> indices of items within eps (self optional).
RegionQuery = Callable[[int], Sequence[int]]


def dbscan(
    item_count: int,
    region_query: RegionQuery,
    min_pts: int,
    order: Sequence[int] | None = None,
) -> list[int]:
    """Cluster ``item_count`` items with DBSCAN.

    Args:
        item_count: Number of items, addressed ``0..item_count-1``.
        region_query: Returns the eps-neighborhood of an item as indices.
            The item itself may or may not be included; it is counted as
            part of its own neighborhood either way (standard DBSCAN).
        min_pts: Minimum neighborhood size (including the item itself) for
            an item to be a core item.  ``min_pts=1`` makes every item a
            core item, so clusters become the connected components of the
            eps-graph and nothing is noise.
        order: Seed processing order (item indices).  DBSCAN's cluster
            *membership* for core points is order-independent, but ids and
            border-point assignment follow this order; NEAT passes
            longest-route-first to make Phase 3 deterministic.

    Returns:
        A label per item: cluster id or :data:`NOISE`.
    """
    if min_pts < 1:
        raise ValueError(f"min_pts must be >= 1, got {min_pts}")
    if order is None:
        order = range(item_count)

    labels = [NOISE] * item_count
    visited = [False] * item_count
    next_cluster = 0

    for seed in order:
        if visited[seed]:
            continue
        visited[seed] = True
        neighbors = _with_self(seed, region_query(seed))
        if len(neighbors) < min_pts:
            continue  # stays NOISE unless adopted as a border item later
        cluster_id = next_cluster
        next_cluster += 1
        labels[seed] = cluster_id
        queue = deque(n for n in neighbors if n != seed)
        while queue:
            item = queue.popleft()
            if labels[item] == NOISE:
                labels[item] = cluster_id  # border or core, it joins
            if visited[item]:
                continue
            visited[item] = True
            item_neighbors = _with_self(item, region_query(item))
            if len(item_neighbors) >= min_pts:
                queue.extend(n for n in item_neighbors if not visited[n] or labels[n] == NOISE)
    return labels


def _with_self(item: int, neighbors: Sequence[int]) -> list[int]:
    """Neighborhood including the item itself exactly once."""
    result = list(neighbors)
    if item not in result:
        result.append(item)
    return result


def clusters_from_labels(labels: Sequence[int]) -> list[list[int]]:
    """Group item indices by cluster label, ascending id; noise dropped."""
    by_id: dict[int, list[int]] = {}
    for index, label in enumerate(labels):
        if label != NOISE:
            by_id.setdefault(label, []).append(index)
    return [by_id[cluster_id] for cluster_id in sorted(by_id)]
