"""Tests for repro.obs.export: Chrome trace JSON and folded stacks."""

from __future__ import annotations

import json
import time

import pytest

from repro.obs.export import (
    chrome_trace,
    folded_stacks,
    folded_text,
    normalized_spans,
    save_chrome_trace,
    save_folded,
    trace_events,
)
from repro.obs.tracing import Tracer


def traced_run() -> Tracer:
    tracer = Tracer()
    with tracer.span("neat.run"):
        with tracer.span("phase1.fragmentation"):
            time.sleep(0.002)
        with tracer.span("phase3.refinement"):
            with tracer.span("sp.batch"):
                time.sleep(0.001)
    return tracer


LEGACY_SNAPSHOT = {
    "trace": [
        {
            "name": "neat.run",
            "duration_s": 1.0,
            "children": [
                {"name": "phase1.fragmentation", "duration_s": 0.25},
                {"name": "phase3.refinement", "duration_s": 0.5},
            ],
        },
        {"name": "validate", "duration_s": 0.125},
    ]
}


class TestTraceEvents:
    def test_event_schema(self):
        events = trace_events(traced_run())
        assert len(events) == 4
        for event in events:
            assert set(event) == {
                "name", "cat", "ph", "ts", "dur", "pid", "tid", "args",
            }
            assert event["ph"] == "X"
            assert event["pid"] == 1
            assert event["tid"] == 1
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0

    def test_nesting_is_consistent(self):
        events = {e["name"]: e for e in trace_events(traced_run())}
        run = events["neat.run"]
        for child in ("phase1.fragmentation", "phase3.refinement"):
            event = events[child]
            assert event["ts"] >= run["ts"]
            # A microsecond of rounding slack on the closing edge.
            assert event["ts"] + event["dur"] <= run["ts"] + run["dur"] + 1.0
        sp = events["sp.batch"]
        refine = events["phase3.refinement"]
        assert sp["ts"] >= refine["ts"]
        assert sp["ts"] + sp["dur"] <= refine["ts"] + refine["dur"] + 1.0

    def test_microsecond_timestamps(self):
        tracer = traced_run()
        (run,) = [
            e for e in trace_events(tracer) if e["name"] == "neat.run"
        ]
        span = tracer.find("neat.run")
        assert run["dur"] == pytest.approx(span.duration * 1e6, abs=1.0)


class TestChromeTrace:
    def test_document_shape(self):
        document = chrome_trace(traced_run())
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["epoch_unix"] > 0
        phases = [e["ph"] for e in document["traceEvents"]]
        assert phases[:2] == ["M", "M"]
        assert set(phases[2:]) == {"X"}
        names = [e["name"] for e in document["traceEvents"][:2]]
        assert names == ["process_name", "thread_name"]

    def test_json_round_trip(self, tmp_path):
        path = save_chrome_trace(traced_run(), tmp_path / "trace.json")
        document = json.loads(path.read_text())
        assert any(
            e["name"] == "phase3.refinement" for e in document["traceEvents"]
        )

    def test_accepts_snapshot_dict_and_span_list(self):
        from_snapshot = trace_events(LEGACY_SNAPSHOT)
        from_list = trace_events(LEGACY_SNAPSHOT["trace"])
        assert from_snapshot == from_list
        assert len(from_snapshot) == 4
        # No epoch available for non-tracer sources.
        assert "otherData" not in chrome_trace(LEGACY_SNAPSHOT)

    def test_snapshot_without_trace_key_rejected(self):
        with pytest.raises(TypeError):
            trace_events({"metrics": {}})


class TestLegacyLayout:
    def test_sequential_layout_from_durations(self):
        first, second = normalized_spans(LEGACY_SNAPSHOT)
        assert first["start_offset_s"] == 0.0
        assert first["end_offset_s"] == pytest.approx(1.0)
        # Children pack back-to-back from the parent's start.
        child_a, child_b = first["children"]
        assert child_a["start_offset_s"] == 0.0
        assert child_a["end_offset_s"] == pytest.approx(0.25)
        assert child_b["start_offset_s"] == pytest.approx(0.25)
        # The second root starts where the first ended.
        assert second["start_offset_s"] == pytest.approx(1.0)

    def test_live_tracer_offsets_pass_through(self):
        tracer = traced_run()
        (root,) = normalized_spans(tracer)
        (exported,) = tracer.to_dict()
        assert root["start_offset_s"] == exported["start_offset_s"]
        assert root["end_offset_s"] == exported["end_offset_s"]


class TestFoldedStacks:
    def test_paths_and_nesting(self):
        stacks = folded_stacks(traced_run())
        assert set(stacks) == {
            "neat.run",
            "neat.run;phase1.fragmentation",
            "neat.run;phase3.refinement",
            "neat.run;phase3.refinement;sp.batch",
        }

    def test_values_sum_to_total_profiled_time(self):
        tracer = traced_run()
        stacks = folded_stacks(tracer)
        total_us = sum(
            int(round(root.duration * 1e6)) for root in tracer.roots
        )
        assert sum(stacks.values()) == total_us

    def test_legacy_snapshot_sums_too(self):
        stacks = folded_stacks(LEGACY_SNAPSHOT)
        assert sum(stacks.values()) == int(1.125e6)
        assert stacks["neat.run;phase1.fragmentation"] == 250_000
        assert stacks["neat.run"] == 250_000  # 1.0 - 0.25 - 0.5 self time

    def test_repeated_paths_aggregate(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("loop"):
                time.sleep(0.001)
        stacks = folded_stacks(tracer)
        assert set(stacks) == {"loop"}
        total_us = sum(
            int(round(root.duration * 1e6)) for root in tracer.roots
        )
        assert stacks["loop"] == total_us

    def test_folded_text_format(self, tmp_path):
        text = folded_text(LEGACY_SNAPSHOT)
        lines = text.splitlines()
        assert lines == sorted(lines)
        for line in lines:
            path, _, value = line.rpartition(" ")
            assert path
            assert value.isdigit()
        saved = save_folded(LEGACY_SNAPSHOT, tmp_path / "out.folded")
        assert saved.read_text() == text + "\n"

    def test_empty_source(self, tmp_path):
        assert folded_text([]) == ""
        saved = save_folded([], tmp_path / "empty.folded")
        assert saved.read_text() == ""
