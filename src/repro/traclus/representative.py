"""TraClus representative trajectories (Lee et al., Section 4.3).

A cluster of line segments is summarized by a *representative trajectory*:
rotate the plane so the cluster's average direction vector lies on the
x-axis, sweep a vertical line across the rotated segment endpoints, and at
every sweep position crossed by at least ``min_lns`` segments emit the
average of the crossing segments' y-values.  Consecutive sweep positions
closer than a smoothing distance ``gamma`` are skipped.
"""

from __future__ import annotations

import math

from ..roadnet.geometry import Point
from .model import LineSegment


def average_direction(segments: list[LineSegment]) -> tuple[float, float]:
    """The (normalized) average direction vector of a segment set.

    Segments pointing against the emerging majority direction are flipped
    before averaging so anti-parallel flows do not cancel out.
    """
    if not segments:
        return (1.0, 0.0)
    # Seed with the longest segment's direction, flip others to agree.
    seed = max(segments, key=lambda s: s.length)
    seed_dx, seed_dy = seed.end.x - seed.start.x, seed.end.y - seed.start.y
    sum_dx = sum_dy = 0.0
    for segment in segments:
        dx, dy = segment.end.x - segment.start.x, segment.end.y - segment.start.y
        if dx * seed_dx + dy * seed_dy < 0.0:
            dx, dy = -dx, -dy
        sum_dx += dx
        sum_dy += dy
    norm = math.hypot(sum_dx, sum_dy)
    if norm <= 0.0:
        return (1.0, 0.0)
    return (sum_dx / norm, sum_dy / norm)


def representative_trajectory(
    segments: list[LineSegment],
    min_lns: int,
    gamma: float = 25.0,
) -> tuple[Point, ...]:
    """Compute the representative polyline of a segment cluster.

    Args:
        segments: Member line segments of the cluster.
        min_lns: Minimum number of segments that must cross a sweep
            position for it to contribute a representative point.
        gamma: Minimum spacing in metres between consecutive sweep
            positions (the paper's smoothing parameter).

    Returns:
        The representative polyline, possibly empty when no sweep position
        gathers ``min_lns`` crossings.
    """
    if not segments:
        return ()
    ux, uy = average_direction(segments)

    def rotate(p: Point) -> tuple[float, float]:
        return (p.x * ux + p.y * uy, -p.x * uy + p.y * ux)

    def unrotate(x: float, y: float) -> Point:
        return Point(x * ux - y * uy, x * uy + y * ux)

    rotated = [
        tuple(sorted((rotate(s.start), rotate(s.end)), key=lambda q: q[0]))
        for s in segments
    ]
    sweep_xs = sorted({q[0] for pair in rotated for q in pair})

    points: list[Point] = []
    last_x: float | None = None
    for x in sweep_xs:
        if last_x is not None and x - last_x < gamma:
            continue
        ys = []
        for (x1, y1), (x2, y2) in rotated:
            if x1 <= x <= x2:
                if x2 > x1:
                    ys.append(y1 + (y2 - y1) * (x - x1) / (x2 - x1))
                else:
                    ys.append((y1 + y2) / 2.0)
        if len(ys) >= min_lns:
            points.append(unrotate(x, sum(ys) / len(ys)))
            last_x = x
    return tuple(points)
