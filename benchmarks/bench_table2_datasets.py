"""Table II: trajectory dataset sizes (total location points).

Regenerates the dataset grid of the paper's Table II on the scaled
workloads and benchmarks trace simulation (the GTMobiSIM-equivalent
substrate).
"""

from __future__ import annotations

from conftest import NEAT_COUNTS

from repro.experiments.figures import run_table2
from repro.experiments.workloads import WorkloadSpec, build_dataset, build_network


def bench_table2_dataset_generation(benchmark, emit):
    """Time ATL500-equivalent simulation; report the full Table II grid."""
    network = build_network("ATL")
    spec = WorkloadSpec("ATL", NEAT_COUNTS[-1])
    dataset = benchmark.pedantic(
        lambda: build_dataset(network, spec), rounds=3, iterations=1
    )
    assert dataset.total_points > 0

    result = run_table2(object_counts=NEAT_COUNTS)
    emit("table2_datasets", result.render())
