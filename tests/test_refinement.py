"""Unit tests for Phase 3: modified Hausdorff, adapted DBSCAN, ELB."""

from __future__ import annotations

import pytest

from repro.core.base_cluster import BaseCluster
from repro.core.config import NEATConfig
from repro.core.flow_cluster import FlowCluster
from repro.core.model import Location, TFragment
from repro.core.refinement import (
    RefinementStats,
    euclidean_lower_bound,
    flow_distance,
    refine_flow_clusters,
)
from repro.roadnet.builder import line_network
from repro.roadnet.shortest_path import ShortestPathEngine


def frag(trid: int, sid: int) -> TFragment:
    return TFragment(
        trid, sid, (Location(sid, 0.0, 0.0, 0.0), Location(sid, 1.0, 0.0, 1.0))
    )


def flow_over(network, sids, trids=(0,)) -> FlowCluster:
    clusters = []
    for sid in sids:
        cluster = BaseCluster(sid)
        for trid in trids:
            cluster.add(frag(trid, sid))
        clusters.append(cluster)
    flow = FlowCluster(network, clusters[0])
    for cluster in clusters[1:]:
        flow.append(cluster)
    return flow


@pytest.fixture
def chain10():
    """Ten 100 m segments in a row: easy to reason about distances."""
    return line_network(10, segment_length=100.0)


class TestFlowDistance:
    def test_adjacent_flows(self, chain10):
        engine = ShortestPathEngine(chain10)
        a = flow_over(chain10, [0, 1])  # nodes 0..2
        b = flow_over(chain10, [2, 3])  # nodes 2..4
        # Endpoint sets {0,2} and {2,4}: Hausdorff = max over the maxmin
        # directions = 200 m.
        assert flow_distance(engine, a, b) == pytest.approx(200.0)

    def test_identical_flows_zero(self, chain10):
        engine = ShortestPathEngine(chain10)
        a = flow_over(chain10, [4, 5])
        b = flow_over(chain10, [4, 5])
        assert flow_distance(engine, a, b) == 0.0

    def test_symmetry(self, chain10):
        engine = ShortestPathEngine(chain10)
        a = flow_over(chain10, [0, 1, 2])
        b = flow_over(chain10, [6, 7])
        assert flow_distance(engine, a, b) == pytest.approx(
            flow_distance(engine, b, a)
        )

    def test_far_flows(self, chain10):
        engine = ShortestPathEngine(chain10)
        a = flow_over(chain10, [0])
        b = flow_over(chain10, [9])
        # endpoints {0,1} vs {9,10}: farthest-min is 0 <-> 10 side = 900...
        # max_a min_b: a=0 -> min(900,1000)=900; a=1 -> min(800,900)=800; max=900
        # max_b min_a: b=9 -> 800; b=10 -> 900; max=900.
        assert flow_distance(engine, a, b) == pytest.approx(900.0)


class TestEuclideanLowerBound:
    def test_bound_never_exceeds_network_distance(self, chain10):
        engine = ShortestPathEngine(chain10)
        a = flow_over(chain10, [0, 1])
        b = flow_over(chain10, [5, 6])
        assert euclidean_lower_bound(chain10, a, b) <= flow_distance(engine, a, b)

    def test_bound_on_straight_line_is_exact_min_pair(self, chain10):
        a = flow_over(chain10, [0])
        b = flow_over(chain10, [3])
        # Closest endpoint pair: node 1 (100,0) to node 3 (300,0) = 200 m.
        assert euclidean_lower_bound(chain10, a, b) == pytest.approx(200.0)


class TestRefinement:
    def test_close_flows_merge(self, chain10):
        flows = [
            flow_over(chain10, [0, 1], trids=(0,)),
            flow_over(chain10, [2, 3], trids=(1,)),
        ]
        clusters = refine_flow_clusters(
            chain10, flows, NEATConfig(eps=250.0, min_card=0)
        )
        assert len(clusters) == 1
        assert len(clusters[0].flows) == 2

    def test_far_flows_stay_separate(self, chain10):
        flows = [
            flow_over(chain10, [0], trids=(0,)),
            flow_over(chain10, [9], trids=(1,)),
        ]
        clusters = refine_flow_clusters(
            chain10, flows, NEATConfig(eps=250.0, min_card=0)
        )
        assert len(clusters) == 2

    def test_transitive_merge_chains(self, chain10):
        # A-B close, B-C close, A-C far: all in one eps-connected cluster.
        flows = [
            flow_over(chain10, [0, 1], trids=(0,)),
            flow_over(chain10, [3, 4], trids=(1,)),
            flow_over(chain10, [6, 7], trids=(2,)),
        ]
        clusters = refine_flow_clusters(
            chain10, flows, NEATConfig(eps=500.0, min_card=0)
        )
        assert len(clusters) == 1

    def test_longest_route_seeds_first_cluster(self, chain10):
        short = flow_over(chain10, [0], trids=(0,))
        long = flow_over(chain10, [5, 6, 7, 8], trids=(1,))
        clusters = refine_flow_clusters(
            chain10, [short, long], NEATConfig(eps=100.0, min_card=0)
        )
        assert clusters[0].flows[0] is long

    def test_empty_input(self, chain10):
        assert refine_flow_clusters(chain10, [], NEATConfig()) == []

    def test_singletons_not_noise(self, chain10):
        # "No minimum cardinality is set for the resulting cluster": an
        # isolated flow still forms its own cluster.
        flows = [flow_over(chain10, [0], trids=(0,))]
        clusters = refine_flow_clusters(chain10, flows, NEATConfig(eps=50.0))
        assert len(clusters) == 1

    def test_every_flow_in_exactly_one_cluster(self, chain10):
        flows = [
            flow_over(chain10, [i], trids=(i,)) for i in range(0, 10, 2)
        ]
        clusters = refine_flow_clusters(
            chain10, flows, NEATConfig(eps=220.0, min_card=0)
        )
        seen = [id(f) for c in clusters for f in c.flows]
        assert sorted(seen) == sorted(id(f) for f in flows)


class TestELB:
    def _run(self, chain10, use_elb: bool):
        flows = [
            flow_over(chain10, [0], trids=(0,)),
            flow_over(chain10, [1], trids=(1,)),
            flow_over(chain10, [8], trids=(2,)),
            flow_over(chain10, [9], trids=(3,)),
        ]
        stats = RefinementStats()
        engine = ShortestPathEngine(chain10)
        clusters = refine_flow_clusters(
            chain10,
            flows,
            NEATConfig(eps=150.0, min_card=0, use_elb=use_elb),
            engine=engine,
            stats=stats,
        )
        return clusters, stats

    def test_elb_prunes_far_pairs(self, chain10):
        _clusters, stats = self._run(chain10, use_elb=True)
        assert stats.elb_pruned > 0
        assert stats.hausdorff_evaluations < stats.pair_checks

    def test_dijkstra_mode_computes_all(self, chain10):
        _clusters, stats = self._run(chain10, use_elb=False)
        assert stats.elb_pruned == 0
        assert stats.hausdorff_evaluations == stats.pair_checks

    def test_elb_does_not_change_result(self, chain10):
        with_elb, _ = self._run(chain10, use_elb=True)
        without_elb, _ = self._run(chain10, use_elb=False)
        def shape(clusters):
            return sorted(
                tuple(sorted(tuple(f.sids) for f in c.flows)) for c in clusters
            )
        assert shape(with_elb) == shape(without_elb)

    def test_elb_reduces_shortest_paths(self, chain10):
        _c1, stats_elb = self._run(chain10, use_elb=True)
        _c2, stats_dij = self._run(chain10, use_elb=False)
        assert (
            stats_elb.shortest_path_computations
            < stats_dij.shortest_path_computations
        )


class TestTrajectoryCluster:
    def test_aggregates(self, chain10):
        flows = [
            flow_over(chain10, [0, 1], trids=(0, 1)),
            flow_over(chain10, [2], trids=(1, 2)),
        ]
        clusters = refine_flow_clusters(
            chain10, flows, NEATConfig(eps=400.0, min_card=0)
        )
        cluster = clusters[0]
        assert cluster.trajectory_cardinality == 3
        assert cluster.density == 6  # 2 sids x 2 trids + 1 sid x 2 trids
        assert cluster.total_route_length == pytest.approx(300.0)
        assert len(cluster) == 2
