"""Tiered distance oracle: multi-target kernels, grouping, LLB pruning.

The batched oracle is a pure acceleration: every test here pins either
exact numeric equivalence with the per-pair searches, deterministic
counter parity across backends/worker counts, or cluster-output
invariance across the oracle tiers.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT
from repro.core.serialize import result_to_dict
from repro.roadnet import (
    INFINITY,
    ShortestPathEngine,
    dijkstra_distance,
    dijkstra_multi_target,
    network_from_edges,
    plan_source_groups,
)
from repro.roadnet.shortest_path import dijkstra_distance_counted

from conftest import trajectory_through
from test_csr import random_network, sample_pairs


class TestMultiTargetKernel:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_matches_per_pair_distances(self, seed):
        network = random_network(seed)
        rng = random.Random(seed + 1)
        ids = network.node_ids()
        source = rng.choice(ids)
        targets = tuple(sorted(rng.sample(ids, 12)))
        graph = network.csr(directed=False)

        found, expanded = graph.multi_target_distances(source, targets)
        assert expanded > 0
        for target in targets:
            want = dijkstra_distance(network, source, target)
            if want == INFINITY:
                assert target not in found
            else:
                assert found[target] == want

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_cutoff_semantics(self, seed):
        """Targets beyond the cutoff are absent, never wrong."""
        network = random_network(seed)
        rng = random.Random(seed + 2)
        ids = network.node_ids()
        source = rng.choice(ids)
        targets = tuple(sorted(rng.sample(ids, 12)))
        cutoff = 350.0
        graph = network.csr(directed=False)

        found, _ = graph.multi_target_distances(source, targets, cutoff=cutoff)
        for target in targets:
            want = dijkstra_distance(network, source, target)
            if want <= cutoff:
                assert found[target] == want
            else:
                assert target not in found

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_dict_backend_agrees_with_csr(self, seed):
        network = random_network(seed)
        rng = random.Random(seed + 3)
        ids = network.node_ids()
        source = rng.choice(ids)
        targets = tuple(sorted(rng.sample(ids, 10)))
        graph = network.csr(directed=False)

        csr_found, csr_expanded = graph.multi_target_distances(
            source, targets, cutoff=500.0
        )
        dict_found, dict_expanded = dijkstra_multi_target(
            network, source, targets, cutoff=500.0
        )
        assert dict_found == csr_found
        assert dict_expanded == csr_expanded

    def test_source_as_target_is_free(self):
        network = random_network(5)
        source = network.node_ids()[0]
        graph = network.csr(directed=False)
        found, expanded = graph.multi_target_distances(source, (source,))
        assert found == {source: 0.0}
        assert expanded == 0

    def test_early_exit_settles_fewer_nodes(self):
        """Near targets must not pay for a full single-source sweep."""
        network = random_network(7, rows=9, cols=9)
        ids = network.node_ids()
        source = ids[0]
        near = tuple(sorted(ids[1:3]))
        graph = network.csr(directed=False)
        _, expanded_near = graph.multi_target_distances(source, near)
        _, expanded_all = graph.multi_target_distances(source, tuple(ids[1:]))
        assert expanded_near < expanded_all


class TestSourceGroupPlanner:
    def test_covers_every_pair_exactly_once(self):
        network = random_network(13)
        pairs = {
            (a, b) if a <= b else (b, a)
            for a, b in sample_pairs(network, 13, count=80)
            if a != b
        }
        groups = plan_source_groups(pairs)
        covered = set()
        for source, targets in groups:
            assert len(set(targets)) == len(targets)
            for target in targets:
                key = (source, target) if source <= target else (target, source)
                assert key not in covered, "pair answered twice"
                covered.add(key)
        assert covered == pairs

    def test_groups_beat_per_pair_search_count(self):
        network = random_network(17)
        pairs = [(a, b) for a, b in sample_pairs(network, 17, count=80) if a != b]
        groups = plan_source_groups(pairs)
        assert len(groups) < len({tuple(sorted(p)) for p in pairs})

    def test_deterministic_and_order_independent(self):
        network = random_network(19)
        pairs = [(a, b) for a, b in sample_pairs(network, 19, count=60) if a != b]
        shuffled = list(pairs)
        random.Random(0).shuffle(shuffled)
        assert plan_source_groups(pairs) == plan_source_groups(shuffled)

    def test_identity_pairs_dropped(self):
        assert plan_source_groups([(4, 4)]) == []


class TestGroupedPrefetch:
    def _pairs(self, network, seed):
        return [(a, b) for a, b in sample_pairs(network, seed, count=60) if a != b]

    @pytest.mark.parametrize("backend", ["csr", "dict"])
    def test_distances_match_lazy_engine(self, backend):
        network = random_network(23)
        pairs = self._pairs(network, 23)
        cutoff = 600.0

        lazy = ShortestPathEngine(network, backend=backend)
        lazy_values = [lazy.distance(a, b, cutoff=cutoff) for a, b in pairs]

        grouped = ShortestPathEngine(network, backend=backend)
        grouped.prefetch_grouped(pairs, cutoff=cutoff)
        grouped_values = [grouped.distance(a, b, cutoff=cutoff) for a, b in pairs]

        for got, want in zip(grouped_values, lazy_values):
            if got == INFINITY or want == INFINITY:
                assert got == want
            else:
                assert got == want or abs(got - want) <= 1e-9 * max(got, want)
        # The whole point: far fewer executed searches than unique pairs.
        assert grouped.computations < lazy.computations
        assert grouped.grouped_searches == grouped.computations

    def test_serial_parallel_counter_parity(self):
        network = random_network(31)
        pairs = self._pairs(network, 31)
        engines = {}
        for workers in (1, 3):
            engine = ShortestPathEngine(network)
            engine.prefetch_grouped(pairs, cutoff=700.0, workers=workers)
            engines[workers] = engine
        serial, parallel = engines[1], engines[3]
        assert serial.computations == parallel.computations
        assert serial.grouped_searches == parallel.grouped_searches
        assert serial.nodes_expanded == parallel.nodes_expanded
        assert serial.export_cache() == parallel.export_cache()

    def test_backend_counter_parity(self):
        """Grouped searches are unidirectional on both backends, so the
        executed-search and settled-node accounting must agree exactly."""
        network = random_network(37)
        pairs = self._pairs(network, 37)
        engines = {}
        for backend in ("csr", "dict"):
            engine = ShortestPathEngine(network, backend=backend)
            engine.prefetch_grouped(pairs, cutoff=700.0)
            engines[backend] = engine
        assert engines["csr"].computations == engines["dict"].computations
        assert engines["csr"].nodes_expanded == engines["dict"].nodes_expanded
        assert engines["csr"].export_cache() == engines["dict"].export_cache()

    def test_prefetched_delivery_is_not_a_cache_hit(self):
        network = random_network(41)
        pairs = self._pairs(network, 41)[:10]
        engine = ShortestPathEngine(network)
        engine.prefetch_grouped(pairs, cutoff=700.0)
        hits_before = engine.cache_hits
        for a, b in pairs:
            engine.distance(a, b, cutoff=700.0)
        assert engine.cache_hits == hits_before  # prepaid deliveries
        engine.distance(*pairs[0], cutoff=700.0)
        assert engine.cache_hits == hits_before + 1  # genuine re-ask


def _digest(result) -> str:
    import hashlib
    import json

    payload = json.dumps(result_to_dict(result), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


class TestOracleTierEquivalence:
    def test_tiered_matches_pairwise_clusters_and_stats(self, small_workload):
        network, dataset = small_workload
        results = {}
        for oracle in ("pairwise", "tiered"):
            neat = NEAT(
                network, NEATConfig(eps=1000.0, min_card=0, sp_oracle=oracle)
            )
            results[oracle] = neat.run_opt(list(dataset))
        assert _digest(results["tiered"]) == _digest(results["pairwise"])
        tiered, pairwise = (
            results["tiered"].refinement_stats,
            results["pairwise"].refinement_stats,
        )
        # Pruning tiers and Hausdorff evaluations are oracle-independent;
        # only the executed-search count may (and must) shrink.
        assert tiered.pair_checks == pairwise.pair_checks
        assert tiered.elb_pruned == pairwise.elb_pruned
        assert tiered.llb_pruned == pairwise.llb_pruned
        assert tiered.hausdorff_evaluations == pairwise.hausdorff_evaluations
        assert (
            tiered.shortest_path_computations
            < pairwise.shortest_path_computations
        )

    def test_llb_never_changes_clusters(self, small_workload):
        network, dataset = small_workload
        results = {}
        for use_llb in (False, True):
            neat = NEAT(
                network, NEATConfig(eps=1000.0, min_card=0, use_llb=use_llb)
            )
            results[use_llb] = neat.run_opt(list(dataset))
        assert _digest(results[True]) == _digest(results[False])


def detour_network():
    """A U-shaped corridor: tips ~50 m apart by air, 850 m by road."""
    points = [
        (0.0, 0.0), (100.0, 0.0), (200.0, 0.0), (300.0, 0.0), (400.0, 0.0),
        (400.0, 50.0),
        (300.0, 50.0), (200.0, 50.0), (100.0, 50.0), (0.0, 50.0),
    ]
    edges = [(i, i + 1) for i in range(len(points) - 1)]
    return network_from_edges(points, edges, name="detour-u")


class TestLandmarkPruneTier:
    def test_llb_prunes_what_elb_cannot(self):
        network = detour_network()
        # Flows at the two tips: Euclidean gap ~50-112 m survives an
        # eps=200 ELB check, but every road route is >= 750 m, which the
        # tip-favoring landmark sweep proves without a single Dijkstra.
        trajectories = [
            trajectory_through(network, trid, [0]) for trid in range(3)
        ] + [
            trajectory_through(network, trid, [8]) for trid in range(3, 6)
        ]
        config = NEATConfig(eps=200.0, min_card=0, use_llb=True)
        neat = NEAT(network, config)
        result = neat.run_opt(trajectories)
        stats = result.refinement_stats
        assert stats.llb_evaluations > 0
        assert stats.llb_pruned > 0
        assert stats.elb_pruned == 0  # the Euclidean tier was blind here
        # Pruned pairs never reach the exact-distance stage.
        assert stats.hausdorff_evaluations < stats.pair_checks

        baseline = NEAT(network, NEATConfig(eps=200.0, min_card=0))
        unpruned = baseline.run_opt(trajectories)
        assert _digest(result) == _digest(unpruned)
        assert unpruned.refinement_stats.llb_evaluations == 0

    def test_llb_saves_searches(self):
        network = detour_network()
        trajectories = [
            trajectory_through(network, trid, [0]) for trid in range(3)
        ] + [
            trajectory_through(network, trid, [8]) for trid in range(3, 6)
        ]
        engines = {}
        for use_llb in (False, True):
            neat = NEAT(
                network, NEATConfig(eps=200.0, min_card=0, use_llb=use_llb)
            )
            neat.run_opt(trajectories)
            engines[use_llb] = neat.engine
        assert engines[True].computations < engines[False].computations


class TestLandmarkBoundsMemo:
    def test_memo_reused_until_network_mutates(self):
        network = random_network(43)
        engine = ShortestPathEngine(network)
        first = engine.landmark_bounds(count=4)
        assert engine.landmark_bounds(count=4) is first
        assert engine.landmark_bounds(count=3) is first  # subset suffices
        from repro.roadnet.geometry import Point

        network.add_junction(Point(9999.0, 9999.0))
        rebuilt = engine.landmark_bounds(count=4)
        assert rebuilt is not first
        assert rebuilt.is_current()
        assert not first.is_current()

    def test_directed_engines_refuse_landmarks(self):
        network = random_network(47)
        engine = ShortestPathEngine(network, directed=True, backend="dict")
        with pytest.raises(ValueError):
            engine.landmark_bounds()


class TestEngineCounterPlumbing:
    def test_reset_and_clear_cover_new_counters(self):
        network = random_network(53)
        pairs = [(a, b) for a, b in sample_pairs(network, 53, count=20) if a != b]
        engine = ShortestPathEngine(network)
        engine.prefetch_grouped(pairs, cutoff=500.0)
        assert engine.grouped_searches > 0
        engine.reset_counters()
        assert engine.grouped_searches == 0
        assert engine.warm_hits == 0
        exact, bounded = engine.export_cache()
        assert exact or bounded  # caches survive a counter reset
        engine.clear()
        assert engine.export_cache() == ({}, {})

    def test_grouped_searches_reach_bound_metrics(self):
        from repro.obs.metrics import MetricsRegistry

        network = random_network(59)
        pairs = [(a, b) for a, b in sample_pairs(network, 59, count=20) if a != b]
        registry = MetricsRegistry()
        engine = ShortestPathEngine(network)
        engine.bind_metrics(registry)
        engine.prefetch_grouped(pairs, cutoff=500.0)
        assert registry.value("roadnet.sp.grouped_searches") == float(
            engine.grouped_searches
        )

    def test_multi_target_counts_match_point_queries(self):
        """One grouped search's expansions equal a full-cutoff sweep's."""
        network = random_network(61)
        ids = network.node_ids()
        source, target = ids[0], ids[-1]
        _, point_expanded = dijkstra_distance_counted(
            network, source, target, cutoff=300.0
        )
        assert point_expanded > 0
        found, group_expanded = dijkstra_multi_target(
            network, source, (target,), cutoff=300.0
        )
        assert group_expanded > 0
        if target in found:
            assert found[target] <= 300.0
