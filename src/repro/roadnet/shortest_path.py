"""Shortest-path algorithms on road networks.

Provides plain Dijkstra (the paper's reference algorithm for network
expansion), an A* variant using the Euclidean lower bound as an admissible
heuristic, and a caching :class:`ShortestPathEngine` that counts expansions
so the ELB experiments (Figure 7) can report exactly how many shortest-path
computations a clustering run performed.

Directed searches respect one-way segments (used by the trip simulator);
undirected searches ignore direction (used by Phase 3's network proximity,
per Section III-C3 of the paper: "we consider undirected graphs").
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..errors import NoPathError, UnknownNodeError
from .network import RoadNetwork

#: Sentinel distance for unreachable nodes.
INFINITY = math.inf


@dataclass(frozen=True, slots=True)
class Route:
    """A network path: node sequence plus the segments joining them.

    Attributes:
        nodes: Junction ids ``n_0 .. n_k`` along the path.
        sids: Segment ids ``e_0 .. e_{k-1}``; ``sids[i]`` joins
            ``nodes[i]`` and ``nodes[i+1]``.
        length: Total path length in metres.
    """

    nodes: tuple[int, ...]
    sids: tuple[int, ...]
    length: float

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.sids) + 1:
            raise ValueError(
                f"route shape mismatch: {len(self.nodes)} nodes, "
                f"{len(self.sids)} segments"
            )

    @property
    def source(self) -> int:
        """First junction of the route."""
        return self.nodes[0]

    @property
    def target(self) -> int:
        """Last junction of the route."""
        return self.nodes[-1]

    def reversed(self) -> "Route":
        """The same route traversed in the opposite direction."""
        return Route(tuple(reversed(self.nodes)), tuple(reversed(self.sids)), self.length)


def _neighbor_fn(
    network: RoadNetwork, directed: bool
) -> Callable[[int], Iterable[tuple[int, int, float]]]:
    """Adapter returning ``(neighbor, sid, length)`` triples for a node."""
    if directed:
        def neighbors(node_id: int) -> Iterable[tuple[int, int, float]]:
            return [
                (edge.head, edge.sid, edge.length)
                for edge in network.out_edges(node_id)
            ]
        return neighbors
    return network.undirected_neighbors


def dijkstra_single_source(
    network: RoadNetwork,
    source: int,
    directed: bool = False,
    max_distance: float = INFINITY,
) -> dict[int, float]:
    """Distances from ``source`` to every node within ``max_distance``.

    Args:
        network: The road network.
        source: Start junction id.
        directed: Respect one-way segments when ``True``.
        max_distance: Stop expanding once the frontier exceeds this bound.

    Returns:
        Mapping of reachable node id to shortest-path distance in metres.
    """
    if not network.has_node(source):
        raise UnknownNodeError(source)
    neighbors = _neighbor_fn(network, directed)
    dist: dict[int, float] = {source: 0.0}
    done: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in done:
            continue
        if d > max_distance:
            break
        done.add(node)
        for neighbor, _sid, length in neighbors(node):
            nd = d + length
            if nd < dist.get(neighbor, INFINITY) and nd <= max_distance:
                dist[neighbor] = nd
                heapq.heappush(heap, (nd, neighbor))
    return {node: d for node, d in dist.items() if node in done}


def dijkstra_distance(
    network: RoadNetwork,
    source: int,
    target: int,
    directed: bool = False,
) -> float:
    """Shortest-path distance between two junctions.

    Returns :data:`INFINITY` when no path exists.
    """
    return dijkstra_distance_counted(network, source, target, directed)[0]


def dijkstra_distance_counted(
    network: RoadNetwork,
    source: int,
    target: int,
    directed: bool = False,
) -> tuple[float, int]:
    """Like :func:`dijkstra_distance`, also reporting settled-node count.

    Returns:
        ``(distance, expansions)`` where ``expansions`` is the number of
        nodes the search settled — the per-search work unit the telemetry
        layer aggregates as ``roadnet.sp.nodes_expanded``.
    """
    if not network.has_node(source):
        raise UnknownNodeError(source)
    if not network.has_node(target):
        raise UnknownNodeError(target)
    if source == target:
        return 0.0, 0
    neighbors = _neighbor_fn(network, directed)
    dist: dict[int, float] = {source: 0.0}
    done: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    expansions = 0
    while heap:
        d, node = heapq.heappop(heap)
        if node in done:
            continue
        if node == target:
            return d, expansions
        done.add(node)
        expansions += 1
        for neighbor, _sid, length in neighbors(node):
            nd = d + length
            if nd < dist.get(neighbor, INFINITY):
                dist[neighbor] = nd
                heapq.heappush(heap, (nd, neighbor))
    return INFINITY, expansions


def shortest_route(
    network: RoadNetwork,
    source: int,
    target: int,
    directed: bool = True,
) -> Route:
    """The shortest route between two junctions, with path recovery.

    Uses A* with the Euclidean distance to the target as heuristic.  Since
    every segment's length is at least the straight chord between its
    junctions, the heuristic is admissible and the result optimal.

    Raises:
        NoPathError: when ``target`` is unreachable from ``source``.
    """
    if not network.has_node(source):
        raise UnknownNodeError(source)
    if not network.has_node(target):
        raise UnknownNodeError(target)
    if source == target:
        return Route((source,), (), 0.0)
    neighbors = _neighbor_fn(network, directed)
    target_point = network.node_point(target)

    def heuristic(node_id: int) -> float:
        return network.node_point(node_id).distance_to(target_point)

    dist: dict[int, float] = {source: 0.0}
    parent: dict[int, tuple[int, int]] = {}  # node -> (previous node, sid)
    done: set[int] = set()
    heap: list[tuple[float, float, int]] = [(heuristic(source), 0.0, source)]
    while heap:
        _f, d, node = heapq.heappop(heap)
        if node in done:
            continue
        if node == target:
            return _recover_route(parent, source, target, d)
        done.add(node)
        for neighbor, sid, length in neighbors(node):
            nd = d + length
            if nd < dist.get(neighbor, INFINITY):
                dist[neighbor] = nd
                parent[neighbor] = (node, sid)
                heapq.heappush(heap, (nd + heuristic(neighbor), nd, neighbor))
    raise NoPathError(source, target)


def _recover_route(
    parent: dict[int, tuple[int, int]], source: int, target: int, length: float
) -> Route:
    """Rebuild a :class:`Route` from the A*/Dijkstra parent table."""
    nodes = [target]
    sids: list[int] = []
    node = target
    while node != source:
        node, sid = parent[node]
        nodes.append(node)
        sids.append(sid)
    nodes.reverse()
    sids.reverse()
    return Route(tuple(nodes), tuple(sids), length)


@dataclass
class ShortestPathEngine:
    """A caching, instrumented shortest-path oracle for one network.

    Phase 3 of NEAT repeatedly asks for network distances between flow
    cluster endpoints.  This engine memoizes node-pair distances (symmetric
    in the undirected case) and counts how many actual searches ran, which
    is the quantity the ELB optimization of Figure 7 reduces.

    A long-lived engine is meant to be shared across runs (that is how
    :class:`~repro.core.pipeline.NEAT` amortizes Phase 3 work), so the
    counters are cumulative by default; call :meth:`reset_counters`
    between runs to report per-run Figure-7 numbers, or bind a
    per-run registry with :meth:`bind_metrics` and read the deltas there.

    Attributes:
        network: The road network queried.
        directed: Whether searches respect one-way segments.
        computations: Number of searches actually executed (cache hits are
            free and not counted).
        cache_hits: Number of ``distance`` calls answered from the memo
            table (identity queries are not counted).
        nodes_expanded: Total nodes settled across all Dijkstra searches
            (0 for oracle-backed answers, which do not run a search).
        oracle: Optional accelerated backend (e.g.
            :class:`~repro.roadnet.landmarks.LandmarkOracle`) — any object
            with a ``distance(source, target) -> float`` method.  Only
            valid for undirected engines; results must equal Dijkstra's.
    """

    network: RoadNetwork
    directed: bool = False
    computations: int = 0
    oracle: object | None = None
    cache_hits: int = 0
    nodes_expanded: int = 0
    _cache: dict[tuple[int, int], float] = field(default_factory=dict, repr=False)
    _metric_computations: object | None = field(
        default=None, repr=False, compare=False
    )
    _metric_cache_hits: object | None = field(default=None, repr=False, compare=False)
    _metric_expanded: object | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.oracle is not None and self.directed:
            raise ValueError("accelerated oracles are undirected-only")

    def distance(self, source: int, target: int) -> float:
        """Memoized shortest-path distance between two junctions."""
        if source == target:
            return 0.0
        key = (source, target)
        if not self.directed and source > target:
            key = (target, source)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            if self._metric_cache_hits is not None:
                self._metric_cache_hits.inc()
            return cached
        self.computations += 1
        if self._metric_computations is not None:
            self._metric_computations.inc()
        if self.oracle is not None:
            distance = self.oracle.distance(key[0], key[1])
        else:
            distance, expanded = dijkstra_distance_counted(
                self.network, key[0], key[1], directed=self.directed
            )
            self.nodes_expanded += expanded
            if self._metric_expanded is not None:
                self._metric_expanded.inc(expanded)
        self._cache[key] = distance
        return distance

    def bind_metrics(self, registry) -> None:
        """Mirror this engine's counters into ``registry`` from now on.

        Args:
            registry: A :class:`~repro.obs.metrics.MetricsRegistry`; the
                engine increments its ``roadnet.sp.computations``,
                ``roadnet.sp.cache_hits`` and ``roadnet.sp.nodes_expanded``
                counters alongside the plain attributes.  Binding a fresh
                per-run registry therefore yields per-run deltas even on a
                warm shared engine.  Pass ``None`` to unbind.
        """
        if registry is None:
            self._metric_computations = None
            self._metric_cache_hits = None
            self._metric_expanded = None
            return
        self._metric_computations = registry.counter(
            "roadnet.sp.computations", "Shortest-path searches actually executed"
        )
        self._metric_cache_hits = registry.counter(
            "roadnet.sp.cache_hits", "Distance queries answered from the memo table"
        )
        self._metric_expanded = registry.counter(
            "roadnet.sp.nodes_expanded", "Nodes settled across all Dijkstra searches"
        )

    def reset_counters(self) -> None:
        """Zero every counter (cache contents are kept).

        Call between back-to-back runs sharing one engine so each run
        reports its own Figure-7 numbers rather than cumulative totals.
        """
        self.computations = 0
        self.cache_hits = 0
        self.nodes_expanded = 0

    def clear(self) -> None:
        """Drop the memo table and zero counters."""
        self._cache.clear()
        self.reset_counters()
