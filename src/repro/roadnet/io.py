"""JSON (de)serialization of road networks.

The paper loads USGS/TIGER map extracts; this reproduction persists its
synthetic networks in a simple JSON schema so experiment workloads can be
cached on disk and shared between benchmark runs.

Schema (version 1)::

    {
      "format": "repro-roadnet", "version": 1, "name": "...",
      "junctions": [[node_id, x, y], ...],
      "segments": [[sid, node_u, node_v, length, speed_limit,
                    bidirectional, road_class], ...]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..errors import RoadNetworkError
from .geometry import Point
from .network import RoadNetwork

FORMAT_TAG = "repro-roadnet"
FORMAT_VERSION = 1


def network_to_dict(network: RoadNetwork) -> dict[str, Any]:
    """Serialize a network to a JSON-compatible dictionary."""
    return {
        "format": FORMAT_TAG,
        "version": FORMAT_VERSION,
        "name": network.name,
        "junctions": [
            [j.node_id, j.point.x, j.point.y] for j in network.junctions()
        ],
        "segments": [
            [
                s.sid, s.node_u, s.node_v, s.length, s.speed_limit,
                s.bidirectional, s.road_class,
            ]
            for s in network.segments()
        ],
    }


def network_from_dict(data: dict[str, Any]) -> RoadNetwork:
    """Deserialize a network from :func:`network_to_dict` output."""
    if data.get("format") != FORMAT_TAG:
        raise RoadNetworkError(f"not a road-network document: {data.get('format')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise RoadNetworkError(f"unsupported version: {data.get('version')!r}")
    network = RoadNetwork(name=data.get("name", "road-network"))
    for node_id, x, y in data["junctions"]:
        network.add_junction(Point(float(x), float(y)), node_id=int(node_id))
    for sid, node_u, node_v, length, speed_limit, bidirectional, road_class in data[
        "segments"
    ]:
        network.add_segment(
            int(node_u),
            int(node_v),
            length=float(length),
            speed_limit=float(speed_limit),
            bidirectional=bool(bidirectional),
            road_class=str(road_class),
            sid=int(sid),
        )
    return network


def save_network(network: RoadNetwork, path: str | Path) -> None:
    """Write a network to a JSON file."""
    Path(path).write_text(json.dumps(network_to_dict(network)))


def load_network(path: str | Path) -> RoadNetwork:
    """Read a network from a JSON file produced by :func:`save_network`."""
    return network_from_dict(json.loads(Path(path).read_text()))
