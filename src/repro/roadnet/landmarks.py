"""ALT (A*, Landmarks, Triangle inequality) distance acceleration.

Phase 3 of NEAT repeatedly computes node-pair network distances.  The
paper prunes *whole computations* with the Euclidean lower bound; this
module additionally accelerates the computations that remain: distances
to a few precomputed *landmark* nodes give, via the triangle inequality,
a lower bound ``|d(L, t) - d(L, s)| <= d(s, t)`` that is usually much
tighter than the Euclidean bound on road networks, and drives a goal-
directed A* (Goldberg & Harrelson, SODA'05).

Landmarks are chosen by farthest-point sampling, the standard heuristic.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from ..errors import UnknownNodeError
from .network import RoadNetwork
from .shortest_path import INFINITY


class LandmarkOracle:
    """Precomputed landmark distances and the ALT lower bound / search.

    Args:
        network: The road network (undirected view; Phase 3's setting).
        landmark_count: Number of landmarks to select.
        seed_node: Starting node for farthest-point sampling; defaults to
            the lowest node id for determinism.
    """

    def __init__(
        self,
        network: RoadNetwork,
        landmark_count: int = 8,
        seed_node: int | None = None,
    ) -> None:
        if landmark_count < 1:
            raise ValueError("landmark_count must be >= 1")
        self._network = network
        #: Mutation version of the network the tables were swept on;
        #: consumers memoizing an oracle (the engine's LLB tier) compare
        #: it against ``network.version`` to detect staleness.
        self.network_version = network.version
        node_ids = network.node_ids()
        if not node_ids:
            raise ValueError("cannot build landmarks on an empty network")
        start = seed_node if seed_node is not None else node_ids[0]
        if not network.has_node(start):
            raise UnknownNodeError(start)
        self.landmarks: list[int] = []
        self._tables: list[dict[int, float]] = []
        self._select_landmarks(start, min(landmark_count, len(node_ids)))

    def _select_landmarks(self, start: int, count: int) -> None:
        """Farthest-point sampling: each landmark maximizes the minimum
        distance to the ones already chosen."""
        current = start
        best_min: dict[int, float] = {}
        # Landmark tables are whole-graph single-source sweeps — the CSR
        # flat-array walker settles them several times faster than the
        # dict adjacency, with identical distances.
        graph = self._network.csr(directed=False)
        for _ in range(count):
            table = graph.single_source(current)
            self.landmarks.append(current)
            self._tables.append(table)
            for node, distance in table.items():
                previous = best_min.get(node, INFINITY)
                if distance < previous:
                    best_min[node] = distance
            # Next landmark: reachable node farthest from all landmarks.
            current = max(
                best_min, key=lambda n: (best_min[n], -n), default=current
            )
            if current in self.landmarks:
                break

    # ------------------------------------------------------------------
    def lower_bound(self, source: int, target: int) -> float:
        """ALT lower bound on ``d(source, target)``.

        The maximum over landmarks of ``|d(L, target) - d(L, source)|``;
        0.0 when neither side is covered (disconnected components).
        """
        best = 0.0
        for table in self._tables:
            ds = table.get(source)
            dt = table.get(target)
            if ds is None or dt is None:
                continue
            bound = abs(dt - ds)
            if bound > best:
                best = bound
        return best

    def is_current(self) -> bool:
        """Whether the tables still describe the network (no mutations)."""
        return self.network_version == self._network.version

    def distance(self, source: int, target: int) -> float:
        """Exact distance via ALT-guided A* (undirected).

        Optimal because the ALT bound is a consistent heuristic.
        """
        if source == target:
            return 0.0
        network = self._network
        if not network.has_node(source):
            raise UnknownNodeError(source)
        if not network.has_node(target):
            raise UnknownNodeError(target)
        dist: dict[int, float] = {source: 0.0}
        done: set[int] = set()
        heap: list[tuple[float, float, int]] = [
            (self.lower_bound(source, target), 0.0, source)
        ]
        while heap:
            _f, d, node = heapq.heappop(heap)
            if node in done:
                continue
            if node == target:
                return d
            done.add(node)
            for neighbor, _sid, length in network.undirected_neighbors(node):
                nd = d + length
                if nd < dist.get(neighbor, INFINITY):
                    dist[neighbor] = nd
                    heapq.heappush(
                        heap, (nd + self.lower_bound(neighbor, target), nd, neighbor)
                    )
        return INFINITY

    def settled_estimate(self, source: int, target: int) -> int:
        """Nodes settled by the ALT search (for the acceleration bench)."""
        if source == target:
            return 0
        network = self._network
        dist: dict[int, float] = {source: 0.0}
        done: set[int] = set()
        heap: list[tuple[float, float, int]] = [
            (self.lower_bound(source, target), 0.0, source)
        ]
        while heap:
            _f, d, node = heapq.heappop(heap)
            if node in done:
                continue
            if node == target:
                return len(done)
            done.add(node)
            for neighbor, _sid, length in network.undirected_neighbors(node):
                nd = d + length
                if nd < dist.get(neighbor, INFINITY):
                    dist[neighbor] = nd
                    heapq.heappush(
                        heap, (nd + self.lower_bound(neighbor, target), nd, neighbor)
                    )
        return len(done)


def _source_tables_chunk(
    graph, targets: tuple[int, ...], sources: list[int]
) -> list[list[float]]:
    """Worker-side unit: per source, the distances to every target.

    ``graph`` is a read-only :class:`~repro.roadnet.csr.CSRGraph`
    snapshot; module level so it pickles to a process pool.
    """
    rows: list[list[float]] = []
    for source in sources:
        table = graph.single_source(source)
        rows.append([table.get(target, INFINITY) for target in targets])
    return rows


def many_to_many_distances(
    network: RoadNetwork,
    sources: Sequence[int],
    targets: Sequence[int],
    workers: int | None = 1,
) -> dict[tuple[int, int], float]:
    """All source-target distances via one Dijkstra per source.

    The bulk primitive behind batched Phase 3 refreshes: with ``S``
    sources it costs ``S`` single-source searches (over the flat-array
    CSR snapshot) instead of ``S*T`` point queries.

    Args:
        workers: Fan the per-source sweeps out over a process pool
            (``None``/``0`` = one per CPU, ``<=1`` serial); results are
            identical at any setting.
    """
    from functools import partial

    from ..parallel import map_chunked

    source_list = list(sources)
    target_tuple = tuple(targets)
    graph = network.csr(directed=False)
    rows = map_chunked(
        partial(_source_tables_chunk, graph, target_tuple),
        source_list,
        workers=workers,
        min_items_per_worker=4,
    )
    results: dict[tuple[int, int], float] = {}
    for source, row in zip(source_list, rows):
        for target, distance in zip(target_tuple, row):
            results[(source, target)] = distance
    return results
