"""Tests for repro.distributed.shardmap: the consistent-hash region map.

The ring's two load-bearing properties — deterministic placement and
move-only-the-dead-node's-keys rebalance — plus region assignment,
failover preference ordering, boundary-segment detection, and the
coordinator running over a region shard map byte-identically to serial.
"""

from __future__ import annotations

import json

import pytest

from repro.core.base_cluster import form_base_clusters
from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT
from repro.core.serialize import result_to_dict
from repro.distributed import (
    HashRing,
    NeatCoordinator,
    RegionShardMap,
    boundary_sids,
)
from repro.errors import ConfigError

from conftest import trajectory_through


class TestHashRing:
    def test_same_membership_same_placement(self):
        first = HashRing([0, 1, 2, 3])
        second = HashRing([3, 2, 1, 0])  # insertion order is irrelevant
        keys = [f"cell:{r}:{c}" for r in range(16) for c in range(16)]
        assert [first.node_for(k) for k in keys] == [
            second.node_for(k) for k in keys
        ]

    def test_membership_api(self):
        ring = HashRing([0, 1])
        assert len(ring) == 2 and 1 in ring and 5 not in ring
        assert ring.node_ids == (0, 1)
        assert ring.add_node(5) and not ring.add_node(5)  # idempotent
        assert ring.remove_node(5) and not ring.remove_node(5)

    def test_all_members_get_keys(self):
        ring = HashRing(range(4))
        owners = {ring.node_for(f"cell:{r}:{c}")
                  for r in range(32) for c in range(32)}
        assert owners == {0, 1, 2, 3}

    def test_removal_moves_only_the_removed_nodes_keys(self):
        ring = HashRing(range(5))
        keys = [f"cell:{r}:{c}" for r in range(32) for c in range(32)]
        before = {key: ring.node_for(key) for key in keys}
        assert ring.remove_node(2)
        moved = {key for key in keys if ring.node_for(key) != before[key]}
        assert moved  # node 2 did own something
        assert all(before[key] == 2 for key in moved)

    def test_preference_starts_at_owner_and_predicts_failover(self):
        ring = HashRing(range(4))
        key = "cell:3:3"
        order = ring.preference(key)
        assert sorted(order) == [0, 1, 2, 3]
        assert order[0] == ring.node_for(key)
        # Failover target = the node a real rebalance would pick.
        ring.remove_node(order[0])
        assert ring.node_for(key) == order[1]

    def test_empty_ring_rejected(self):
        ring = HashRing()
        assert ring.preference("k") == []
        with pytest.raises(ConfigError):
            ring.node_for("k")

    def test_invalid_virtual_nodes_rejected(self):
        with pytest.raises(ConfigError):
            HashRing([0], virtual_nodes=0)


class TestRegionShardMap:
    def test_every_trajectory_assigned_exactly_once(self, small_workload):
        network, dataset = small_workload
        trajectories = list(dataset)
        shardmap = RegionShardMap(network, [0, 1, 2])
        shards = shardmap.shard(trajectories)
        assert set(shards) == {0, 1, 2}
        flat = [tr for shard in shards.values() for tr in shard]
        assert sorted(tr.trid for tr in flat) == sorted(
            tr.trid for tr in trajectories
        )

    def test_sharding_is_deterministic_and_order_preserving(
        self, small_workload
    ):
        network, dataset = small_workload
        trajectories = list(dataset)
        first = RegionShardMap(network, [0, 1, 2]).shard(trajectories)
        second = RegionShardMap(network, [0, 1, 2]).shard(trajectories)
        assert first == second
        order = {tr.trid: i for i, tr in enumerate(trajectories)}
        for shard in first.values():
            ranks = [order[tr.trid] for tr in shard]
            assert ranks == sorted(ranks)

    def test_same_region_same_node(self, line3):
        # Trajectories starting on the same segment share a home cell.
        shardmap = RegionShardMap(line3, [0, 1, 2, 3])
        a = trajectory_through(line3, 1, [0, 1])
        b = trajectory_through(line3, 2, [0, 1, 2])
        assert shardmap.trajectory_key(a) == shardmap.trajectory_key(b)
        assert shardmap.node_for_trajectory(a) == shardmap.node_for_trajectory(b)

    def test_out_of_bounds_points_clamp_to_border_cells(self, line3):
        shardmap = RegionShardMap(line3, [0], grid=4)
        assert shardmap.cell_key(-1e9, -1e9) == "cell:0:0"
        assert shardmap.cell_key(1e9, 1e9) == "cell:3:3"

    def test_remove_node_counts_rebalances(self, line3):
        shardmap = RegionShardMap(line3, [0, 1, 2])
        assert shardmap.remove_node(1)
        assert not shardmap.remove_node(1)
        assert shardmap.rebalances == 1
        assert shardmap.ring.node_ids == (0, 2)

    def test_redispatch_order_leads_with_rebalance_target(self, line3):
        shardmap = RegionShardMap(line3, [0, 1, 2, 3])
        shard = [trajectory_through(line3, 1, [0, 1])]
        order = shardmap.redispatch_order(shard)
        assert sorted(order) == [0, 1, 2, 3]
        owner = shardmap.node_for_trajectory(shard[0])
        assert order[0] == owner
        shardmap.remove_node(owner)
        assert shardmap.node_for_trajectory(shard[0]) == order[1]

    def test_redispatch_order_for_empty_shard(self, line3):
        shardmap = RegionShardMap(line3, [2, 0, 1])
        assert shardmap.redispatch_order([]) == [0, 1, 2]

    def test_invalid_configuration_rejected(self, line3):
        with pytest.raises(ConfigError):
            RegionShardMap(line3, [])
        with pytest.raises(ConfigError):
            RegionShardMap(line3, [0], grid=0)


class TestBoundarySids:
    def test_detects_segments_spanning_shards(self, line3):
        a = form_base_clusters(line3, [trajectory_through(line3, 1, [0, 1])])
        b = form_base_clusters(line3, [trajectory_through(line3, 2, [1, 2])])
        assert boundary_sids([a, b]) == {1}

    def test_disjoint_partials_have_no_boundary(self, line3):
        a = form_base_clusters(line3, [trajectory_through(line3, 1, [0])])
        b = form_base_clusters(line3, [trajectory_through(line3, 2, [2])])
        assert boundary_sids([a, b]) == set()
        assert boundary_sids([]) == set()


class TestCoordinatorWithShardMap:
    def test_region_sharded_run_byte_identical_to_serial(self, small_workload):
        network, dataset = small_workload
        trajectories = list(dataset)
        config = NEATConfig(eps=500.0)
        serial = NEAT(network, config).run(trajectories, mode="opt")
        reference = json.dumps(
            result_to_dict(serial, network_name=network.name), sort_keys=True
        )
        for node_count in (1, 2, 4):
            coordinator = NeatCoordinator(
                network, config, node_count=node_count,
                shardmap=RegionShardMap(network, range(node_count)),
            )
            result = coordinator.run(trajectories, mode="opt")
            document = json.dumps(
                result_to_dict(result, network_name=network.name),
                sort_keys=True,
            )
            assert document == reference, f"{node_count} nodes diverged"

    def test_boundary_segments_counted(self, small_workload):
        from repro.obs import Telemetry

        network, dataset = small_workload
        coordinator = NeatCoordinator(
            network, NEATConfig(eps=500.0), node_count=3,
            shardmap=RegionShardMap(network, [0, 1, 2]),
            telemetry=Telemetry.create(),
        )
        coordinator.run(list(dataset), mode="base")
        counter = coordinator.telemetry.metrics.get("ring.boundary_segments")
        assert counter is not None
