"""Time-sliced clustering: how traffic flows evolve over time.

An extension in the spirit of the paper's LBS applications: traffic
monitoring cares not just about *where* the major flows are but *when*.
This module windows a trajectory dataset by departure time, runs
flow-NEAT per window, and quantifies flow churn between consecutive
windows (Jaccard similarity of the covered road surface).

Slicing is by trajectory departure time — a trip belongs to the window it
starts in — which preserves whole trips (Phase 1 requires complete
trajectories; splitting mid-trip would manufacture artificial trip ends).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..roadnet.network import RoadNetwork
from .config import NEATConfig
from .model import Trajectory
from .pipeline import NEAT
from .result import NEATResult


@dataclass
class TimeSlice:
    """One time window's clustering.

    Attributes:
        index: 0-based window index.
        start: Window start time (inclusive), seconds.
        end: Window end time (exclusive), seconds.
        trajectory_count: Trips departing within the window.
        result: The flow-NEAT result for those trips.
    """

    index: int
    start: float
    end: float
    trajectory_count: int
    result: NEATResult

    @property
    def covered_segments(self) -> frozenset[int]:
        """Road segments covered by the window's kept flows."""
        return frozenset(sid for flow in self.result.flows for sid in flow.sids)


def time_sliced_clustering(
    network: RoadNetwork,
    trajectories: Sequence[Trajectory],
    window: float,
    config: NEATConfig | None = None,
    mode: str = "flow",
) -> list[TimeSlice]:
    """Cluster trips per departure-time window.

    Args:
        network: The road network.
        trajectories: The full trajectory set.
        window: Window length in seconds.
        config: NEAT parameters applied to every window.
        mode: NEAT variant per window (default flow-NEAT; Phase 3 across
            windows is better done by :class:`IncrementalNEAT`).

    Returns:
        One :class:`TimeSlice` per non-empty window, in time order.
    """
    if window <= 0.0:
        raise ValueError(f"window must be positive, got {window}")
    if not trajectories:
        return []
    neat = NEAT(network, config)
    t0 = min(tr.start.t for tr in trajectories)
    buckets: dict[int, list[Trajectory]] = {}
    for trajectory in trajectories:
        index = math.floor((trajectory.start.t - t0) / window)
        buckets.setdefault(index, []).append(trajectory)

    slices = []
    for index in sorted(buckets):
        batch = buckets[index]
        result = neat.run(batch, mode=mode)
        slices.append(
            TimeSlice(
                index=index,
                start=t0 + index * window,
                end=t0 + (index + 1) * window,
                trajectory_count=len(batch),
                result=result,
            )
        )
    return slices


def flow_stability(slices: Sequence[TimeSlice]) -> list[float]:
    """Jaccard similarity of flow coverage between consecutive windows.

    1.0 = the major flows persist unchanged; 0.0 = complete churn.
    Returns one value per consecutive pair (empty for < 2 slices).
    """
    stabilities = []
    for earlier, later in zip(slices, slices[1:]):
        a, b = earlier.covered_segments, later.covered_segments
        union = a | b
        stabilities.append(len(a & b) / len(union) if union else 1.0)
    return stabilities


def persistent_segments(
    slices: Sequence[TimeSlice], min_fraction: float = 0.8
) -> frozenset[int]:
    """Segments covered by the flows of at least ``min_fraction`` windows.

    These are the all-day corridors — the strongest bus-line candidates.
    """
    if not slices:
        return frozenset()
    if not (0.0 < min_fraction <= 1.0):
        raise ValueError("min_fraction must be in (0, 1]")
    counts: dict[int, int] = {}
    for timeslice in slices:
        for sid in timeslice.covered_segments:
            counts[sid] = counts.get(sid, 0) + 1
    needed = math.ceil(min_fraction * len(slices))
    return frozenset(sid for sid, count in counts.items() if count >= needed)
