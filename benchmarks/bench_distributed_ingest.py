"""Ingest scaling of the real multi-process distributed tier.

One measurement, one artifact
(``output/BENCH_distributed_ingest.json``): the same opt-NEAT workload
clustered serially and through 1/2/4 local ``repro shard-node`` worker
processes — real OS processes, real TCP, region sharding over the
consistent-hash ring.  For every shard count the run must produce a
result document *byte-identical* to the serial one (the distributed
tier's core invariant); the artifact records the SHA-256 digest match
alongside wall times, the per-shard trajectory split and the
deterministic result counters (flows, clusters, boundary segments)
that ``check_perf_regression.py`` gates against the committed
baseline.

The wall-time columns are honest about what they measure: on a small
workload the wire serialization dominates and shards cost more than
serial — the point of the bench is the invariant and the trend, not a
speedup claim.  ``--smoke`` shrinks the workload for CI;
``--append-history`` feeds the trend ledger of ``bench_history.py``.
"""

from __future__ import annotations

import hashlib
import json
import sys
import tempfile
import time
from pathlib import Path

OUTPUT_DIR = Path(__file__).parent / "output"
ARTIFACT = OUTPUT_DIR / "BENCH_distributed_ingest.json"

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.config import NEATConfig  # noqa: E402
from repro.core.pipeline import NEAT  # noqa: E402
from repro.core.serialize import result_to_dict  # noqa: E402
from repro.distributed import (  # noqa: E402
    NeatCoordinator,
    RegionShardMap,
    RemoteDataNode,
    TransportClient,
    spawn_local_shards,
    stop_shards,
)
from repro.experiments.harness import export_metrics, format_table  # noqa: E402
from repro.experiments.workloads import (  # noqa: E402
    WorkloadSpec,
    build_dataset,
    build_network,
)
from repro.roadnet.io import save_network  # noqa: E402

ROUNDS = 3
OBJECTS = 200
EPS = 1000.0
REGION = "ATL"
SHARD_COUNTS = (1, 2, 4)


def _digest(document: dict) -> str:
    return hashlib.sha256(
        json.dumps(document, sort_keys=True).encode("utf-8")
    ).hexdigest()


def run_ingest_scaling(
    objects: int = OBJECTS,
    rounds: int = ROUNDS,
    region: str = REGION,
    network_scale: float | None = None,
    shard_counts: tuple[int, ...] = SHARD_COUNTS,
) -> dict:
    """Serial vs N-shard-process wall time, digest-checked per rung."""
    network = build_network(region, network_scale)
    dataset = build_dataset(
        network, WorkloadSpec(region, objects, network_scale=network_scale)
    )
    trajectories = list(dataset.trajectories)
    config = NEATConfig(eps=EPS)

    serial_neat = NEAT(network, config)
    serial_best = float("inf")
    serial_result = None
    for _ in range(rounds):
        started = time.perf_counter()
        serial_result = serial_neat.run(trajectories, mode="opt")
        serial_best = min(serial_best, time.perf_counter() - started)
    serial_doc = result_to_dict(serial_result, network_name=network.name)
    serial_digest = _digest(serial_doc)

    rungs = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-shards-") as tmp:
        network_path = Path(tmp) / "network.json"
        save_network(network, network_path)
        for count in shard_counts:
            shards = spawn_local_shards(
                network_path, count, work_dir=Path(tmp) / f"shards-{count}"
            )
            try:
                best = float("inf")
                result = None
                for _ in range(rounds):
                    # Fresh nodes/ring per round: a node death or
                    # rebalance in one round must not leak into the next.
                    nodes = [
                        RemoteDataNode(
                            s.node_id, TransportClient(s.host, s.port)
                        )
                        for s in shards
                    ]
                    shardmap = RegionShardMap(
                        network, [s.node_id for s in shards]
                    )
                    coordinator = NeatCoordinator(
                        network, config, nodes=nodes, shardmap=shardmap
                    )
                    started = time.perf_counter()
                    result = coordinator.run(trajectories, mode="opt")
                    best = min(best, time.perf_counter() - started)
                split = [
                    len(shard)
                    for _, shard in sorted(shardmap.shard(trajectories).items())
                ]
            finally:
                stop_shards(shards)
            document = result_to_dict(result, network_name=network.name)
            rungs.append({
                "shards": count,
                "wall_s": round(best, 4),
                "vs_serial": round(best / serial_best, 3),
                "digest_match": _digest(document) == serial_digest,
                "shard_split": split,
                "dropped_shards": list(result.dropped_shards),
            })

    return {
        "network": region,
        "objects": objects,
        "rounds": rounds,
        "eps": EPS,
        "trajectories": len(trajectories),
        "serial_s": round(serial_best, 4),
        "flows": len(serial_result.flows),
        "clusters": len(serial_result.clusters),
        "digest": serial_digest,
        "all_digests_match": all(r["digest_match"] for r in rungs),
        "rungs": rungs,
    }


def render_ingest_scaling(report: dict) -> str:
    rows = [(
        "serial", f"{report['serial_s']:.4f}", "1.000", "—", "—",
    )]
    for rung in report["rungs"]:
        rows.append((
            f"{rung['shards']} shard proc(s)",
            f"{rung['wall_s']:.4f}",
            f"{rung['vs_serial']:.3f}",
            "yes" if rung["digest_match"] else "NO",
            "/".join(str(n) for n in rung["shard_split"]),
        ))
    table = format_table(
        ("configuration", f"best-of-{report['rounds']} (s)",
         "x serial", "byte-identical", "split"),
        rows,
    )
    return "\n".join([
        "Distributed ingest scaling over local shard processes "
        f"({report['network']}, {report['objects']} objects, "
        f"eps={report['eps']})",
        table,
        f"serial result: {report['flows']} flows, "
        f"{report['clusters']} clusters, digest {report['digest'][:16]}…",
    ])


def bench_distributed_ingest(emit):
    """Pytest entry point: smoke-scale scaling run, digests must match."""
    report = run_ingest_scaling(objects=40, rounds=1, shard_counts=(1, 2))
    export_metrics(report, ARTIFACT)
    emit("distributed_ingest", render_ingest_scaling(report))
    assert report["all_digests_match"], (
        "a distributed rung diverged from the serial result: "
        + json.dumps(report["rungs"], indent=2)
    )


def main(argv: list[str] | None = None) -> int:
    """Standalone runner (CI smoke mode shrinks the workload)."""
    import argparse

    from repro.tune.profiles import add_profile_argument, resolve_profile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload: checks the harness runs, not the scaling",
    )
    parser.add_argument(
        "--append-history",
        action="store_true",
        help="append the artifact to benchmarks/history/BENCH_history.jsonl",
    )
    add_profile_argument(parser)
    options = parser.parse_args(argv)

    if options.profile:
        spec = resolve_profile(options.profile).bench_spec(smoke=options.smoke)
        report = run_ingest_scaling(
            objects=spec.object_count,
            rounds=1 if options.smoke else ROUNDS,
            region=spec.region,
            network_scale=spec.network_scale,
        )
    elif options.smoke:
        report = run_ingest_scaling(objects=60, rounds=1)
    else:
        report = run_ingest_scaling()
    export_metrics(report, ARTIFACT)
    print(render_ingest_scaling(report))
    print(f"\nwrote {ARTIFACT}")
    if options.append_history:
        from bench_history import append_entry

        entry = append_entry(ARTIFACT, profile=options.profile)
        print(f"appended ledger entry for workload {entry['workload']!r}")
    if not report["all_digests_match"]:
        print("FAIL: a distributed rung diverged from serial", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
