"""Unit tests for the robustness primitives (repro.resilience)."""

from __future__ import annotations

import pytest

from repro.errors import (
    CircuitOpenError,
    ConfigError,
    DeadlineExceeded,
    FaultInjected,
    RetriesExhausted,
)
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRetryPolicy:
    def test_success_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ValueError("transient")
            return "ok"

        slept = []
        result = RetryPolicy(max_retries=3).call(flaky, sleep=slept.append)
        assert result == "ok"
        assert calls["n"] == 3
        assert len(slept) == 2

    def test_exhaustion_raises_with_attempt_count(self):
        def always_fails():
            raise ValueError("down")

        with pytest.raises(RetriesExhausted) as info:
            RetryPolicy(max_retries=2).call(
                always_fails, operation="op", sleep=lambda s: None
            )
        assert info.value.attempts == 3
        assert isinstance(info.value.last_error, ValueError)
        assert isinstance(info.value.__cause__, ValueError)

    def test_zero_retries_tries_exactly_once(self):
        calls = {"n": 0}

        def fails():
            calls["n"] += 1
            raise ValueError("x")

        with pytest.raises(RetriesExhausted):
            RetryPolicy(max_retries=0).call(fails, sleep=lambda s: None)
        assert calls["n"] == 1

    def test_delays_are_deterministic_per_seed(self):
        policy = RetryPolicy(max_retries=5, seed=13)
        assert list(policy.delays()) == list(policy.delays())
        twin = RetryPolicy(max_retries=5, seed=13)
        assert list(policy.delays()) == list(twin.delays())

    def test_different_seeds_give_different_jitter(self):
        a = RetryPolicy(max_retries=5, seed=1, jitter=0.5)
        b = RetryPolicy(max_retries=5, seed=2, jitter=0.5)
        assert list(a.delays()) != list(b.delays())

    def test_backoff_grows_and_respects_caps(self):
        policy = RetryPolicy(
            max_retries=6, base_delay_s=0.1, multiplier=2.0,
            max_delay_s=0.5, jitter=0.0,
        )
        assert list(policy.delays()) == [0.1, 0.2, 0.4, 0.5, 0.5, 0.5]

    def test_jitter_bounded_by_fraction(self):
        policy = RetryPolicy(
            max_retries=50, base_delay_s=1.0, multiplier=1.0,
            max_delay_s=1.0, jitter=0.25, seed=3,
        )
        for delay in policy.delays():
            assert 1.0 <= delay < 1.25

    def test_on_retry_callback_sees_each_attempt(self):
        seen = []

        def fails():
            raise ValueError("x")

        with pytest.raises(RetriesExhausted):
            RetryPolicy(max_retries=2).call(
                fails,
                sleep=lambda s: None,
                on_retry=lambda attempt, delay, err: seen.append(
                    (attempt, type(err))
                ),
            )
        assert seen == [(1, ValueError), (2, ValueError)]

    def test_unlisted_exception_propagates_immediately(self):
        calls = {"n": 0}

        def fails():
            calls["n"] += 1
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            RetryPolicy(max_retries=5).call(
                fails, retry_on=(ValueError,), sleep=lambda s: None
            )
        assert calls["n"] == 1

    def test_deadline_aborts_between_attempts(self):
        clock = FakeClock()
        deadline = Deadline(10.0, "op", clock=clock)

        def fails():
            clock.advance(20.0)
            raise ValueError("slow failure")

        with pytest.raises(DeadlineExceeded):
            RetryPolicy(max_retries=5, base_delay_s=0.0, jitter=0.0).call(
                fails, deadline=deadline, sleep=lambda s: None
            )

    def test_backoff_larger_than_budget_aborts_without_sleeping(self):
        clock = FakeClock()
        deadline = Deadline(0.5, "op", clock=clock)
        slept = []

        def fails():
            raise ValueError("x")

        with pytest.raises(DeadlineExceeded):
            RetryPolicy(
                max_retries=5, base_delay_s=2.0, max_delay_s=2.0, jitter=0.0
            ).call(fails, deadline=deadline, sleep=slept.append)
        assert slept == []

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"base_delay_s": -0.1},
            {"multiplier": 0.5},
            {"base_delay_s": 1.0, "max_delay_s": 0.5},
            {"jitter": 1.5},
        ],
    )
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)


class TestDeadline:
    def test_remaining_counts_down(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, "op", clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired

    def test_expiry_and_check(self):
        clock = FakeClock()
        deadline = Deadline(1.0, "refresh", clock=clock)
        deadline.check()  # within budget: no raise
        clock.advance(1.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceeded) as info:
            deadline.check()
        assert info.value.operation == "refresh"
        assert info.value.budget_s == 1.0

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ConfigError):
            Deadline(0.0)
        with pytest.raises(ConfigError):
            Deadline(-1.0)


class TestCircuitBreaker:
    def make(self, clock, **kwargs):
        defaults = dict(failure_threshold=2, recovery_s=10.0)
        defaults.update(kwargs)
        return CircuitBreaker("test", clock=clock, **defaults)

    def test_trips_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trip_count == 1

    def test_success_resets_the_failure_streak(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_open_rejects_with_retry_after(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        with pytest.raises(CircuitOpenError) as info:
            breaker.check()
        assert info.value.retry_after_s == pytest.approx(10.0)

    def test_half_open_after_recovery_interval(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_half_open_admits_limited_trial_calls(self):
        clock = FakeClock()
        breaker = self.make(clock, half_open_max_calls=2)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()

    def test_half_open_success_closes(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trip_count == 2

    def test_on_open_hook_fires_per_trip(self):
        clock = FakeClock()
        trips = []
        breaker = CircuitBreaker(
            "hooked", failure_threshold=1, recovery_s=5.0,
            clock=clock, on_open=lambda: trips.append(clock.now),
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert trips == [0.0, 5.0]

    def test_call_wrapper_guards_and_records(self):
        clock = FakeClock()
        breaker = self.make(clock)

        def fails():
            raise ValueError("x")

        for _ in range(2):
            with pytest.raises(ValueError):
                breaker.call(fails)
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never runs")
        clock.advance(10.0)
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state == CircuitBreaker.CLOSED

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"recovery_s": -1.0},
            {"half_open_max_calls": 0},
        ],
    )
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            CircuitBreaker("bad", **kwargs)


class TestCircuitBreakerThreadSafety:
    """Half-open admission is atomic: N racing probes admit exactly max."""

    def race_allow(self, breaker, thread_count: int) -> int:
        import threading

        barrier = threading.Barrier(thread_count)
        admitted = []
        lock = threading.Lock()

        def probe() -> None:
            barrier.wait()
            if breaker.allow():
                with lock:
                    admitted.append(1)

        threads = [
            threading.Thread(target=probe) for _ in range(thread_count)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return len(admitted)

    @pytest.mark.parametrize("max_calls", [1, 2])
    def test_concurrent_probes_admit_exactly_max(self, max_calls):
        for _ in range(10):  # the race is probabilistic; hammer it
            clock = FakeClock()
            breaker = CircuitBreaker(
                "raced", failure_threshold=1, recovery_s=1.0,
                half_open_max_calls=max_calls, clock=clock,
            )
            breaker.record_failure()
            clock.advance(1.0)
            assert self.race_allow(breaker, 16) == max_calls
            assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_concurrent_records_keep_counters_consistent(self):
        import threading

        breaker = CircuitBreaker(
            "stress", failure_threshold=2, recovery_s=0.001,
            half_open_max_calls=1,
        )
        barrier = threading.Barrier(8)
        errors = []

        def churn() -> None:
            barrier.wait()
            try:
                for i in range(200):
                    breaker.allow()
                    if i % 3:
                        breaker.record_failure()
                    else:
                        breaker.record_success()
                    breaker.state
            except Exception as error:  # pragma: no cover - the regression
                errors.append(error)

        threads = [threading.Thread(target=churn) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert breaker.state in (
            CircuitBreaker.CLOSED, CircuitBreaker.OPEN, CircuitBreaker.HALF_OPEN
        )
        assert breaker.trip_count >= 1


class TestFaultPlan:
    def test_fail_nth_single_call(self):
        wrapped = FaultPlan(fail_nth=2).wrap(lambda: "ok", "op")
        assert wrapped() == "ok"
        with pytest.raises(FaultInjected) as info:
            wrapped()
        assert info.value.call_index == 2
        assert info.value.operation == "op"
        assert wrapped() == "ok"

    def test_fail_nth_accepts_iterables(self):
        wrapped = FaultPlan(fail_nth=(1, 3)).wrap(lambda: "ok")
        with pytest.raises(FaultInjected):
            wrapped()
        assert wrapped() == "ok"
        with pytest.raises(FaultInjected):
            wrapped()
        assert wrapped.injected_failures == 2

    def test_kill_from_is_permanent(self):
        wrapped = FaultPlan(kill_from=3).wrap(lambda: "ok")
        assert wrapped() == "ok"
        assert wrapped() == "ok"
        for _ in range(4):
            with pytest.raises(FaultInjected):
                wrapped()
        assert wrapped.calls == 6
        assert wrapped.injected_failures == 4

    def test_latency_is_recorded_and_routed_to_sleeper(self):
        slept = []
        wrapped = FaultPlan(latency_s=0.25).wrap(
            lambda: "ok", sleeper=slept.append
        )
        wrapped()
        wrapped()
        assert slept == [0.25, 0.25]
        assert wrapped.injected_latency_s == pytest.approx(0.5)

    def test_latency_default_sleeper_only_records(self):
        wrapped = FaultPlan(latency_s=5.0).wrap(lambda: "ok")
        assert wrapped() == "ok"  # returns immediately
        assert wrapped.injected_latency_s == pytest.approx(5.0)

    def test_corrupt_nth_default_replaces_payload_with_none(self):
        wrapped = FaultPlan(corrupt_nth=1).wrap(lambda: {"k": 1})
        assert wrapped() is None
        assert wrapped() == {"k": 1}
        assert wrapped.injected_corruptions == 1

    def test_corrupt_nth_custom_corruptor(self):
        plan = FaultPlan(corrupt_nth=2, corruptor=lambda doc: doc[::-1])
        wrapped = plan.wrap(lambda: [1, 2, 3])
        assert wrapped() == [1, 2, 3]
        assert wrapped() == [3, 2, 1]

    def test_custom_exception_factory(self):
        plan = FaultPlan(
            fail_nth=1, exception=lambda op, n: TimeoutError(f"{op}#{n}")
        )
        wrapped = plan.wrap(lambda: "ok", "slow")
        with pytest.raises(TimeoutError):
            wrapped()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fail_nth": 0},
            {"kill_from": 0},
            {"latency_s": -1.0},
            {"corrupt_nth": -2},
        ],
    )
    def test_invalid_plan_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FaultPlan(**kwargs)


class TestFaultInjector:
    def test_unarmed_operations_pass_through(self):
        injector = FaultInjector()
        assert injector.run("anything", lambda x: x + 1, 1) == 2
        assert not injector.armed("anything")
        assert injector.wrapper("anything") is None

    def test_armed_plan_applies_by_call_index(self):
        injector = FaultInjector()
        injector.arm("op", FaultPlan(fail_nth=1))
        with pytest.raises(FaultInjected):
            injector.run("op", lambda: "ok")
        assert injector.run("op", lambda: "ok") == "ok"
        assert injector.wrapper("op").calls == 2

    def test_disarm_is_idempotent(self):
        injector = FaultInjector()
        injector.arm("op", FaultPlan(kill_from=1))
        injector.disarm("op")
        injector.disarm("op")
        assert injector.run("op", lambda: "ok") == "ok"

    def test_rearming_resets_the_call_counter(self):
        injector = FaultInjector()
        injector.arm("op", FaultPlan(fail_nth=1))
        with pytest.raises(FaultInjected):
            injector.run("op", lambda: "ok")
        injector.arm("op", FaultPlan(fail_nth=1))
        with pytest.raises(FaultInjected):
            injector.run("op", lambda: "ok")
