"""Unit tests for the road-network graph and its adjacency operators."""

from __future__ import annotations

import pytest

from repro.errors import (
    DuplicateSegmentError,
    RoadNetworkError,
    UnknownNodeError,
    UnknownSegmentError,
)
from repro.roadnet.geometry import Point
from repro.roadnet.network import RoadNetwork


class TestConstruction:
    def test_add_junction_assigns_ids(self):
        net = RoadNetwork()
        assert net.add_junction(Point(0, 0)) == 0
        assert net.add_junction(Point(1, 0)) == 1
        assert net.junction_count == 2

    def test_explicit_node_id(self):
        net = RoadNetwork()
        assert net.add_junction(Point(0, 0), node_id=10) == 10
        # Next auto id continues past the explicit one.
        assert net.add_junction(Point(1, 0)) == 11

    def test_duplicate_node_id_rejected(self):
        net = RoadNetwork()
        net.add_junction(Point(0, 0), node_id=5)
        with pytest.raises(RoadNetworkError):
            net.add_junction(Point(1, 1), node_id=5)

    def test_add_segment_defaults_length_to_chord(self):
        net = RoadNetwork()
        a = net.add_junction(Point(0, 0))
        b = net.add_junction(Point(30, 40))
        sid = net.add_segment(a, b)
        assert net.segment(sid).length == pytest.approx(50.0)

    def test_add_segment_unknown_node(self):
        net = RoadNetwork()
        net.add_junction(Point(0, 0))
        with pytest.raises(UnknownNodeError):
            net.add_segment(0, 99)

    def test_duplicate_sid_rejected(self):
        net = RoadNetwork()
        a = net.add_junction(Point(0, 0))
        b = net.add_junction(Point(10, 0))
        net.add_segment(a, b, sid=3)
        with pytest.raises(DuplicateSegmentError):
            net.add_segment(a, b, sid=3)

    def test_coincident_junctions_need_explicit_length(self):
        net = RoadNetwork()
        a = net.add_junction(Point(5, 5))
        b = net.add_junction(Point(5, 5))
        with pytest.raises(RoadNetworkError):
            net.add_segment(a, b)
        sid = net.add_segment(a, b, length=12.0)
        assert net.segment(sid).length == 12.0


class TestLookups:
    def test_unknown_segment(self, line3):
        with pytest.raises(UnknownSegmentError):
            line3.segment(99)

    def test_unknown_junction(self, line3):
        with pytest.raises(UnknownNodeError):
            line3.junction(99)

    def test_contains_and_len(self, line3):
        assert 0 in line3
        assert 99 not in line3
        assert len(line3) == 3

    def test_iteration_order(self, line3):
        assert [s.sid for s in line3.segments()] == [0, 1, 2]
        assert [j.node_id for j in line3.junctions()] == [0, 1, 2, 3]

    def test_bounds(self, line3):
        assert line3.bounds() == (0.0, 0.0, 300.0, 0.0)

    def test_total_length(self, line3):
        assert line3.total_length() == pytest.approx(300.0)

    def test_repr_mentions_counts(self, line3):
        assert "junctions=4" in repr(line3)
        assert "segments=3" in repr(line3)


class TestAdjacency:
    def test_incident_segments(self, star4):
        assert sorted(star4.incident_segments(0)) == [0, 1, 2, 3]
        assert star4.incident_segments(1) == [0]

    def test_degree(self, star4):
        assert star4.degree(0) == 4
        assert star4.degree(2) == 1

    def test_adjacent_segments_at_center(self, star4):
        assert sorted(star4.adjacent_segments_at(0, 0)) == [1, 2, 3]

    def test_adjacent_segments_at_dead_end_is_empty(self, star4):
        # L_n(e) = φ at a dead end (paper, Section II-A).
        assert star4.adjacent_segments_at(0, 1) == []

    def test_adjacent_segments_at_rejects_non_endpoint(self, star4):
        with pytest.raises(RoadNetworkError):
            star4.adjacent_segments_at(0, 2)

    def test_adjacent_segments_union(self, line3):
        # L(e1) = segments at node1 plus segments at node2.
        assert sorted(line3.adjacent_segments(1)) == [0, 2]

    def test_common_junction(self, line3):
        assert line3.common_junction(0, 1) == 1
        assert line3.common_junction(0, 2) is None

    def test_are_adjacent(self, line3):
        assert line3.are_adjacent(0, 1)
        assert not line3.are_adjacent(0, 2)
        assert not line3.are_adjacent(1, 1)

    def test_common_junction_parallel_edges(self):
        net = RoadNetwork()
        a = net.add_junction(Point(0, 0))
        b = net.add_junction(Point(100, 0))
        s1 = net.add_segment(a, b)
        s2 = net.add_segment(a, b, length=150.0)
        # Deterministic: the smaller node id is returned.
        assert net.common_junction(s1, s2) == a


class TestRoutes:
    def test_single_segment_is_route(self, line3):
        assert line3.is_route([0])
        assert not line3.is_route([99])

    def test_chain_is_route(self, line3):
        assert line3.is_route([0, 1, 2])

    def test_gap_is_not_route(self, line3):
        assert not line3.is_route([0, 2])

    def test_empty_is_not_route(self, line3):
        assert not line3.is_route([])

    def test_bounce_back_is_not_route(self, star4):
        # star segments 0 and 1 share the center; 0,1,0 revisits via the
        # same junction and segment and is rejected.
        assert not star4.is_route([0, 1, 0])


class TestDirectedView:
    def test_bidirectional_out_edges(self, line3):
        edges = line3.out_edges(1)
        assert {(e.tail, e.head) for e in edges} == {(1, 0), (1, 2)}

    def test_one_way_segment(self):
        net = RoadNetwork()
        a = net.add_junction(Point(0, 0))
        b = net.add_junction(Point(100, 0))
        net.add_segment(a, b, bidirectional=False)
        assert [(e.tail, e.head) for e in net.out_edges(a)] == [(a, b)]
        assert net.out_edges(b) == []

    def test_undirected_neighbors_ignore_direction(self):
        net = RoadNetwork()
        a = net.add_junction(Point(0, 0))
        b = net.add_junction(Point(100, 0))
        net.add_segment(a, b, bidirectional=False)
        assert [n for n, _sid, _len in net.undirected_neighbors(b)] == [a]


class TestGeometryHelpers:
    def test_segment_endpoints(self, line3):
        a, b = line3.segment_endpoints(1)
        assert (a, b) == (Point(100, 0), Point(200, 0))

    def test_point_on_segment_midpoint(self, line3):
        assert line3.point_on_segment(0, 50.0) == Point(50, 0)

    def test_point_on_segment_clamps(self, line3):
        assert line3.point_on_segment(0, -10.0) == Point(0, 0)
        assert line3.point_on_segment(0, 1e9) == Point(100, 0)
