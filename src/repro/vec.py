"""Optional numpy acceleration with a byte-identical stdlib fallback.

The hot Phase 3 bound kernels (:mod:`repro.core.bounds`) are written
twice: an array-native numpy fast path and a pure-Python loop.  This
module owns the choice between them:

* numpy is an *optional* dependency (the ``perf`` extra) — nothing in
  the package imports it unconditionally;
* the environment variable :data:`NO_NUMPY_ENV` forces the stdlib path
  even when numpy is installed (CI runs a leg with it set to keep the
  fallback honest);
* the ``vector_backend`` config knob (``auto`` / ``numpy`` / ``python``)
  resolves here, failing fast when ``numpy`` is requested but absent.

The contract both paths satisfy: *decision-identical* results.  Kernels
may use vectorized arithmetic internally, but any comparison whose
floating-point rounding could differ from the scalar code must be
re-checked with the exact scalar expression (see the guard-band pattern
in :func:`repro.core.bounds.elb_far_mask`), so clusters and every
determinism counter are byte-identical with and without numpy.
"""

from __future__ import annotations

import os

from .errors import ConfigError

#: Set (to any non-empty value) to pretend numpy is not installed.
NO_NUMPY_ENV = "REPRO_NO_NUMPY"

#: Accepted ``vector_backend`` settings.
VECTOR_BACKENDS = ("auto", "numpy", "python")


def get_numpy():
    """The numpy module, or ``None`` when absent or disabled.

    Honors :data:`NO_NUMPY_ENV` so tests and CI can exercise the stdlib
    fallback on machines that do have numpy installed.
    """
    if os.environ.get(NO_NUMPY_ENV):
        return None
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def resolve_vector_backend(setting: str = "auto") -> str:
    """Resolve a ``vector_backend`` setting to ``"numpy"`` or ``"python"``.

    ``auto`` picks numpy when importable (and not disabled), else the
    stdlib loops.  Requesting ``numpy`` explicitly raises
    :class:`~repro.errors.ConfigError` when it cannot be honored, rather
    than silently degrading.
    """
    if setting not in VECTOR_BACKENDS:
        raise ConfigError(
            f"vector_backend must be one of {VECTOR_BACKENDS}, got {setting!r}"
        )
    if setting == "python":
        return "python"
    numpy = get_numpy()
    if numpy is not None:
        return "numpy"
    if setting == "numpy":
        raise ConfigError(
            "vector_backend='numpy' but numpy is not importable "
            f"(or disabled via {NO_NUMPY_ENV}); install the 'perf' extra"
        )
    return "python"
