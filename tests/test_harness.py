"""Unit tests for the experiment harness helpers."""

from __future__ import annotations

import pytest

from repro.experiments.harness import banner, format_seconds, format_table, timed


class TestTimed:
    def test_returns_result_and_duration(self):
        result, seconds = timed(lambda: sum(range(1000)))
        assert result == 499500
        assert seconds >= 0.0


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("a", "bbb"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("-")
        # All rows the same width.
        assert len({len(line) for line in lines}) == 1

    def test_cells_stringified(self):
        text = format_table(("x",), [(1.5,), (None,)])
        assert "1.5" in text and "None" in text


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "value,expected",
        [(0.001, "1.00ms"), (0.5, "0.500s"), (42.0, "42.0s")],
    )
    def test_ranges(self, value, expected):
        assert format_seconds(value) == expected


class TestBanner:
    def test_contains_title(self):
        text = banner("Table I")
        assert "Table I" in text
        assert "=" in text
