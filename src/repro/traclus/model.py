"""Data types for the TraClus baseline (Lee et al., SIGMOD'07).

TraClus operates on *line segments* obtained by partitioning trajectories
at characteristic points, then groups them with a DBSCAN-style pass under
a three-component Euclidean distance.  These types are deliberately
independent from the NEAT core model: TraClus is road-network-oblivious,
so its segments are plain geometry plus the owning trajectory id.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..roadnet.geometry import Point


@dataclass(frozen=True, slots=True)
class LineSegment:
    """A directed trajectory line segment between two characteristic points.

    Attributes:
        trid: Identifier of the trajectory this segment was cut from.
        start: Segment start point.
        end: Segment end point.
    """

    trid: int
    start: Point
    end: Point

    @property
    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.start.distance_to(self.end)


@dataclass(frozen=True)
class SegmentCluster:
    """One TraClus cluster: a set of line segments plus its representative.

    Attributes:
        cluster_id: Dense 0-based cluster identifier.
        segments: Member line segments.
        representative: The representative trajectory (polyline) computed
            by the sweep of Lee et al., Section 4.3; may be empty when the
            sweep finds fewer than two valid average points.
    """

    cluster_id: int
    segments: tuple[LineSegment, ...]
    representative: tuple[Point, ...]

    @property
    def trajectory_cardinality(self) -> int:
        """Number of distinct trajectories contributing segments."""
        return len({segment.trid for segment in self.segments})

    @property
    def representative_length(self) -> float:
        """Length of the representative polyline in metres."""
        points = self.representative
        return sum(points[i].distance_to(points[i + 1]) for i in range(len(points) - 1))

    def __len__(self) -> int:
        return len(self.segments)
