"""TraClus Phase 2: DBSCAN-style grouping of line segments.

Lee et al. (SIGMOD'07), Section 4.2: line segments are clustered with a
density-based pass — a segment is a core segment when at least ``min_lns``
segments (itself included) lie within ``eps`` under the three-component
segment distance.  The region query is a linear scan, making grouping
O(n^2) in the number of segments; this quadratic cost is precisely what
the NEAT paper's Figure 5(d) measures against NEAT's linear-ish phases.

An optional uniform grid over segment midpoints prunes the scan without
changing results (candidates are pre-filtered by a conservative radius),
which keeps our benchmark sweeps tractable at larger sizes while leaving
the asymptotic comparison honest — the paper's own TraClus used an R-tree
in the same spirit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cluster.dbscan import clusters_from_labels, dbscan
from .distance import segment_distance
from .model import LineSegment, SegmentCluster
from .representative import representative_trajectory


@dataclass(frozen=True, slots=True)
class TraClusParams:
    """TraClus tuning parameters.

    Attributes:
        eps: Segment-distance neighbourhood radius (the paper sweeps
            1-50 m on ATL500).
        min_lns: Minimum segments per neighbourhood / sweep position.
        gamma: Representative-trajectory smoothing distance in metres.
        use_grid_filter: Prune region queries with a midpoint grid.  Safe:
            a segment pair within ``eps`` under the TraClus distance always
            passes the conservative midpoint pre-filter.
    """

    eps: float = 10.0
    min_lns: int = 3
    gamma: float = 25.0
    use_grid_filter: bool = True


class _MidpointGrid:
    """Conservative candidate filter keyed on segment midpoints.

    If ``segment_distance(a, b) <= eps`` then the midpoints of ``a`` and
    ``b`` are within ``eps + (len(a) + len(b)) / 2``; indexing by midpoint
    with a query radius of ``eps + max_len`` therefore never drops a true
    neighbour.
    """

    def __init__(self, segments: list[LineSegment], eps: float) -> None:
        max_len = max((s.length for s in segments), default=0.0)
        self.radius = eps + max_len
        self.cell = max(self.radius, 1.0)
        self._cells: dict[tuple[int, int], list[int]] = {}
        self._midpoints = []
        for index, segment in enumerate(segments):
            mid = segment.start.midpoint(segment.end)
            self._midpoints.append(mid)
            key = (math.floor(mid.x / self.cell), math.floor(mid.y / self.cell))
            self._cells.setdefault(key, []).append(index)

    def candidates(self, index: int) -> list[int]:
        mid = self._midpoints[index]
        cx, cy = math.floor(mid.x / self.cell), math.floor(mid.y / self.cell)
        found: list[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                found.extend(self._cells.get((cx + dx, cy + dy), ()))
        return found


def group_segments(
    segments: list[LineSegment], params: TraClusParams
) -> list[SegmentCluster]:
    """Cluster line segments and compute their representatives.

    Returns clusters with at least one member, ordered by discovery.
    Per Lee et al., clusters whose *trajectory cardinality* is below
    ``min_lns`` are discarded as insufficiently supported.
    """
    if not segments:
        return []
    grid = _MidpointGrid(segments, params.eps) if params.use_grid_filter else None

    def region_query(index: int) -> list[int]:
        pool = grid.candidates(index) if grid is not None else range(len(segments))
        me = segments[index]
        return [
            other
            for other in pool
            if other != index and segment_distance(me, segments[other]) <= params.eps
        ]

    labels = dbscan(len(segments), region_query, params.min_lns)
    clusters: list[SegmentCluster] = []
    for indices in clusters_from_labels(labels):
        members = tuple(segments[i] for i in indices)
        cardinality = len({m.trid for m in members})
        if cardinality < params.min_lns:
            continue
        representative = representative_trajectory(
            list(members), params.min_lns, params.gamma
        )
        clusters.append(SegmentCluster(len(clusters), members, representative))
    return clusters
