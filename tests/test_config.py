"""Unit tests for NEAT configuration validation and presets."""

from __future__ import annotations

import math

import pytest

from repro.core.config import (
    NEATConfig,
    PRESET_BALANCED,
    PRESET_DENSEST,
    PRESET_FASTEST,
    PRESET_MAX_FLOW,
    PRESET_TRAFFIC_MONITORING,
)
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_valid(self):
        config = NEATConfig()
        assert config.wq + config.wk + config.wv == pytest.approx(1.0)
        assert math.isinf(config.beta)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            NEATConfig(wq=0.5, wk=0.5, wv=0.5)

    def test_weights_must_be_non_negative(self):
        with pytest.raises(ConfigError):
            NEATConfig(wq=-0.5, wk=1.0, wv=0.5)

    def test_beta_must_exceed_one(self):
        with pytest.raises(ConfigError):
            NEATConfig(beta=1.0)
        with pytest.raises(ConfigError):
            NEATConfig(beta=0.5)

    def test_min_card_non_negative(self):
        with pytest.raises(ConfigError):
            NEATConfig(min_card=-1)

    def test_eps_non_negative(self):
        with pytest.raises(ConfigError):
            NEATConfig(eps=-1.0)

    def test_min_pts_at_least_one(self):
        with pytest.raises(ConfigError):
            NEATConfig(min_pts=0)


class TestCopies:
    def test_with_weights(self):
        config = NEATConfig().with_weights(0.5, 0.5, 0.0)
        assert (config.wq, config.wk, config.wv) == (0.5, 0.5, 0.0)

    def test_with_eps(self):
        assert NEATConfig().with_eps(123.0).eps == 123.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            NEATConfig().eps = 5.0  # type: ignore[misc]


class TestPresets:
    @pytest.mark.parametrize(
        "preset,weights",
        [
            (PRESET_BALANCED, (1 / 3, 1 / 3, 1 / 3)),
            (PRESET_DENSEST, (0.0, 1.0, 0.0)),
            (PRESET_FASTEST, (0.0, 0.0, 1.0)),
            (PRESET_TRAFFIC_MONITORING, (0.5, 0.5, 0.0)),
            (PRESET_MAX_FLOW, (1.0, 0.0, 0.0)),
        ],
    )
    def test_preset_weights_match_paper(self, preset, weights):
        assert (preset.wq, preset.wk, preset.wv) == pytest.approx(weights)
