"""Time-varying travel demand: multi-window trace generation.

The basic simulator emits one burst of departures (Section IV-A's
single ``start_window``).  Real traffic has *demand profiles* — a morning
rush, a midday lull, an evening rush with reversed flows.  This module
composes the simulator over a sequence of demand windows, offsetting
departure times per window and keeping trajectory ids contiguous, so the
time-sliced clustering tools (:mod:`repro.core.timeslice`) have realistic
input.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.model import Location, Trajectory, TrajectoryDataset
from ..roadnet.network import RoadNetwork
from .simulator import SimulationConfig, simulate_dataset


@dataclass(frozen=True, slots=True)
class DemandWindow:
    """One demand window: how many objects depart in ``[start, end)``.

    Attributes:
        start: Window start in seconds.
        end: Window end in seconds (departures are uniform inside).
        object_count: Objects departing within the window.
        seed_offset: Added to the profile seed, so each window draws its
            own hotspot layout when ``reshuffle_layout`` is set (an
            evening rush is the morning's mirror, not its replay).
    """

    start: float
    end: float
    object_count: int
    seed_offset: int = 0

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty demand window [{self.start}, {self.end})")
        if self.object_count < 0:
            raise ValueError("object_count must be >= 0")


@dataclass(frozen=True, slots=True)
class DemandProfile:
    """A day (or any horizon) of demand windows.

    Attributes:
        windows: The demand windows in time order (may not overlap).
        seed: Base seed for the whole profile.
        sample_interval: GPS sampling period for every window.
        reshuffle_layout: When ``True`` each window gets its own hotspot/
            destination layout (demand direction changes over the day);
            when ``False`` all windows share the base layout.
    """

    windows: tuple[DemandWindow, ...]
    seed: int = 23
    sample_interval: float = 10.0
    reshuffle_layout: bool = True

    def __post_init__(self) -> None:
        for earlier, later in zip(self.windows, self.windows[1:]):
            if later.start < earlier.end:
                raise ValueError(
                    f"demand windows overlap at t={later.start}"
                )

    @classmethod
    def commuter_day(
        cls,
        peak_objects: int = 200,
        offpeak_objects: int = 40,
        window_seconds: float = 3600.0,
        seed: int = 23,
    ) -> "DemandProfile":
        """A canonical three-window day: rush, lull, reverse rush."""
        w = window_seconds
        return cls(
            windows=(
                DemandWindow(0.0, w, peak_objects, seed_offset=0),
                DemandWindow(w, 2 * w, offpeak_objects, seed_offset=1),
                DemandWindow(2 * w, 3 * w, peak_objects, seed_offset=2),
            ),
            seed=seed,
        )

    @property
    def total_objects(self) -> int:
        """Objects across all windows."""
        return sum(window.object_count for window in self.windows)


def simulate_demand(
    network: RoadNetwork, profile: DemandProfile, name: str = "demand"
) -> TrajectoryDataset:
    """Generate one dataset covering every demand window.

    Trajectory ids are contiguous across windows; each trajectory's
    timestamps fall inside (or start inside) its window.
    """
    trajectories: list[Trajectory] = []
    for index, window in enumerate(profile.windows):
        if window.object_count == 0:
            continue
        seed = profile.seed + (window.seed_offset if profile.reshuffle_layout else 0)
        config = SimulationConfig(
            object_count=window.object_count,
            sample_interval=profile.sample_interval,
            start_window=window.end - window.start,
            seed=seed * 7919 + (index if profile.reshuffle_layout else 0),
            name=f"{name}-w{index}",
        )
        window_dataset = simulate_dataset(network, config)
        for trajectory in window_dataset:
            shifted = Trajectory(
                len(trajectories),
                tuple(
                    Location(
                        loc.sid, loc.x, loc.y, loc.t + window.start, loc.node_id
                    )
                    for loc in trajectory.locations
                ),
            )
            trajectories.append(shifted)
    return TrajectoryDataset(
        name=name,
        trajectories=tuple(trajectories),
        network_name=network.name,
        metadata={
            "windows": len(profile.windows),
            "total_objects": profile.total_objects,
            "seed": profile.seed,
        },
    )
