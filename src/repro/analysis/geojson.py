"""GeoJSON export of networks, trajectories and clustering results.

GeoJSON (RFC 7946) is the lingua franca of GIS tooling; exporting to it
lets NEAT's output drop straight into QGIS/kepler.gl/deck.gl.  All
geometry in this library is planar metres in a local projected frame, so
the documents declare no CRS; consumers reproject as needed (RFC 7946
technically mandates WGS84 — for synthetic maps the planar frame is the
only meaningful one, and every GIS accepts it).

Feature properties carry the clustering semantics: flows have their
cardinality, route length and member segments; final clusters nest their
flow ids; network segments carry class and speed limit.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

from ..core.flow_cluster import FlowCluster
from ..core.model import Trajectory
from ..core.refinement import TrajectoryCluster
from ..roadnet.network import RoadNetwork


def _feature(geometry: dict, properties: dict) -> dict[str, Any]:
    return {"type": "Feature", "geometry": geometry, "properties": properties}


def _line(points) -> dict[str, Any]:
    return {
        "type": "LineString",
        "coordinates": [[round(p.x, 2), round(p.y, 2)] for p in points],
    }


def network_geojson(network: RoadNetwork) -> dict[str, Any]:
    """The road network as a FeatureCollection of segment LineStrings."""
    features = []
    for segment in network.segments():
        a, b = network.segment_endpoints(segment.sid)
        features.append(
            _feature(
                _line((a, b)),
                {
                    "sid": segment.sid,
                    "road_class": segment.road_class,
                    "speed_limit": segment.speed_limit,
                    "length_m": round(segment.length, 2),
                    "bidirectional": segment.bidirectional,
                },
            )
        )
    return {"type": "FeatureCollection", "features": features}


def trajectories_geojson(trajectories: Sequence[Trajectory]) -> dict[str, Any]:
    """Trajectories as LineStrings with per-trip timing properties."""
    features = []
    for trajectory in trajectories:
        features.append(
            _feature(
                _line([location.point for location in trajectory.locations]),
                {
                    "trid": trajectory.trid,
                    "samples": len(trajectory),
                    "start_t": trajectory.start.t,
                    "end_t": trajectory.end.t,
                },
            )
        )
    return {"type": "FeatureCollection", "features": features}


def flows_geojson(
    network: RoadNetwork, flows: Sequence[FlowCluster]
) -> dict[str, Any]:
    """Flow clusters as LineStrings along their representative routes."""
    features = []
    for index, flow in enumerate(flows):
        points = [network.node_point(node) for node in flow.route_nodes()]
        features.append(
            _feature(
                _line(points),
                {
                    "flow": index,
                    "segments": list(flow.sids),
                    "cardinality": flow.trajectory_cardinality,
                    "density": flow.density,
                    "route_length_m": round(flow.route_length, 2),
                },
            )
        )
    return {"type": "FeatureCollection", "features": features}


def clusters_geojson(
    network: RoadNetwork, clusters: Sequence[TrajectoryCluster]
) -> dict[str, Any]:
    """Final clusters as MultiLineStrings (one line per member flow)."""
    features = []
    for cluster in clusters:
        lines = []
        for flow in cluster.flows:
            points = [network.node_point(node) for node in flow.route_nodes()]
            lines.append([[round(p.x, 2), round(p.y, 2)] for p in points])
        features.append(
            _feature(
                {"type": "MultiLineString", "coordinates": lines},
                {
                    "cluster": cluster.cluster_id,
                    "flows": len(cluster.flows),
                    "cardinality": cluster.trajectory_cardinality,
                    "total_route_m": round(cluster.total_route_length, 2),
                },
            )
        )
    return {"type": "FeatureCollection", "features": features}


def save_geojson(document: dict[str, Any], path: str | Path) -> Path:
    """Write a GeoJSON document to disk and return the path."""
    target = Path(path)
    target.write_text(json.dumps(document))
    return target
