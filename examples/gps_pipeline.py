#!/usr/bin/env python3
"""The full field pipeline: raw GPS fixes -> map matching -> NEAT.

The paper assumes map-matched input and cites SLAMM [14] for the
preprocessing.  This example shows the whole chain a deployment would
run: ground-truth traces are degraded into noisy GPS fixes, the SLAMM
matcher snaps them back onto the network, and NEAT clusters the result.
It then quantifies how much the noise perturbed the clustering.

Run:  python examples/gps_pipeline.py
"""

from repro.core import NEAT, NEATConfig
from repro.mapmatch import MatchConfig, SlammMatcher
from repro.mobisim import SimulationConfig, degrade_dataset, simulate_dataset
from repro.roadnet import atlanta_like

GPS_SIGMA = 5.0  # metres; typical consumer GPS

network = atlanta_like(scale=0.1)
dataset = simulate_dataset(
    network, SimulationConfig(object_count=300, sample_interval=5.0, name="field")
)
print(f"Ground truth: {len(dataset)} trajectories, {dataset.total_points} points")

# 1. Degrade to raw GPS (strip segment ids, add Gaussian noise).
raw_traces = degrade_dataset(dataset, sigma=GPS_SIGMA, seed=13)

# 2. Map-match back onto the network.
matcher = SlammMatcher(network, MatchConfig(sigma=GPS_SIGMA, lookahead=3))
matched = []
correct = total = 0
for truth, raw in zip(dataset, raw_traces):
    trajectory = matcher.match_trace(raw)
    matched.append(trajectory)
    for a, b in zip(truth.locations, trajectory.locations):
        total += 1
        correct += a.sid == b.sid
print(f"Map matching: {100.0 * correct / total:.1f}% of samples on the true segment")

# 3. Cluster both the ground truth and the matched traces.
config = NEATConfig(eps=800.0)
clean = NEAT(network, config).run_opt(dataset)
noisy = NEAT(network, config).run_opt(matched)

print(f"\nGround-truth clustering: {clean.summary()}")
print(f"Matched-GPS clustering:  {noisy.summary()}")

# 4. How similar are the discovered flows?  Compare segment coverage.
clean_segments = {sid for flow in clean.flows for sid in flow.sids}
noisy_segments = {sid for flow in noisy.flows for sid in flow.sids}
overlap = clean_segments & noisy_segments
union = clean_segments | noisy_segments
print(
    f"\nFlow segment agreement (Jaccard): {len(overlap)}/{len(union)} "
    f"= {len(overlap) / len(union):.2f}"
)
print(
    "Interpretation: NEAT's junction-based fragmentation absorbs GPS noise "
    "as long as map matching assigns the right segment, because fragments "
    "snap to whole road segments rather than raw coordinates."
)
