"""Tests for the bench trend ledger and the regression gate extensions.

The benchmark helpers live outside the package (``benchmarks/``), so the
modules are loaded by path; the tests exercise them exactly the way CI
does — append artifacts, verify, render the trend, gate a current
artifact against the ledger.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, BENCH_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def bench_history():
    return _load("bench_history")


@pytest.fixture(scope="module")
def check_perf():
    return _load("check_perf_regression")


def write_artifact(directory: Path, name: str, document: dict) -> Path:
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(document))
    return path


class TestLedger:
    def test_append_round_trips(self, bench_history, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        artifact = write_artifact(
            tmp_path, "sp_core", {"network": "ATL", "objects": 40, "score": 2.5}
        )
        entry = bench_history.append_entry(artifact, path=ledger)
        assert entry["bench"] == "sp_core"
        assert entry["workload"] == "ATL/objects=40"
        assert entry["metrics"]["score"] == 2.5
        (loaded,) = bench_history.load_ledger(ledger)
        assert loaded == entry

    def test_append_is_append_only(self, bench_history, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        artifact = write_artifact(tmp_path, "x", {"v": 1})
        bench_history.append_entry(artifact, path=ledger)
        artifact.write_text(json.dumps({"v": 2}))
        bench_history.append_entry(artifact, path=ledger)
        first, second = bench_history.load_ledger(ledger)
        assert first["metrics"]["v"] == 1
        assert second["metrics"]["v"] == 2

    def test_latest_picks_newest_matching(self, bench_history, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        artifact = write_artifact(tmp_path, "x", {"v": 1})
        bench_history.append_entry(artifact, workload="small", path=ledger)
        artifact.write_text(json.dumps({"v": 2}))
        bench_history.append_entry(artifact, workload="small", path=ledger)
        artifact.write_text(json.dumps({"v": 3}))
        bench_history.append_entry(artifact, workload="large", path=ledger)
        assert bench_history.latest_entry("x", path=ledger)["metrics"]["v"] == 3
        assert (
            bench_history.latest_entry("x", workload="small", path=ledger)
            ["metrics"]["v"] == 2
        )
        assert bench_history.latest_entry("missing", path=ledger) is None

    def test_profile_labels_and_filters(self, bench_history, tmp_path):
        # Profile-labeled entries form separate baseline series: a lookup
        # scoped to one ladder rung never sees another rung's runs.
        ledger = tmp_path / "ledger.jsonl"
        artifact = write_artifact(tmp_path, "x", {"v": 1})
        bench_history.append_entry(artifact, profile="small", path=ledger)
        artifact.write_text(json.dumps({"v": 2}))
        bench_history.append_entry(artifact, profile="stress", path=ledger)
        artifact.write_text(json.dumps({"v": 3}))
        bench_history.append_entry(artifact, path=ledger)  # unlabeled

        small = bench_history.latest_entry("x", profile="small", path=ledger)
        stress = bench_history.latest_entry("x", profile="stress", path=ledger)
        assert small["metrics"]["v"] == 1 and small["profile"] == "small"
        assert stress["metrics"]["v"] == 2
        # Unfiltered lookups still see everything (newest wins) and the
        # unlabeled entry carries no profile field at all.
        newest = bench_history.latest_entry("x", path=ledger)
        assert newest["metrics"]["v"] == 3 and "profile" not in newest
        assert (
            bench_history.latest_entry("x", profile="medium", path=ledger)
            is None
        )

    def test_report_splits_series_per_profile(self, bench_history, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        artifact = write_artifact(tmp_path, "x", {"network": "ATL", "v": 1})
        bench_history.append_entry(artifact, profile="small", path=ledger)
        bench_history.append_entry(artifact, profile="stress", path=ledger)
        report = bench_history.render_report(bench_history.load_ledger(ledger))
        assert "## x (ATL, profile small)" in report
        assert "## x (ATL, profile stress)" in report

    def test_bench_name_requires_convention(self, bench_history, tmp_path):
        rogue = tmp_path / "results.json"
        rogue.write_text("{}")
        with pytest.raises(ValueError):
            bench_history.append_entry(rogue, path=tmp_path / "ledger.jsonl")

    def test_workload_key_falls_back_to_sections(self, bench_history):
        nested = {"microbench": {"network": "MIA", "queries": 40}}
        assert bench_history.workload_key(nested) == "MIA/queries=40"
        assert bench_history.workload_key({}) == "default"

    def test_load_rejects_malformed_lines(self, bench_history, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        ledger.write_text('{"bench": "x"}\n')
        with pytest.raises(ValueError, match="missing fields"):
            bench_history.load_ledger(ledger)
        ledger.write_text("not json\n")
        with pytest.raises(ValueError, match="not JSON"):
            bench_history.load_ledger(ledger)


class TestVerify:
    def test_empty_ledger_fails(self, bench_history, tmp_path):
        problems = bench_history.verify(tmp_path / "missing.jsonl")
        assert problems

    def test_requires_every_known_bench(self, bench_history, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        artifact = write_artifact(tmp_path, "sp_core", {"v": 1})
        bench_history.append_entry(artifact, path=ledger)
        problems = bench_history.verify(ledger)
        missing = {b for b in bench_history.KNOWN_BENCHES if b != "sp_core"}
        assert len(problems) == len(missing)
        for bench in missing:
            assert any(bench in line for line in problems)

    def test_committed_ledger_is_healthy(self, bench_history):
        # The real, committed ledger must satisfy its own CI gate.
        assert bench_history.verify() == []
        entries = bench_history.load_ledger()
        assert {e["bench"] for e in entries} >= set(bench_history.KNOWN_BENCHES)


class TestReport:
    def test_trend_deltas_between_entries(self, bench_history, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        artifact = write_artifact(tmp_path, "x", {"network": "ATL", "score": 100})
        bench_history.append_entry(artifact, path=ledger)
        artifact.write_text(json.dumps({"network": "ATL", "score": 110}))
        bench_history.append_entry(artifact, path=ledger)
        report = bench_history.render_report(bench_history.load_ledger(ledger))
        assert "## x (ATL)" in report
        assert "110 (+10.0%)" in report

    def test_nested_sections_get_columns(self, bench_history, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        artifact = write_artifact(
            tmp_path, "x", {"inner": {"network": "ATL", "speedup": 2.0}}
        )
        bench_history.append_entry(artifact, path=ledger)
        report = bench_history.render_report(bench_history.load_ledger(ledger))
        assert "inner.speedup" in report

    def test_empty_and_filtered(self, bench_history):
        assert "No ledger entries" in bench_history.render_report([])
        assert "nope" in bench_history.render_report([], bench="nope")


class TestRegressionGate:
    def test_history_baseline(self, bench_history, check_perf, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        artifact = write_artifact(tmp_path, "x", {"count": 100})
        bench_history.append_entry(artifact, path=ledger)
        current = tmp_path / "current.json"
        current.write_text(json.dumps({"count": 105}))
        assert check_perf.main([
            "--history", str(ledger), "--bench", "x",
            "--current", str(current), "--key", "count",
        ]) == 0
        current.write_text(json.dumps({"count": 150}))
        assert check_perf.main([
            "--history", str(ledger), "--bench", "x",
            "--current", str(current), "--key", "count",
        ]) == 1

    def test_key_max_ceiling(self, check_perf, tmp_path):
        current = tmp_path / "current.json"
        current.write_text(json.dumps({"overhead_pct": 1.4}))
        assert check_perf.main([
            "--current", str(current), "--key-max", "overhead_pct=2.0",
        ]) == 0
        assert check_perf.main([
            "--current", str(current), "--key-max", "overhead_pct=1.0",
        ]) == 1
        assert check_perf.main([
            "--current", str(current), "--key-max", "missing=1.0",
        ]) == 1

    def test_history_baseline_scoped_by_profile(
        self, bench_history, check_perf, tmp_path
    ):
        # A stress smoke appended after a small run must not become the
        # small gate's baseline: --profile restricts the ledger lookup.
        ledger = tmp_path / "ledger.jsonl"
        artifact = write_artifact(tmp_path, "x", {"count": 100})
        bench_history.append_entry(artifact, profile="small", path=ledger)
        artifact.write_text(json.dumps({"count": 4000}))
        bench_history.append_entry(artifact, profile="stress", path=ledger)
        current = tmp_path / "current.json"
        current.write_text(json.dumps({"count": 105}))
        assert check_perf.main([
            "--history", str(ledger), "--bench", "x", "--profile", "small",
            "--current", str(current), "--key", "count",
        ]) == 0
        current.write_text(json.dumps({"count": 150}))
        assert check_perf.main([
            "--history", str(ledger), "--bench", "x", "--profile", "small",
            "--current", str(current), "--key", "count",
        ]) == 1
        # No entry for the requested rung: the gate refuses to guess.
        with pytest.raises(SystemExit):
            check_perf.main([
                "--history", str(ledger), "--bench", "x",
                "--profile", "medium",
                "--current", str(current), "--key", "count",
            ])

    def test_argument_validation(self, check_perf, tmp_path):
        current = tmp_path / "current.json"
        current.write_text("{}")
        with pytest.raises(SystemExit):
            check_perf.main(["--current", str(current)])  # nothing to check
        with pytest.raises(SystemExit):
            check_perf.main([  # --key without any baseline source
                "--current", str(current), "--key", "a",
            ])
        with pytest.raises(SystemExit):
            check_perf.main([  # --history without --bench
                "--current", str(current), "--key", "a",
                "--history", str(current),
            ])
        with pytest.raises(SystemExit):
            check_perf.main([  # --profile only scopes ledger baselines
                "--current", str(current), "--key-max", "a=1.0",
                "--profile", "small",
            ])
