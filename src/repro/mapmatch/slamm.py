"""Selective look-ahead map matching (SLAMM-style).

Implements the bulk map matcher the paper uses for preprocessing ([14],
Weber et al., GIS'10): each raw GPS fix is snapped to a road segment using
a cost that combines projection distance, heading agreement and network
connectivity with the previous match, and — the "selective look-ahead" —
when the top candidates are ambiguous, the matcher peeks at the next few
fixes and picks the candidate whose continuation explains them best.  This
catches the classic failure of greedy matchers on nearby parallel roads,
exactly the error class the paper cites SLAMM for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.model import Location, Trajectory
from ..errors import MapMatchError
from ..roadnet.geometry import Point, angle_between, heading
from ..roadnet.network import RoadNetwork
from ..roadnet.spatial_index import SegmentGridIndex
from .candidates import Candidate, CandidateFinder


@dataclass(frozen=True, slots=True)
class MatchConfig:
    """Tuning knobs of the SLAMM matcher.

    Attributes:
        sigma: Expected GPS noise standard deviation in metres; projection
            distances are scored in units of sigma.
        heading_weight: Weight of the heading-mismatch term.
        connectivity_weight: Weight of the network-connectivity term.
        lookahead: Number of future fixes examined when the best two
            candidates score within ``ambiguity_margin`` of each other.
        ambiguity_margin: Score gap under which look-ahead triggers.
        min_heading_displacement: Fix-to-fix displacement in metres below
            which headings are considered unreliable and skipped.
    """

    sigma: float = 5.0
    heading_weight: float = 1.0
    connectivity_weight: float = 2.0
    lookahead: int = 3
    ambiguity_margin: float = 1.0
    min_heading_displacement: float = 2.0


class SlammMatcher:
    """Matches raw GPS traces onto a road network.

    Args:
        network: Road network to match against.
        config: Matcher tuning parameters.
        index: Optional pre-built spatial index to share across matchers.
    """

    def __init__(
        self,
        network: RoadNetwork,
        config: MatchConfig | None = None,
        index: SegmentGridIndex | None = None,
    ) -> None:
        self._network = network
        self.config = config if config is not None else MatchConfig()
        self._finder = CandidateFinder(network, index=index)

    # ------------------------------------------------------------------
    def match_fixes(
        self, trid: int, fixes: list[tuple[float, float, float]]
    ) -> Trajectory:
        """Match ``(x, y, t)`` fixes and return a network-aware trajectory.

        Each output location carries the matched segment id and the
        position snapped onto that segment.

        Raises:
            MapMatchError: when a fix has no candidate segment within the
                finder's maximum radius.
        """
        if len(fixes) < 2:
            raise MapMatchError(f"trace {trid}: needs at least 2 fixes")
        points = [Point(x, y) for x, y, _t in fixes]
        candidate_lists = [self._finder.candidates(p) for p in points]
        for i, candidates in enumerate(candidate_lists):
            if not candidates:
                raise MapMatchError(
                    f"trace {trid}: fix {i} at {points[i]} matches no segment"
                )

        matched: list[Candidate] = []
        previous_sid: int | None = None
        for i in range(len(fixes)):
            chosen = self._choose(i, points, candidate_lists, previous_sid)
            matched.append(chosen)
            previous_sid = chosen.sid

        locations = tuple(
            Location(c.sid, c.snapped.x, c.snapped.y, fixes[i][2])
            for i, c in enumerate(matched)
        )
        return Trajectory(trid, locations)

    def match_trace(self, trace) -> Trajectory:
        """Match a :class:`~repro.mobisim.noise.RawTrace`."""
        return self.match_fixes(
            trace.trid, [(f.x, f.y, f.t) for f in trace.fixes]
        )

    # ------------------------------------------------------------------
    def _choose(
        self,
        index: int,
        points: list[Point],
        candidate_lists: list[list[Candidate]],
        previous_sid: int | None,
    ) -> Candidate:
        """Pick the candidate for fix ``index``, using look-ahead if needed."""
        candidates = candidate_lists[index]
        scored = sorted(
            candidates,
            key=lambda c: (self._score(c, index, points, previous_sid), c.sid),
        )
        if len(scored) == 1:
            return scored[0]
        best, second = scored[0], scored[1]
        gap = self._score(second, index, points, previous_sid) - self._score(
            best, index, points, previous_sid
        )
        if gap >= self.config.ambiguity_margin:
            return best
        # Ambiguous: look ahead and keep the candidate whose greedy
        # continuation over the next fixes is cheapest.
        horizon = min(index + self.config.lookahead, len(points) - 1)
        contenders = [c for c in scored[:3]]
        best_candidate = contenders[0]
        best_total = math.inf
        for contender in contenders:
            total = self._score(contender, index, points, previous_sid)
            prev = contender.sid
            for j in range(index + 1, horizon + 1):
                step_scores = [
                    self._score(c, j, points, prev) for c in candidate_lists[j]
                ]
                k = min(range(len(step_scores)), key=step_scores.__getitem__)
                total += step_scores[k]
                prev = candidate_lists[j][k].sid
            if total < best_total:
                best_total = total
                best_candidate = contender
        return best_candidate

    def _score(
        self,
        candidate: Candidate,
        index: int,
        points: list[Point],
        previous_sid: int | None,
    ) -> float:
        """Cost of matching fix ``index`` to ``candidate``; lower is better."""
        config = self.config
        cost = candidate.distance / max(config.sigma, 1e-9)
        if previous_sid is not None:
            cost += config.connectivity_weight * self._hops(
                previous_sid, candidate.sid
            )
        if index > 0:
            displacement = points[index - 1].distance_to(points[index])
            if displacement >= config.min_heading_displacement:
                fix_heading = heading(points[index - 1], points[index])
                a, b = self._network.segment_endpoints(candidate.sid)
                seg_heading = heading(a, b)
                mismatch = angle_between(fix_heading, seg_heading)
                # A bidirectional segment can be driven either way.
                if self._network.segment(candidate.sid).bidirectional:
                    mismatch = min(mismatch, math.pi - mismatch)
                cost += config.heading_weight * (mismatch / (math.pi / 2.0))
        return cost

    def _hops(self, sid_from: int, sid_to: int) -> float:
        """Connectivity penalty: 0 same segment, 1 adjacent, 2 otherwise."""
        if sid_from == sid_to:
            return 0.0
        if self._network.are_adjacent(sid_from, sid_to):
            return 1.0
        return 2.0
