"""Grid definition: ``tune_grid.yaml`` loading, expansion and scoring.

The committed grid document has three sections::

    base:                 # NEATConfig fields shared by every combination
      min_card: 0
    grid:                 # axes; the cartesian product is the sweep
      weights:            # (wq, wk, wv) triples applied together
        - [0.5, 0.5, 0.0]
      eps_scale: [0.5, 1.0, 2.0]   # multiplies the region's base eps
      use_llb: [false, true]
    objective:
      minimize: total_s   # any numeric field of a sweep row
      guardrails:         # min_<field> / max_<field> bounds; a config
        min_clusters: 1   # violating any bound is disqualified
        min_trajectory_coverage: 0.25

Axis names are :class:`~repro.core.config.NEATConfig` fields plus two
conveniences — ``weights`` (a three-item list applied to ``wq/wk/wv``
together, so the sum-to-1 invariant survives the product) and
``eps_scale`` (a multiplier on the base ``eps`` resolved per region, so
one grid serves networks of different extents).

Expansion is deterministic: axes are ordered by name, values keep their
listed order, and the product enumerates the last axis fastest.  Ties on
the objective resolve to the earliest grid index, so a re-run of the same
sweep always elects the same winner.

The loader prefers PyYAML but falls back to a minimal stdlib parser
covering exactly the subset above (nested mappings, block and inline
lists, scalars) so the sweep runs on bare-stdlib installs too.
"""

from __future__ import annotations

import itertools
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..core.config import NEATConfig
from ..errors import ConfigError

#: Per-region base eps (metres) when neither the grid's ``base`` section
#: nor an absolute ``eps`` axis pins one — mirrors the figure harness.
REGION_BASE_EPS = {"ATL": 800.0, "SJ": 800.0, "MIA": 1000.0}


# --------------------------------------------------------------------------
# Loading


def load_grid(path: str | Path) -> dict:
    """Parse a tune grid document (PyYAML when present, fallback parser).

    Returns the raw mapping; :func:`validate_grid` checks its shape.
    """
    text = Path(path).read_text(encoding="utf-8")
    try:
        import yaml
    except ImportError:
        return _parse_minimal_yaml(text)
    return yaml.safe_load(text)


def validate_grid(document: Any) -> dict:
    """Shape-check a loaded grid document; returns it on success."""
    if not isinstance(document, dict):
        raise ConfigError("tune grid: document must be a mapping")
    axes = document.get("grid")
    if not isinstance(axes, dict) or not axes:
        raise ConfigError("tune grid: 'grid' must be a non-empty mapping")
    for name, values in axes.items():
        if not isinstance(values, list) or not values:
            raise ConfigError(
                f"tune grid: axis {name!r} must be a non-empty list"
            )
    base = document.get("base", {})
    if not isinstance(base, dict):
        raise ConfigError("tune grid: 'base' must be a mapping")
    objective = document.get("objective", {})
    if not isinstance(objective, dict):
        raise ConfigError("tune grid: 'objective' must be a mapping")
    guardrails = objective.get("guardrails", {})
    if not isinstance(guardrails, dict):
        raise ConfigError("tune grid: 'guardrails' must be a mapping")
    for name in guardrails:
        if not (name.startswith("min_") or name.startswith("max_")):
            raise ConfigError(
                f"tune grid: guardrail {name!r} must start with "
                f"'min_' or 'max_'"
            )
    return document


# --------------------------------------------------------------------------
# Minimal YAML subset parser (stdlib fallback)


def _parse_scalar(token: str) -> Any:
    token = token.strip()
    if token in ("", "~", "null"):
        return None
    if token == "true":
        return True
    if token == "false":
        return False
    if token.startswith("[") and token.endswith("]"):
        inner = token[1:-1].strip()
        if not inner:
            return []
        return [_parse_scalar(part) for part in inner.split(",")]
    if len(token) >= 2 and token[0] == token[-1] and token[0] in "'\"":
        return token[1:-1]
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def _strip_lines(text: str) -> list[tuple[int, str]]:
    lines = []
    for raw in text.splitlines():
        content = raw.split("#", 1)[0].rstrip()
        if not content.strip():
            continue
        indent = len(content) - len(content.lstrip(" "))
        lines.append((indent, content.strip()))
    return lines


def _parse_block(
    lines: list[tuple[int, str]], index: int, indent: int
) -> tuple[Any, int]:
    """Parse one block (mapping or list) at ``indent``; returns (value, next)."""
    if lines[index][1].startswith("- "):
        items: list[Any] = []
        while index < len(lines) and lines[index][0] == indent and (
            lines[index][1].startswith("- ") or lines[index][1] == "-"
        ):
            items.append(_parse_scalar(lines[index][1][1:].strip()))
            index += 1
        return items, index

    mapping: dict[str, Any] = {}
    while index < len(lines) and lines[index][0] == indent:
        line = lines[index][1]
        if line.startswith("- "):
            break
        key, separator, rest = line.partition(":")
        if not separator:
            raise ConfigError(f"tune grid: cannot parse line {line!r}")
        key = key.strip()
        rest = rest.strip()
        if rest:
            mapping[key] = _parse_scalar(rest)
            index += 1
            continue
        index += 1
        if index < len(lines) and lines[index][0] > indent:
            mapping[key], index = _parse_block(lines, index, lines[index][0])
        else:
            mapping[key] = None
    return mapping, index


def _parse_minimal_yaml(text: str) -> dict:
    """Stdlib parser for the documented tune-grid subset of YAML."""
    lines = _strip_lines(text)
    if not lines:
        return {}
    document, index = _parse_block(lines, 0, lines[0][0])
    if index != len(lines):
        raise ConfigError(
            f"tune grid: trailing content from line {lines[index][1]!r}"
        )
    if not isinstance(document, dict):
        raise ConfigError("tune grid: document must be a mapping")
    return document


# --------------------------------------------------------------------------
# Expansion


def expand_grid(axes: Mapping[str, Sequence[Any]]) -> list[dict]:
    """The cartesian product of the axes, in deterministic order.

    Axes are ordered by name; each axis's values keep their listed order;
    the product enumerates the last (alphabetically) axis fastest.  The
    returned overlays carry the raw axis values — ``weights`` and
    ``eps_scale`` are resolved later by :func:`overlay_config`.
    """
    names = sorted(axes)
    return [
        dict(zip(names, values))
        for values in itertools.product(*(axes[name] for name in names))
    ]


def overlay_config(
    base: Mapping[str, Any], overlay: Mapping[str, Any], region: str
) -> NEATConfig:
    """Materialize one grid point as a validated :class:`NEATConfig`.

    ``base`` fields apply first, the overlay wins on conflicts, then the
    two conveniences resolve: ``weights`` expands to ``wq/wk/wv`` and
    ``eps_scale`` multiplies the base eps (the explicit ``eps`` when one
    is set, the region's default otherwise).
    """
    document: dict[str, Any] = dict(base)
    document.update(overlay)
    weights = document.pop("weights", None)
    eps_scale = document.pop("eps_scale", None)
    if "eps" not in document:
        document["eps"] = REGION_BASE_EPS.get(region, 800.0)
    if eps_scale is not None:
        document["eps"] = float(document["eps"]) * float(eps_scale)
    if weights is not None:
        if not isinstance(weights, (list, tuple)) or len(weights) != 3:
            raise ConfigError(
                f"tune grid: 'weights' must be a (wq, wk, wv) triple, "
                f"got {weights!r}"
            )
        document["wq"], document["wk"], document["wv"] = (
            float(weights[0]), float(weights[1]), float(weights[2])
        )
    return NEATConfig.from_dict(document)


# --------------------------------------------------------------------------
# Scoring


def guardrail_failures(
    row: Mapping[str, Any], guardrails: Mapping[str, float]
) -> list[str]:
    """Human-readable lines for every violated ``min_``/``max_`` bound."""
    failures = []
    for name, bound in guardrails.items():
        kind, _, field = name.partition("_")
        value = row.get(field)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            failures.append(f"{name}: field {field!r} missing from run row")
            continue
        if kind == "min" and value < bound:
            failures.append(f"{name}: {value:g} < {bound:g}")
        elif kind == "max" and value > bound:
            failures.append(f"{name}: {value:g} > {bound:g}")
    return failures


def score_rows(
    rows: Sequence[Mapping[str, Any]], objective: Mapping[str, Any]
) -> list[dict]:
    """Attach ``score`` / ``qualified`` / ``guardrail_failures`` to rows.

    The score is the value of the ``minimize`` field (lower is better).
    Rows violating any guardrail keep their score but are disqualified —
    the results doc still shows how fast a bad config was.
    """
    minimize = objective.get("minimize", "total_s")
    guardrails = objective.get("guardrails", {})
    scored = []
    for row in rows:
        value = row.get(minimize)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ConfigError(
                f"tune grid: objective field {minimize!r} missing from "
                f"sweep row {sorted(row)}"
            )
        failures = guardrail_failures(row, guardrails)
        entry = dict(row)
        entry["score"] = float(value)
        entry["qualified"] = not failures
        entry["guardrail_failures"] = failures
        scored.append(entry)
    return scored


def pick_best(scored: Sequence[Mapping[str, Any]]) -> int | None:
    """Index of the winning row: lowest score, earliest index on ties.

    Returns ``None`` when no row qualifies (every config tripped a
    guardrail) — the sweep reports that loudly instead of committing a
    bad best_config.
    """
    best_index: int | None = None
    best_score: float | None = None
    for index, row in enumerate(scored):
        if not row["qualified"]:
            continue
        score = row["score"]
        if best_score is None or score < best_score:
            best_index, best_score = index, score
    return best_index
