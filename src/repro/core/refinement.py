"""Phase 3: density-based flow cluster refinement.

Implements Section III-C of the paper:

* the *modified Hausdorff distance* between two flow clusters — the
  endpoint-wise max-min of network shortest-path distances between the two
  representative routes' ends (Equation 5, Definition 11);
* an adapted DBSCAN over flow clusters — distance = modified Hausdorff,
  no minimum cardinality for resulting clusters, and deterministic seeding
  from the flow with the longest representative route;
* the *Euclidean lower bound* (ELB) optimization — since straight-line
  distance never exceeds network distance, a pair whose four endpoint
  Euclidean distances all exceed ``ε`` can be discarded without running a
  single shortest-path search (Section III-C3).

Instrumentation counters record how many pairs the ELB pruned and how many
Dijkstra searches actually ran, which is exactly what Figure 7 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..cluster.dbscan import clusters_from_labels, dbscan
from ..roadnet.network import RoadNetwork
from ..roadnet.shortest_path import ShortestPathEngine
from .config import NEATConfig
from .flow_cluster import FlowCluster


@dataclass
class RefinementStats:
    """Phase 3 instrumentation (drives the Figure 7 reproduction).

    Attributes:
        pair_checks: Candidate (flow, flow) pairs examined in region queries.
        elb_pruned: Pairs discarded by the Euclidean lower bound alone.
        llb_evaluations: ELB survivors also checked against the landmark
            (ALT triangle-inequality) lower bound — 0 unless the LLB tier
            is enabled (``config.use_llb``).
        llb_pruned: Pairs the landmark lower bound discarded that the
            Euclidean bound could not.
        hausdorff_evaluations: Pairs for which the exact network-distance
            Hausdorff value was computed.
        shortest_path_computations: Dijkstra searches actually executed
            (memoized repeats excluded).
    """

    pair_checks: int = 0
    elb_pruned: int = 0
    llb_evaluations: int = 0
    llb_pruned: int = 0
    hausdorff_evaluations: int = 0
    shortest_path_computations: int = 0


@dataclass
class TrajectoryCluster:
    """A final NEAT cluster: one or more merged flow clusters.

    Satisfies the paper's two criteria — the member flows are within the
    network proximity ``ε`` of each other (high density) and each flow is a
    major traffic stream (high continuity).
    """

    cluster_id: int
    flows: list[FlowCluster] = field(default_factory=list)

    @property
    def participants(self) -> frozenset[int]:
        """Distinct trajectories across all member flows."""
        union: set[int] = set()
        for flow in self.flows:
            union.update(flow.participants)
        return frozenset(union)

    @property
    def trajectory_cardinality(self) -> int:
        """Number of distinct participating trajectories."""
        return len(self.participants)

    @property
    def density(self) -> int:
        """Total t-fragment count across member flows."""
        return sum(flow.density for flow in self.flows)

    @property
    def total_route_length(self) -> float:
        """Summed representative-route length of the member flows."""
        return sum(flow.route_length for flow in self.flows)

    def __len__(self) -> int:
        return len(self.flows)


def flow_distance(
    engine: ShortestPathEngine,
    flow_a: FlowCluster,
    flow_b: FlowCluster,
    cutoff: float | None = None,
) -> float:
    """Modified Hausdorff distance between two flows (Equation 5).

    ``max( max_a min_b d_N(a,b), max_b min_a d_N(a,b) )`` over the two
    endpoint junctions of each representative route, with ``d_N`` the
    undirected network shortest-path distance.

    Args:
        cutoff: Optional per-query bound.  Endpoint distances beyond it
            come back as infinity, so the returned value is exact
            whenever it is ``<= cutoff`` and infinite otherwise — which
            is all a ``<= eps`` region query needs, at a fraction of the
            settled nodes.
    """
    a1, a2 = flow_a.endpoints
    b1, b2 = flow_b.endpoints
    d11 = engine.distance(a1, b1, cutoff=cutoff)
    d12 = engine.distance(a1, b2, cutoff=cutoff)
    d21 = engine.distance(a2, b1, cutoff=cutoff)
    d22 = engine.distance(a2, b2, cutoff=cutoff)
    forward = max(min(d11, d12), min(d21, d22))
    backward = max(min(d11, d21), min(d12, d22))
    return max(forward, backward)


def euclidean_lower_bound(
    network: RoadNetwork, flow_a: FlowCluster, flow_b: FlowCluster
) -> float:
    """The minimum Euclidean distance among the four endpoint pairs.

    By the ELB property every network distance is at least its Euclidean
    counterpart, so when this value exceeds ``ε`` the modified Hausdorff
    distance must too and the pair can be pruned.
    """
    pa1, pa2 = (network.node_point(n) for n in flow_a.endpoints)
    pb1, pb2 = (network.node_point(n) for n in flow_b.endpoints)
    return min(
        pa1.distance_to(pb1),
        pa1.distance_to(pb2),
        pa2.distance_to(pb1),
        pa2.distance_to(pb2),
    )


def landmark_lower_bound(
    oracle, flow_a: FlowCluster, flow_b: FlowCluster
) -> float:
    """Landmark (ALT) lower bound on the modified Hausdorff distance.

    Composes the per-endpoint-pair triangle-inequality bounds of a
    :class:`~repro.roadnet.landmarks.LandmarkOracle` through the same
    max-min structure as Equation 5: each ``lower_bound(s, t)`` is
    admissible for ``d_N(s, t)``, and max/min are monotone, so the
    composed value never exceeds the true flow distance — when it
    exceeds ``ε`` the pair is safely pruned.  Symmetric in its flow
    arguments, so region queries and prefetch enumeration agree.
    """
    a1, a2 = flow_a.endpoints
    b1, b2 = flow_b.endpoints
    l11 = oracle.lower_bound(a1, b1)
    l12 = oracle.lower_bound(a1, b2)
    l21 = oracle.lower_bound(a2, b1)
    l22 = oracle.lower_bound(a2, b2)
    forward = max(min(l11, l12), min(l21, l22))
    backward = max(min(l11, l21), min(l12, l22))
    return max(forward, backward)


def _surviving_endpoint_pairs(
    network: RoadNetwork,
    flow_list: Sequence[FlowCluster],
    eps: float,
    use_elb: bool,
    llb=None,
    elb_mask: bytearray | None = None,
    llb_mask: bytearray | None = None,
) -> list[tuple[int, int]]:
    """Endpoint node pairs the region queries will ask the engine for.

    Enumerates unordered flow pairs that survive the lower-bound tiers
    (Euclidean, then optionally the landmark bound — exactly the pairs
    whose modified Hausdorff distance Phase 3 must evaluate) and expands
    each into its endpoint-junction pairs, in deterministic order.
    Pairs are deduplicated after symmetric normalization and ``(n, n)``
    identities are dropped, so the payload shipped to worker processes
    (and the grouped planner's input) carries each distinct query once.

    When precomputed ``n x n`` prune masks are given
    (:func:`repro.core.bounds.elb_far_mask` /
    :func:`~repro.core.bounds.llb_far_mask`) they replace the scalar
    bound evaluations — the masks encode the same decisions, batched.
    """
    n = len(flow_list)
    pairs: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    for i in range(n):
        a1, a2 = flow_list[i].endpoints
        row = i * n
        for j in range(i + 1, n):
            if elb_mask is not None:
                if elb_mask[row + j]:
                    continue
            elif use_elb:
                bound = euclidean_lower_bound(network, flow_list[i], flow_list[j])
                if bound > eps:
                    continue
            if llb_mask is not None:
                if llb_mask[row + j]:
                    continue
            elif llb is not None:
                if landmark_lower_bound(llb, flow_list[i], flow_list[j]) > eps:
                    continue
            b1, b2 = flow_list[j].endpoints
            for source, target in (
                (a1, b1), (a1, b2), (a2, b1), (a2, b2)
            ):
                if source == target:
                    continue
                key = (
                    (source, target) if source <= target else (target, source)
                )
                if key in seen:
                    continue
                seen.add(key)
                pairs.append(key)
    return pairs


def refine_flow_clusters(
    network: RoadNetwork,
    flows: Sequence[FlowCluster],
    config: NEATConfig | None = None,
    engine: ShortestPathEngine | None = None,
    stats: RefinementStats | None = None,
    metrics=None,
    workers: int | None = None,
) -> list[TrajectoryCluster]:
    """Run Phase 3: merge eps-close flows into final trajectory clusters.

    Region queries run their shortest-path searches bounded by ``eps``:
    the lower-bound tiers (Euclidean, optionally landmark) already prove
    a pruned pair is far apart, and for the survivors a bounded search
    answering "farther than eps" settles only the eps-ball instead of
    the whole graph.  With the default tiered oracle
    (``config.sp_oracle == "tiered"``) the surviving endpoint pairs are
    answered by batched multi-target single-source kernels — one search
    per distinct endpoint instead of one per pair — optionally fanned
    out across worker processes; cluster output and every determinism
    counter match the legacy per-pair serial run exactly.

    Args:
        network: The road network.
        flows: Phase 2 output (the kept flows).
        config: NEAT parameters (``eps``, ``min_pts``, ``use_elb``).
        engine: Optional shared shortest-path engine (undirected); a fresh
            memoizing engine is created when omitted.
        stats: Optional stats collector, filled in place.
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when given, the ``neat.phase3.*`` counters are published from
            the collected stats when refinement finishes.
        workers: Worker processes for the distance batches (``None``
            falls back to ``config.workers``; ``<=1`` serial).

    Returns:
        Final clusters ordered by discovery (the first cluster is seeded by
        the flow with the longest representative route, per the paper's
        determinism rule).
    """
    if config is None:
        config = NEATConfig()
    if engine is None:
        engine = ShortestPathEngine(network, directed=False)
    if stats is None:
        stats = RefinementStats()
    if workers is None:
        workers = config.workers

    flow_list = list(flows)
    if not flow_list:
        _publish_stats(metrics, stats, cluster_count=0)
        return []

    eps = config.eps
    sp_before = engine.computations

    from ..parallel import resolve_workers

    llb = None
    if config.use_llb and not engine.directed:
        # Landmark tables are engine-memoized per network version; the
        # sweeps run outside the Figure-7 counters (bounds are free at
        # query time, like the Euclidean bound).
        llb = engine.landmark_bounds(config.llb_landmarks)

    # Batch the lower-bound tiers over flat endpoint arrays once, up
    # front (numpy-accelerated when available; decisions are identical
    # either way — see repro.core.bounds).  Region queries and prefetch
    # enumeration below then index the masks instead of recomputing
    # per-pair bounds, so the counters they drive cannot drift.
    from ..vec import resolve_vector_backend
    from .bounds import elb_far_mask, llb_far_mask

    vector_backend = resolve_vector_backend(
        getattr(config, "vector_backend", "auto")
    )
    elb_mask = (
        elb_far_mask(network, flow_list, eps, vector_backend)
        if config.use_elb
        else None
    )
    llb_mask = (
        llb_far_mask(llb, flow_list, eps, vector_backend)
        if llb is not None
        else None
    )

    if config.sp_oracle == "tiered" and engine.oracle is None:
        # Tiered oracle: answer every distance the region queries below
        # will need with batched multi-target single-source kernels —
        # O(distinct endpoints) searches instead of one per surviving
        # pair.  Runs at any worker count (the grouping is deterministic
        # and backend-independent), so serial and parallel runs execute
        # the same searches and report identical counters.
        engine.prefetch_grouped(
            _surviving_endpoint_pairs(
                network, flow_list, eps, config.use_elb, llb=llb,
                elb_mask=elb_mask, llb_mask=llb_mask,
            ),
            cutoff=eps,
            workers=workers,
        )
    elif resolve_workers(workers) > 1 and engine.oracle is None:
        # Legacy pairwise oracle: warm the engine per pair, fanned out
        # across processes.  The engine counts the prefetched searches as
        # the computations they replace, so Figure-7 accounting stays
        # exact.
        engine.prefetch(
            _surviving_endpoint_pairs(
                network, flow_list, eps, config.use_elb, llb=llb,
                elb_mask=elb_mask, llb_mask=llb_mask,
            ),
            cutoff=eps,
            workers=workers,
        )

    def region_query(index: int) -> list[int]:
        found = []
        row = index * len(flow_list)
        for other in range(len(flow_list)):
            if other == index:
                continue
            stats.pair_checks += 1
            if elb_mask is not None:
                if elb_mask[row + other]:
                    stats.elb_pruned += 1
                    continue
            if llb_mask is not None:
                stats.llb_evaluations += 1
                if llb_mask[row + other]:
                    stats.llb_pruned += 1
                    continue
            stats.hausdorff_evaluations += 1
            distance = flow_distance(
                engine, flow_list[index], flow_list[other], cutoff=eps
            )
            if distance <= eps:
                found.append(other)
        return found

    # "The density-based clustering ... always starts each round with the
    # flow cluster whose representative route is the longest" (III-C2).
    order = sorted(
        range(len(flow_list)),
        key=lambda i: (-flow_list[i].route_length, i),
    )
    labels = dbscan(len(flow_list), region_query, config.min_pts, order=order)

    clusters = []
    for cluster_id, indices in enumerate(clusters_from_labels(labels)):
        clusters.append(
            TrajectoryCluster(cluster_id, [flow_list[i] for i in indices])
        )
    # With min_pts > 1 DBSCAN can leave noise flows; the paper sets no
    # minimum cardinality, but when a caller raises min_pts we still return
    # each leftover flow as its own singleton cluster to stay lossless.
    clustered = {i for indices in clusters_from_labels(labels) for i in indices}
    for index in range(len(flow_list)):
        if index not in clustered:
            clusters.append(TrajectoryCluster(len(clusters), [flow_list[index]]))

    stats.shortest_path_computations += engine.computations - sp_before
    _publish_stats(metrics, stats, cluster_count=len(clusters))
    return clusters


def _publish_stats(metrics, stats: RefinementStats, cluster_count: int) -> None:
    """Publish one refinement's stats as ``neat.phase3.*`` instruments."""
    if metrics is None:
        return
    metrics.counter(
        "neat.phase3.pair_checks", "Candidate flow pairs examined in region queries"
    ).inc(stats.pair_checks)
    metrics.counter(
        "neat.phase3.elb_pruned", "Pairs discarded by the Euclidean lower bound"
    ).inc(stats.elb_pruned)
    metrics.counter(
        "neat.phase3.llb_evaluations",
        "ELB survivors checked against the landmark lower bound",
    ).inc(stats.llb_evaluations)
    metrics.counter(
        "neat.phase3.llb_pruned",
        "Pairs discarded by the landmark lower bound after surviving the ELB",
    ).inc(stats.llb_pruned)
    metrics.counter(
        "neat.phase3.hausdorff_evaluations",
        "Pairs whose exact modified Hausdorff distance was computed",
    ).inc(stats.hausdorff_evaluations)
    metrics.counter(
        "neat.phase3.sp_computations",
        "Dijkstra searches executed during refinement (memo hits excluded)",
    ).inc(stats.shortest_path_computations)
    metrics.counter(
        "neat.phase3.clusters", "Final trajectory clusters produced"
    ).inc(cluster_count)
