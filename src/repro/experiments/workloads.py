"""Experiment workloads: the paper's networks and datasets, regenerated.

The paper's evaluation uses three road networks (ATL, SJ, MIA) and five
trace sizes per network (500..5000 objects; Table II).  This module builds
the equivalent workloads from the calibrated generators and the simulator,
at a configurable *scale* so benchmark runs finish in seconds while the
full-paper scale remains reachable (pass ``network_scale=1.0`` and the
paper's object counts).

Datasets and networks are deterministic functions of (region, scale,
object count): every bench run sees the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.model import TrajectoryDataset
from ..mobisim.simulator import SimulationConfig, simulate_dataset
from ..roadnet.generators import REGION_PRESETS
from ..roadnet.network import RoadNetwork

#: Region keys in the paper's order.
REGIONS = ("ATL", "SJ", "MIA")

#: The object counts of Table II.
PAPER_OBJECT_COUNTS = (500, 1000, 2000, 3000, 5000)

#: Scaled-down object counts used by the default benchmark sweeps (same
#: 1:2:4:6:10 progression as the paper's, /10).
BENCH_OBJECT_COUNTS = (50, 100, 200, 300, 500)

#: Default network scale factors (fraction of the paper's map size).
DEFAULT_NETWORK_SCALES = {"ATL": 0.1, "SJ": 0.1, "MIA": 0.02}

#: Paper values of Table II (total points), for side-by-side reporting.
PAPER_TABLE2_POINTS = {
    "ATL": (114878, 233793, 468738, 669924, 1277521),
    "SJ": (131982, 255162, 542598, 794638, 1296739),
    "MIA": (276711, 452224, 893412, 1302145, 2262313),
}


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Identifies one (region, size) workload.

    Attributes:
        region: ``"ATL"``, ``"SJ"`` or ``"MIA"``.
        object_count: Number of mobile objects simulated.
        network_scale: Fraction of the paper's map size; ``None`` uses the
            region default.
        sample_interval: GPS sampling period in seconds.
        seed: Base seed; network and dataset seeds derive from it.
    """

    region: str
    object_count: int
    network_scale: float | None = None
    sample_interval: float = 5.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.region not in REGIONS:
            raise ValueError(f"unknown region {self.region!r}; pick from {REGIONS}")

    @property
    def name(self) -> str:
        """Dataset name in the paper's convention, e.g. ``"ATL500"``."""
        return f"{self.region}{self.object_count}"

    @property
    def resolved_scale(self) -> float:
        """The effective network scale."""
        if self.network_scale is not None:
            return self.network_scale
        return DEFAULT_NETWORK_SCALES[self.region]


def build_network(
    region: str, network_scale: float | None = None, seed: int = 7
) -> RoadNetwork:
    """Build the synthetic stand-in for one of the paper's road networks."""
    if region not in REGIONS:
        raise ValueError(f"unknown region {region!r}; pick from {REGIONS}")
    scale = (
        network_scale
        if network_scale is not None
        else DEFAULT_NETWORK_SCALES[region]
    )
    return REGION_PRESETS[region](scale=scale, seed=seed * 101 + len(region))


def build_dataset(network: RoadNetwork, spec: WorkloadSpec) -> TrajectoryDataset:
    """Simulate the trace dataset for ``spec`` on a pre-built network."""
    # The seed is independent of the object count so a region's datasets
    # nest: the first k objects of the 2k-object dataset are exactly the
    # k-object dataset, making Table II's point counts grow monotonically.
    config = SimulationConfig(
        object_count=spec.object_count,
        sample_interval=spec.sample_interval,
        hotspot_count=2,
        destination_count=3,
        seed=spec.seed * 1009,
        name=spec.name,
    )
    return simulate_dataset(network, config)


def build_workload(spec: WorkloadSpec) -> tuple[RoadNetwork, TrajectoryDataset]:
    """Network and dataset for one spec (convenience wrapper)."""
    network = build_network(spec.region, spec.network_scale, spec.seed)
    return network, build_dataset(network, spec)


def build_suite(
    region: str,
    object_counts: tuple[int, ...] = BENCH_OBJECT_COUNTS,
    network_scale: float | None = None,
    sample_interval: float = 5.0,
    seed: int = 7,
) -> tuple[RoadNetwork, list[TrajectoryDataset]]:
    """One network plus a dataset per object count (a Table II column)."""
    network = build_network(region, network_scale, seed)
    datasets = [
        build_dataset(
            network,
            WorkloadSpec(
                region=region,
                object_count=count,
                network_scale=network_scale,
                sample_interval=sample_interval,
                seed=seed,
            ),
        )
        for count in object_counts
    ]
    return network, datasets
