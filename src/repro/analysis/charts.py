"""Standalone SVG line charts for the figure benchmarks.

Regenerates the paper's *plots* (Figure 5(d)'s semi-log runtime curves,
Figure 6's scaling curves, Figure 7's ELB comparison) as self-contained
SVG files, with no plotting library.

Styling follows a fixed spec: 2px round-capped lines, >=8px end markers
with a 2px surface ring, hairline solid gridlines one step off the
surface, a legend row for two or more series plus direct end labels, and
text in ink tokens (never the series color).  The categorical palette is
assigned in fixed slot order and was validated for colour-vision-deficiency
separation on the light surface; every chart ships next to its text-table
twin in ``benchmarks/output/``, which doubles as the table view.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

#: Validated categorical palette (light surface), fixed slot order.
SERIES_COLORS = (
    "#2a78d6",  # blue
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
)
SURFACE = "#fcfcfb"
GRID = "#e7e6e3"
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"


@dataclass(frozen=True, slots=True)
class Series:
    """One line: a name and its ``(x, y)`` points (y > 0 for log scales)."""

    name: str
    points: tuple[tuple[float, float], ...]


@dataclass
class LineChart:
    """A minimal line-chart builder targeting standalone SVG.

    Attributes:
        title: Chart title (primary ink).
        x_label: X-axis caption.
        y_label: Y-axis caption.
        log_y: Use a log10 y scale (the paper's Figure 5(d) semi-log form).
        width/height: Canvas size in px.
    """

    title: str
    x_label: str = ""
    y_label: str = ""
    log_y: bool = False
    width: int = 660
    height: int = 420
    series: list[Series] = field(default_factory=list)

    #: Margins: top leaves room for title+legend, right for end labels.
    _top: int = 78
    _right: int = 150
    _bottom: int = 52
    _left: int = 70

    def add_series(self, name: str, points: Sequence[tuple[float, float]]) -> None:
        """Add a line; points are sorted by x."""
        cleaned = tuple(sorted((float(x), float(y)) for x, y in points))
        if self.log_y and any(y <= 0.0 for _x, y in cleaned):
            raise ValueError(f"series {name!r}: log scale needs positive y")
        self.series.append(Series(name, cleaned))

    # ------------------------------------------------------------------
    def _x_range(self) -> tuple[float, float]:
        xs = [x for s in self.series for x, _y in s.points]
        lo, hi = min(xs), max(xs)
        if lo == hi:
            lo, hi = lo - 1.0, hi + 1.0
        return lo, hi

    def _y_range(self) -> tuple[float, float]:
        ys = [y for s in self.series for _x, y in s.points]
        if self.log_y:
            lo = 10 ** math.floor(math.log10(min(ys)))
            hi = 10 ** math.ceil(math.log10(max(ys)))
            if lo == hi:
                hi *= 10.0
            return lo, hi
        lo, hi = 0.0, max(ys)
        if hi <= 0.0:
            hi = 1.0
        return lo, hi * 1.05

    def _tx(self, x: float) -> float:
        lo, hi = self._x_range()
        plot_width = self.width - self._left - self._right
        return self._left + (x - lo) / (hi - lo) * plot_width

    def _ty(self, y: float) -> float:
        lo, hi = self._y_range()
        plot_height = self.height - self._top - self._bottom
        if self.log_y:
            fraction = (math.log10(y) - math.log10(lo)) / (
                math.log10(hi) - math.log10(lo)
            )
        else:
            fraction = (y - lo) / (hi - lo)
        return self.height - self._bottom - fraction * plot_height

    def _y_ticks(self) -> list[float]:
        lo, hi = self._y_range()
        if self.log_y:
            low = int(math.log10(lo))
            high = int(math.log10(hi))
            return [10.0 ** k for k in range(low, high + 1)]
        step = _nice_step(hi / 5.0)
        ticks = []
        value = 0.0
        while value <= hi + 1e-9:
            ticks.append(value)
            value += step
        return ticks

    def _x_ticks(self) -> list[float]:
        lo, hi = self._x_range()
        step = _nice_step((hi - lo) / 5.0)
        first = math.ceil(lo / step) * step
        ticks = []
        value = first
        while value <= hi + 1e-9:
            ticks.append(value)
            value += step
        return ticks

    # ------------------------------------------------------------------
    def to_svg(self) -> str:
        """Render the chart as a standalone SVG document."""
        if not self.series:
            raise ValueError("chart has no series")
        parts: list[str] = []
        parts.append(
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}" '
            'font-family="system-ui, sans-serif">'
        )
        parts.append(f'<rect width="100%" height="100%" fill="{SURFACE}"/>')
        parts.append(
            f'<text x="{self._left}" y="26" font-size="15" font-weight="600" '
            f'fill="{TEXT_PRIMARY}">{_esc(self.title)}</text>'
        )
        self._render_legend(parts)
        self._render_grid_and_axes(parts)
        self._render_lines(parts)
        parts.append("</svg>")
        return "\n".join(parts) + "\n"

    def _render_legend(self, parts: list[str]) -> None:
        if len(self.series) < 2:
            return  # a single series is named by the title
        x = self._left
        y = 48
        for index, series in enumerate(self.series):
            color = SERIES_COLORS[index % len(SERIES_COLORS)]
            parts.append(
                f'<line x1="{x}" y1="{y - 4}" x2="{x + 18}" y2="{y - 4}" '
                f'stroke="{color}" stroke-width="2" stroke-linecap="round"/>'
            )
            label_x = x + 24
            parts.append(
                f'<text x="{label_x}" y="{y}" font-size="12" '
                f'fill="{TEXT_SECONDARY}">{_esc(series.name)}</text>'
            )
            x = label_x + 8 * len(series.name) + 24

    def _render_grid_and_axes(self, parts: list[str]) -> None:
        plot_right = self.width - self._right
        baseline = self.height - self._bottom
        for tick in self._y_ticks():
            y = self._ty(tick) if (not self.log_y or tick > 0) else baseline
            parts.append(
                f'<line x1="{self._left}" y1="{y:.1f}" x2="{plot_right}" '
                f'y2="{y:.1f}" stroke="{GRID}" stroke-width="1"/>'
            )
            parts.append(
                f'<text x="{self._left - 8}" y="{y + 4:.1f}" font-size="11" '
                f'text-anchor="end" fill="{TEXT_SECONDARY}" '
                f'font-variant-numeric="tabular-nums">{_fmt(tick)}</text>'
            )
        for tick in self._x_ticks():
            x = self._tx(tick)
            parts.append(
                f'<text x="{x:.1f}" y="{baseline + 18}" font-size="11" '
                f'text-anchor="middle" fill="{TEXT_SECONDARY}" '
                f'font-variant-numeric="tabular-nums">{_fmt(tick)}</text>'
            )
        # Axis captions.
        if self.x_label:
            parts.append(
                f'<text x="{(self._left + plot_right) / 2:.1f}" '
                f'y="{baseline + 38}" font-size="12" text-anchor="middle" '
                f'fill="{TEXT_SECONDARY}">{_esc(self.x_label)}</text>'
            )
        if self.y_label:
            y_mid = (self._top + baseline) / 2
            parts.append(
                f'<text x="18" y="{y_mid:.1f}" font-size="12" '
                f'text-anchor="middle" fill="{TEXT_SECONDARY}" '
                f'transform="rotate(-90 18 {y_mid:.1f})">'
                f"{_esc(self.y_label)}</text>"
            )

    def _render_lines(self, parts: list[str]) -> None:
        for index, series in enumerate(self.series):
            color = SERIES_COLORS[index % len(SERIES_COLORS)]
            coords = " ".join(
                f"{self._tx(x):.1f},{self._ty(y):.1f}" for x, y in series.points
            )
            parts.append(
                f'<polyline points="{coords}" fill="none" stroke="{color}" '
                'stroke-width="2" stroke-linecap="round" '
                'stroke-linejoin="round"/>'
            )
            end_x, end_y = series.points[-1]
            cx, cy = self._tx(end_x), self._ty(end_y)
            # End marker: r=4 plus a 2px surface ring.
            parts.append(
                f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="6" fill="{SURFACE}"/>'
            )
            parts.append(
                f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="4" fill="{color}"/>'
            )
            # Direct end label in ink (identity comes from the marker).
            parts.append(
                f'<text x="{cx + 10:.1f}" y="{cy + 4:.1f}" font-size="12" '
                f'fill="{TEXT_PRIMARY}">{_esc(series.name)}</text>'
            )

    def save(self, path: str | Path) -> Path:
        """Write the SVG to disk and return the path."""
        target = Path(path)
        target.write_text(self.to_svg())
        return target


def _nice_step(raw: float) -> float:
    """Round a raw step up to 1/2/5 x 10^k."""
    if raw <= 0.0:
        return 1.0
    magnitude = 10 ** math.floor(math.log10(raw))
    for multiplier in (1.0, 2.0, 5.0, 10.0):
        if raw <= multiplier * magnitude:
            return multiplier * magnitude
    return 10.0 * magnitude


def _fmt(value: float) -> str:
    """Clean tick label: thousands-comma'd ints, compact decimals."""
    if value == 0.0:
        return "0"
    if abs(value) >= 1000 and float(value).is_integer():
        return f"{int(value):,}"
    if abs(value) >= 1:
        return f"{value:g}"
    # Sub-1 values (seconds on log scales): fixed decimals, no exponent.
    return f"{value:.10f}".rstrip("0").rstrip(".")


def _esc(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
