"""Zero-copy CSR snapshots over POSIX shared memory.

The process fan-out of Phase 1/Phase 3 used to pickle the whole
:class:`~repro.roadnet.csr.CSRGraph` into every worker on every batch —
the reason BENCH_sp_core recorded a parallel *slowdown*.  This module
publishes a snapshot's typed columns once into one
:class:`multiprocessing.shared_memory.SharedMemory` segment, and lets
worker processes *attach* it read-only: the attach builds typed
``memoryview`` casts over the shared buffer and wraps them with
:meth:`CSRGraph.from_arrays`, so no graph bytes are copied or unpickled
per worker — the OS maps the same physical pages everywhere.

Segment layout (all slots 8-byte, little-or-native endian — segments are
same-machine only, never persisted):

====================  ==========  =========================================
slot                  typecode    length
====================  ==========  =========================================
header                ``q``       5: magic, version, directed, nodes, edges
``node_ids``          ``q``       nodes
``indptr``            ``q``       nodes + 1
``adj``               ``q``       edges
``sids``              ``q``       edges
``weights``           ``d``       edges
reverse columns       as above    only when directed (indptr/adj/sids/weights)
====================  ==========  =========================================

Lifecycle: the publisher owns the segment and must :meth:`SharedCSR.unlink`
it exactly once (``close`` releases this process's mapping only).
Attachers never unlink; on Python < 3.13 the attach explicitly
unregisters the segment from the ``multiprocessing`` resource tracker,
which would otherwise unlink it when the *worker* exits and then warn
about a leak (bpo-38119) — the owner, not the tracker, is responsible
for reclamation here.
"""

from __future__ import annotations

from array import array
from multiprocessing import resource_tracker, shared_memory

from .csr import CSRGraph

#: Sanity marker at offset 0 of every published segment.
MAGIC = 0x4353_5247  # "CSRG"
#: Bumped whenever the layout above changes.
LAYOUT_VERSION = 1

_HEADER_SLOTS = 5
_ITEM = 8  # bytes per slot, both 'q' and 'd'


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without resource-tracker registration.

    Python 3.13+ supports ``track=False`` natively.  Earlier versions
    register every attach with the resource tracker (bpo-38119), which
    (a) unlinks the publisher's segment when the first *worker* exits
    and (b) double-unregisters names shared across forked workers; both
    are wrong here, so registration is suppressed for the duration of
    the attach (single-threaded worker startup / task context).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13 only
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedCSR:
    """One published (or attached) CSR snapshot in shared memory.

    Attributes:
        name: The segment name — the only thing a worker needs to attach.
        nbytes: Size of the shared segment.
        graph: A :class:`CSRGraph` over the segment.  For an attached
            handle its columns are memoryview casts into shared pages;
            the publisher keeps the original (private-array) graph, which
            reads the same values.
        owner: Whether this handle created (and must unlink) the segment.
    """

    __slots__ = ("name", "nbytes", "graph", "owner", "_shm", "_views")

    def __init__(self, shm, graph, views, owner: bool) -> None:
        self._shm = shm
        self._views = views
        self.graph = graph
        self.owner = owner
        self.name = shm.name
        self.nbytes = shm.size

    # ------------------------------------------------------------------
    @classmethod
    def publish(cls, graph: CSRGraph, name: str | None = None) -> "SharedCSR":
        """Copy a snapshot's columns into a fresh shared segment."""
        columns = _columns(graph)
        total = _ITEM * _HEADER_SLOTS + sum(
            _ITEM * len(column) for _code, column in columns
        )
        shm = shared_memory.SharedMemory(create=True, size=total, name=name)
        header = array("q", [
            MAGIC,
            LAYOUT_VERSION,
            1 if graph.directed else 0,
            graph.node_count,
            graph.edge_count,
        ])
        offset = 0
        for column in (("q", header), *columns):
            code, data = column
            raw = array(code, data).tobytes() if not isinstance(data, array) \
                else data.tobytes()
            shm.buf[offset:offset + len(raw)] = raw
            offset += len(raw)
        return cls(shm, graph, views=[], owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedCSR":
        """Map an existing segment and wrap it as a zero-copy graph."""
        shm = _attach_segment(name)
        views: list[memoryview] = []
        offset = 0

        def take(code: str, count: int) -> memoryview:
            nonlocal offset
            nbytes = _ITEM * count
            view = shm.buf[offset:offset + nbytes].cast(code)
            views.append(view)
            offset += nbytes
            return view

        try:
            header = take("q", _HEADER_SLOTS)
            if header[0] != MAGIC or header[1] != LAYOUT_VERSION:
                raise ValueError(
                    f"segment {name!r} is not a v{LAYOUT_VERSION} CSR "
                    f"snapshot (header {header[0]:#x}/{header[1]})"
                )
            directed = bool(header[2])
            nodes, edges = header[3], header[4]
            node_ids = take("q", nodes)
            forward = (
                take("q", nodes + 1), take("q", edges),
                take("q", edges), take("d", edges),
            )
            reverse = (
                take("q", nodes + 1), take("q", edges),
                take("q", edges), take("d", edges),
            ) if directed else (None, None, None, None)
            graph = CSRGraph.from_arrays(
                directed, node_ids, *forward, *reverse
            )
        except Exception:
            for view in views:
                view.release()
            shm.close()
            raise
        return cls(shm, graph, views, owner=False)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release this process's mapping (idempotent).

        Every exported memoryview is released first — closing an mmap
        with live buffer exports raises ``BufferError``.  An attached
        handle's ``graph`` must not be used afterwards.
        """
        if self._shm is None:
            return
        for view in self._views:
            view.release()
        self._views = []
        self.graph = None
        self._shm.close()
        self._shm = None

    def unlink(self) -> None:
        """Reclaim the segment (owner only; idempotent, implies close)."""
        if not self.owner:
            raise ValueError(f"segment {self.name!r} is attached, not owned")
        shm = self._shm
        self.close()
        if shm is not None:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "owner" if self.owner else "attached"
        if self._shm is None:
            state = "closed"
        return f"SharedCSR({self.name!r}, {self.nbytes}B, {state})"


def _columns(graph: CSRGraph) -> tuple:
    """The snapshot's columns in segment order, with typecodes."""
    forward = (
        ("q", graph.node_ids),
        ("q", graph.indptr),
        ("q", graph.adj),
        ("q", graph.sids),
        ("d", graph.weights),
    )
    if not graph.directed:
        return forward
    return forward + (
        ("q", graph.rindptr),
        ("q", graph.radj),
        ("q", graph.rsids),
        ("d", graph.rweights),
    )
