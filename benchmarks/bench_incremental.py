"""Incremental (online) NEAT: the Section III-C deployment scenario.

Measures the cost profile of streaming ingestion: trajectories arrive in
batches; each batch runs Phases 1-2 locally and refreshes the global
Phase 3 clustering over the growing flow pool.  The memoized shortest-path
engine makes each refresh cheaper than a cold one — the amortization the
paper designs Phase 3 around.
"""

from __future__ import annotations

from conftest import NEAT_COUNTS

from repro.core.config import NEATConfig
from repro.core.incremental import IncrementalNEAT
from repro.core.pipeline import NEAT
from repro.experiments.figures import DEFAULT_EPS
from repro.experiments.harness import format_seconds, format_table, timed
from repro.experiments.workloads import build_suite


def bench_incremental_stream(benchmark, emit):
    """Stream the largest ATL dataset in 5 batches vs one-shot."""
    network, datasets = build_suite("ATL", NEAT_COUNTS)
    trajectories = list(datasets[-1])
    batch_count = 5
    size = (len(trajectories) + batch_count - 1) // batch_count
    batches = [
        trajectories[i * size: (i + 1) * size] for i in range(batch_count)
    ]

    config = NEATConfig(eps=DEFAULT_EPS["ATL"], min_card=5)
    incremental = IncrementalNEAT(network, config)
    rows = []
    for index, batch in enumerate(batches):
        sp_before = incremental.engine.computations
        result, seconds = timed(lambda b=batch: incremental.add_batch(b))
        rows.append(
            (
                index,
                len(batch),
                len(result.new_flows),
                len(incremental.flows),
                len(result.clusters),
                incremental.engine.computations - sp_before,
                format_seconds(seconds),
            )
        )

    oneshot, oneshot_seconds = timed(
        lambda: NEAT(network, config).run_opt(trajectories)
    )

    benchmark.pedantic(
        lambda: IncrementalNEAT(network, config).add_batch(batches[0]),
        rounds=2,
        iterations=1,
    )
    emit(
        "incremental",
        "Incremental NEAT (Section III-C online scenario, largest ATL set)\n"
        + format_table(
            ("batch", "trips", "new flows", "pool", "clusters",
             "new Dijkstras", "time"),
            rows,
        )
        + f"\nOne-shot opt-NEAT over the same data: "
        f"{format_seconds(oneshot_seconds)} "
        f"({oneshot.flow_count} flows, {oneshot.cluster_count} clusters).\n"
        "(Each refresh re-clusters the whole flow pool, yet the warm "
        "distance cache keeps per-batch Dijkstra growth sublinear.)",
    )
