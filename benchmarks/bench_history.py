"""Bench trend ledger: an append-only history of benchmark artifacts.

Every CI perf job ends by appending its freshly produced ``BENCH_*.json``
artifact to the committed ledger ``benchmarks/history/BENCH_history.jsonl``
— one JSON object per line carrying the bench name, a workload key, the
git revision, a UTC timestamp and the full metrics document.  The ledger
is the longitudinal record the single-baseline regression gate cannot
give: ``report`` renders a markdown trend table per bench/workload, and
``check_perf_regression.py --history`` gates a fresh artifact against
the *latest* ledger entry instead of a static baseline file.

Subcommands::

    python benchmarks/bench_history.py append --artifact output/BENCH_sp_core.json
    python benchmarks/bench_history.py report [--bench sp_core] [--out trend.md]
    python benchmarks/bench_history.py latest --bench sp_core [--workload ...]
    python benchmarks/bench_history.py verify

``append`` derives the bench name from the artifact filename
(``BENCH_<name>.json``) and the workload key from the document's
``network``/``objects`` fields unless ``--workload`` overrides it, so
the same bench tracked at several scales gets separate trend lines.
``verify`` is the CI check: the ledger must parse, every entry must be
well-formed, and every known bench must have at least one entry.
"""

from __future__ import annotations

import argparse
import datetime
import json
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
LEDGER = BENCH_DIR / "history" / "BENCH_history.jsonl"

#: Benches whose smoke artifacts CI appends on every run; ``verify``
#: fails when any of them has no ledger entry at all.
KNOWN_BENCHES = (
    "checkpoint_overhead",
    "distance_oracle",
    "distributed_ingest",
    "observability_overhead",
    "paper_scale",
    "passports",
    "sp_core",
    "tune_sweep",
)

REQUIRED_FIELDS = ("bench", "workload", "git_sha", "recorded_utc", "metrics")


def bench_name(artifact: Path) -> str:
    """``BENCH_sp_core.json`` -> ``sp_core``."""
    stem = artifact.stem
    if not stem.startswith("BENCH_"):
        raise ValueError(
            f"artifact {artifact.name!r} does not follow BENCH_<name>.json"
        )
    return stem[len("BENCH_"):]


def _workload_parts(document: dict) -> list[str]:
    parts = []
    for field in ("network", "region"):
        value = document.get(field)
        if isinstance(value, str):
            parts.append(value)
            break
    for field in ("objects", "queries", "batches"):
        value = document.get(field)
        if isinstance(value, (int, float)):
            parts.append(f"{field}={value:g}")
    return parts


def workload_key(document: dict) -> str:
    """A stable per-scale key from the artifact's own workload fields.

    Artifacts that nest their measurements (e.g. ``BENCH_sp_core`` with
    its ``microbench``/``phase3`` sections) are keyed from the first
    section that carries workload fields.
    """
    parts = _workload_parts(document)
    if not parts:
        for name in sorted(document):
            if isinstance(document[name], dict):
                parts = _workload_parts(document[name])
                if parts:
                    break
    return "/".join(parts) if parts else "default"


def git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=BENCH_DIR, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def load_ledger(path: Path = LEDGER) -> list[dict]:
    """Parse the ledger; raises ValueError on any malformed line."""
    if not path.exists():
        return []
    entries = []
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path.name}:{number}: not JSON ({error})")
        if not isinstance(entry, dict):
            raise ValueError(f"{path.name}:{number}: entry is not an object")
        missing = [f for f in REQUIRED_FIELDS if f not in entry]
        if missing:
            raise ValueError(
                f"{path.name}:{number}: missing fields {missing}"
            )
        entries.append(entry)
    return entries


def append_entry(
    artifact: Path,
    workload: str | None = None,
    sha: str | None = None,
    recorded_utc: str | None = None,
    profile: str | None = None,
    path: Path = LEDGER,
) -> dict:
    """Append one artifact to the ledger; returns the written entry.

    ``profile`` labels the entry with its workload-ladder rung
    (small/medium/stress) so a stress smoke never becomes the baseline
    a small run is gated against — ``latest_entry`` filters on it.
    """
    document = json.loads(artifact.read_text(encoding="utf-8"))
    entry = {
        "bench": bench_name(artifact),
        "workload": workload or workload_key(document),
        "git_sha": sha or git_sha(),
        "recorded_utc": recorded_utc
        or datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "metrics": document,
    }
    if profile is not None:
        entry["profile"] = profile
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def latest_entry(
    bench: str,
    workload: str | None = None,
    profile: str | None = None,
    path: Path = LEDGER,
) -> dict | None:
    """The newest ledger entry for a bench (optionally one workload).

    With ``profile``, only entries labeled with exactly that profile
    match — runs of the same bench at different ladder rungs must never
    compare against each other's baselines.
    """
    found = None
    for entry in load_ledger(path):
        if entry["bench"] != bench:
            continue
        if workload is not None and entry["workload"] != workload:
            continue
        if profile is not None and entry.get("profile") != profile:
            continue
        found = entry  # append-only: last match is newest
    return found


def _lookup(metrics: dict, dotted: str):
    node = metrics
    for part in dotted.split("."):
        if not isinstance(node, dict):
            return None
        node = node.get(part)
    return node


def _trend_keys(metrics: dict) -> list[str]:
    """Dotted numeric keys (depth <= 2), the ones worth a trend column."""
    keys = []
    for name, value in metrics.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            keys.append(name)
        elif isinstance(value, dict):
            keys.extend(
                f"{name}.{inner}" for inner, leaf in value.items()
                if isinstance(leaf, (int, float)) and not isinstance(leaf, bool)
            )
    return sorted(keys)


def render_report(entries: list[dict], bench: str | None = None) -> str:
    """Markdown trend tables, one per (bench, workload, profile) series."""
    series: dict[tuple[str, str, str], list[dict]] = {}
    for entry in entries:
        if bench is not None and entry["bench"] != bench:
            continue
        key = (entry["bench"], entry["workload"], entry.get("profile") or "")
        series.setdefault(key, []).append(entry)
    if not series:
        scope = f" for bench {bench!r}" if bench else ""
        return f"# Bench trends\n\nNo ledger entries{scope}.\n"

    lines = ["# Bench trends", ""]
    for (name, workload, profile), rows in sorted(series.items()):
        keys = _trend_keys(rows[-1]["metrics"])
        rung = f", profile {profile}" if profile else ""
        lines.append(f"## {name} ({workload}{rung})")
        lines.append("")
        lines.append("| recorded (UTC) | git | " + " | ".join(keys) + " |")
        lines.append("|---" * (2 + len(keys)) + "|")
        previous = None
        for row in rows:
            cells = [row["recorded_utc"], f"`{row['git_sha']}`"]
            for key in keys:
                value = _lookup(row["metrics"], key)
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    cells.append("—")
                    continue
                cell = f"{value:g}"
                if previous is not None:
                    before = _lookup(previous["metrics"], key)
                    if (
                        isinstance(before, (int, float))
                        and not isinstance(before, bool)
                        and before != 0
                    ):
                        delta = (value - before) / abs(before) * 100.0
                        if abs(delta) >= 0.005:
                            cell += f" ({delta:+.1f}%)"
                cells.append(cell)
            lines.append("| " + " | ".join(cells) + " |")
            previous = row
        lines.append("")
    return "\n".join(lines)


def verify(path: Path = LEDGER) -> list[str]:
    """Return one failure line per problem (empty list == healthy)."""
    try:
        entries = load_ledger(path)
    except ValueError as error:
        return [str(error)]
    if not entries:
        return [f"{path} is missing or empty"]
    problems = []
    covered = {entry["bench"] for entry in entries}
    for bench in KNOWN_BENCHES:
        if bench not in covered:
            problems.append(f"no ledger entry for bench {bench!r}")
    for index, entry in enumerate(entries, start=1):
        if not isinstance(entry["metrics"], dict) or not entry["metrics"]:
            problems.append(f"entry {index} ({entry['bench']}): empty metrics")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ledger", type=Path, default=LEDGER,
        help="ledger path (default benchmarks/history/BENCH_history.jsonl)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    append_cmd = commands.add_parser(
        "append", help="append one BENCH_*.json artifact to the ledger"
    )
    append_cmd.add_argument("--artifact", type=Path, required=True)
    append_cmd.add_argument(
        "--workload", default=None,
        help="override the workload key derived from the artifact",
    )
    append_cmd.add_argument(
        "--profile", default=None,
        help="label the entry with its workload-ladder rung "
             "(small/medium/stress); profile-filtered baselines never "
             "cross rungs",
    )

    report_cmd = commands.add_parser(
        "report", help="render the markdown trend report"
    )
    report_cmd.add_argument("--bench", default=None)
    report_cmd.add_argument(
        "--out", type=Path, default=None,
        help="also write the report to this file",
    )

    latest_cmd = commands.add_parser(
        "latest", help="print the newest entry's metrics document"
    )
    latest_cmd.add_argument("--bench", required=True)
    latest_cmd.add_argument("--workload", default=None)
    latest_cmd.add_argument("--profile", default=None)

    commands.add_parser("verify", help="CI health check for the ledger")

    options = parser.parse_args(argv)

    if options.command == "append":
        entry = append_entry(
            options.artifact, workload=options.workload,
            profile=options.profile, path=options.ledger,
        )
        label = f", profile {entry['profile']}" if "profile" in entry else ""
        print(
            f"appended {entry['bench']} ({entry['workload']}{label}) "
            f"@ {entry['git_sha']} to {options.ledger}"
        )
        return 0

    if options.command == "report":
        text = render_report(load_ledger(options.ledger), bench=options.bench)
        if options.out is not None:
            options.out.parent.mkdir(parents=True, exist_ok=True)
            options.out.write_text(text + "\n", encoding="utf-8")
            print(f"wrote {options.out}")
        else:
            print(text)
        return 0

    if options.command == "latest":
        entry = latest_entry(
            options.bench, workload=options.workload,
            profile=options.profile, path=options.ledger,
        )
        if entry is None:
            print(
                f"no ledger entry for bench {options.bench!r}",
                file=sys.stderr,
            )
            return 1
        print(json.dumps(entry["metrics"], indent=2, sort_keys=True))
        return 0

    problems = verify(options.ledger)
    for line in problems:
        print(f"LEDGER {line}", file=sys.stderr)
    if not problems:
        entries = load_ledger(options.ledger)
        print(
            f"ledger ok: {len(entries)} entries, "
            f"{len({e['bench'] for e in entries})} benches"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
