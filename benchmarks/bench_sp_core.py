"""Shortest-path core and parallel fan-out: the perf numbers behind NEAT.

Two measurements, one artifact (``output/BENCH_sp_core.json``):

1. *Backend microbench* — point-to-point distance queries on the largest
   generated network (MIA) through the legacy dict-of-lists Dijkstra, the
   flat-array CSR Dijkstra, and the CSR bidirectional search.  The CSR
   walkers answer the identical queries; the artifact records the
   speedups (acceptance: CSR >= 2x dict).

2. *Phase 3 fan-out* — one opt-NEAT run with ``workers=1`` vs
   ``workers=4``: the pairwise route-distance matrix behind DBSCAN is
   prefetched across worker processes, and the artifact records the
   Phase 3 wall-clock for both together with the engine counters, which
   must be identical (the pool only changes *when* searches run, never
   *which*).

Scale knobs: ``REPRO_BENCH_SP_PAIRS`` (query count, default 250) and
``REPRO_BENCH_SP_OBJECTS`` (Phase 3 dataset size, default 300).  Run
standalone with ``python benchmarks/bench_sp_core.py [--smoke]
[--profile small|medium|stress]`` (the CI smoke mode shrinks both
workloads so the run finishes in seconds; ``--profile`` pins the
workload to a named rung of the ladder instead of the env-var knobs).
"""

from __future__ import annotations

import os
import random
import sys
import time
from pathlib import Path

OUTPUT_DIR = Path(__file__).parent / "output"
ARTIFACT = OUTPUT_DIR / "BENCH_sp_core.json"

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.config import NEATConfig  # noqa: E402
from repro.core.pipeline import NEAT  # noqa: E402
from repro.experiments.harness import export_metrics, format_table  # noqa: E402
from repro.parallel import available_cpus, pool_counters  # noqa: E402
from repro.experiments.workloads import (  # noqa: E402
    WorkloadSpec,
    build_dataset,
    build_network,
)
from repro.roadnet.shortest_path import (  # noqa: E402
    INFINITY,
    dijkstra_distance_counted,
)


def _pair_count() -> int:
    return int(os.environ.get("REPRO_BENCH_SP_PAIRS", "250"))


def _object_count() -> int:
    return int(os.environ.get("REPRO_BENCH_SP_OBJECTS", "300"))


def _sample_pairs(network, count: int, seed: int = 97):
    rng = random.Random(seed)
    ids = network.node_ids()
    return [(rng.choice(ids), rng.choice(ids)) for _ in range(count)]


def _time_queries(fn, pairs, repeats: int = 5) -> tuple[float, list[float]]:
    """Best-of-``repeats`` wall seconds and the answers for one backend.

    The minimum over repetitions is the standard noise-resistant timing
    estimate; all repetitions compute identical answers.
    """
    best = INFINITY
    values: list[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        values = [fn(a, b) for a, b in pairs]
        best = min(best, time.perf_counter() - started)
    return best, values


def run_backend_microbench(
    region: str = "MIA",
    pairs: int | None = None,
    network_scale: float | None = None,
) -> dict:
    """Dict vs CSR vs bidirectional point queries on one network."""
    network = build_network(region, network_scale)
    queries = _sample_pairs(network, pairs if pairs is not None else _pair_count())
    graph = network.csr(directed=False)

    dict_s, dict_values = _time_queries(
        lambda a, b: dijkstra_distance_counted(network, a, b)[0], queries
    )
    csr_s, csr_values = _time_queries(
        lambda a, b: graph.distance_counted(a, b)[0], queries
    )
    bidi_s, bidi_values = _time_queries(
        lambda a, b: graph.bidirectional_distance_counted(a, b)[0], queries
    )

    # The backends must agree before their timings mean anything.
    assert csr_values == dict_values
    for got, want in zip(bidi_values, dict_values):
        assert got == want or abs(got - want) <= 1e-9 * max(got, want)
    assert any(v != INFINITY for v in dict_values)

    return {
        "network": region,
        "junctions": network.junction_count,
        "segments": network.segment_count,
        "queries": len(queries),
        "dict_s": round(dict_s, 4),
        "csr_dijkstra_s": round(csr_s, 4),
        "csr_bidirectional_s": round(bidi_s, 4),
        "speedup_csr_vs_dict": round(dict_s / csr_s, 2),
        "speedup_bidirectional_vs_dict": round(dict_s / bidi_s, 2),
    }


def run_phase3_fanout(
    region: str = "SJ",
    objects: int | None = None,
    workers: int = 4,
    network_scale: float | None = None,
) -> dict:
    """opt-NEAT Phase 3 wall-clock, serial vs process-parallel.

    ``min_card=0`` keeps every flow so the pairwise distance matrix is
    large enough for the fan-out to matter (the default workloads leave
    only a handful of flows and Phase 3 finishes in milliseconds).  On a
    single-CPU host the parallel run can only be slower — the artifact
    records ``available_cpus`` so the speedup is read in context.
    """
    from repro.experiments.figures import DEFAULT_EPS

    network = build_network(region, network_scale)
    dataset = build_dataset(
        network,
        WorkloadSpec(
            region,
            objects if objects is not None else _object_count(),
            network_scale=network_scale,
        ),
    )
    eps = 2.0 * DEFAULT_EPS.get(region, 800.0)

    runs = {}
    pool_before = pool_counters()
    for worker_count in (1, workers):
        neat = NEAT(network, NEATConfig(eps=eps, min_card=0, workers=worker_count))
        result = neat.run_opt(dataset)
        runs[worker_count] = (result, neat.engine)
    pool_delta = {
        name: value - pool_before[name]
        for name, value in pool_counters().items()
        if value - pool_before[name]
    }

    serial_result, serial_engine = runs[1]
    fanned_result, fanned_engine = runs[workers]
    # Determinism guarantee: identical clusters and identical accounting.
    assert len(serial_result.clusters) == len(fanned_result.clusters)
    assert serial_result.refinement_stats == fanned_result.refinement_stats
    assert serial_engine.computations == fanned_engine.computations
    assert serial_engine.cache_hits == fanned_engine.cache_hits

    serial_refine = serial_result.timings.refine
    fanned_refine = fanned_result.timings.refine
    return {
        "network": region,
        "objects": len(dataset),
        "eps": eps,
        "workers": workers,
        "available_cpus": available_cpus(),
        "clusters": len(serial_result.clusters),
        "sp_computations": serial_engine.computations,
        "phase3_serial_s": round(serial_refine, 4),
        "phase3_parallel_s": round(fanned_refine, 4),
        "phase3_speedup": round(serial_refine / fanned_refine, 2)
        if fanned_refine
        else None,
        "total_serial_s": round(serial_result.timings.total, 4),
        "total_parallel_s": round(fanned_result.timings.total, 4),
        "pool": pool_delta,
    }


def _render(micro: dict, fanout: dict) -> str:
    lines = [
        "Shortest-path core: backend microbench "
        f"({micro['network']}, {micro['junctions']} junctions, "
        f"{micro['queries']} point queries)",
        format_table(
            ("backend", "seconds", "speedup vs dict"),
            [
                ("dict Dijkstra", micro["dict_s"], "1.0"),
                ("CSR Dijkstra", micro["csr_dijkstra_s"], micro["speedup_csr_vs_dict"]),
                (
                    "CSR bidirectional",
                    micro["csr_bidirectional_s"],
                    micro["speedup_bidirectional_vs_dict"],
                ),
            ],
        ),
        "",
        "Phase 3 fan-out: opt-NEAT refinement wall-clock "
        f"({fanout['network']}, {fanout['objects']} objects, eps={fanout['eps']}, "
        f"{fanout['available_cpus']} CPU(s) available)",
        format_table(
            ("workers", "phase3 s", "total s"),
            [
                (1, fanout["phase3_serial_s"], fanout["total_serial_s"]),
                (
                    fanout["workers"],
                    fanout["phase3_parallel_s"],
                    fanout["total_parallel_s"],
                ),
            ],
        ),
        f"phase3 speedup: {fanout['phase3_speedup']}x "
        f"({fanout['sp_computations']} shortest-path computations, "
        "identical at both settings)",
    ]
    if fanout["available_cpus"] < 2:
        lines.append(
            "note: single-CPU host — worker processes can only time-slice, "
            "so a wall-clock win is not expected here"
        )
    return "\n".join(lines)


def bench_sp_core(emit):
    """Pytest entry point: run both measurements, write the artifact."""
    micro = run_backend_microbench()
    fanout = run_phase3_fanout()
    export_metrics({"microbench": micro, "phase3": fanout}, ARTIFACT)
    emit("sp_core", _render(micro, fanout))
    assert micro["speedup_bidirectional_vs_dict"] > 1.0
    if fanout["available_cpus"] >= 4:
        # Zero-copy acceptance floor: the shared-memory pool must beat
        # serial by 2x at 4 workers (only meaningful with real CPUs).
        assert fanout["phase3_speedup"] >= 2.0


def main(argv: list[str] | None = None) -> int:
    """Standalone runner (CI smoke mode shrinks the workloads)."""
    import argparse

    from repro.tune.profiles import add_profile_argument, resolve_profile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads: checks the harness runs, not the speedups",
    )
    add_profile_argument(parser)
    parser.add_argument(
        "--append-history",
        action="store_true",
        help="append the artifact to benchmarks/history/BENCH_history.jsonl",
    )
    options = parser.parse_args(argv)

    if options.profile:
        spec = resolve_profile(options.profile).bench_spec(smoke=options.smoke)
        micro = run_backend_microbench(
            region=spec.region,
            pairs=40 if options.smoke else None,
            network_scale=spec.network_scale,
        )
        fanout = run_phase3_fanout(
            region=spec.region,
            objects=spec.object_count,
            network_scale=spec.network_scale,
        )
    elif options.smoke:
        micro = run_backend_microbench(region="ATL", pairs=40)
        fanout = run_phase3_fanout(region="ATL", objects=40, workers=4)
    else:
        micro = run_backend_microbench()
        fanout = run_phase3_fanout()
    export_metrics({"microbench": micro, "phase3": fanout}, ARTIFACT)
    print(_render(micro, fanout))
    print(f"\nwrote {ARTIFACT}")
    if options.append_history:
        from bench_history import append_entry

        entry = append_entry(ARTIFACT, profile=options.profile)
        label = f", profile {entry['profile']}" if "profile" in entry else ""
        print(
            f"appended sp_core ({entry['workload']}{label}) "
            f"@ {entry['git_sha']} to the bench ledger"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
