"""Tests for clustering-result serialization."""

from __future__ import annotations

import pytest

from repro.core.config import NEATConfig
from repro.core.flow_cluster import FlowCluster
from repro.core.pipeline import NEAT
from repro.core.serialize import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.errors import ClusteringError

from conftest import trajectory_through


@pytest.fixture
def run(small_workload):
    network, dataset = small_workload
    result = NEAT(network, NEATConfig(eps=500.0)).run_opt(dataset)
    return network, result


class TestRoundTrip:
    def test_counts_preserved(self, run):
        network, result = run
        restored = result_from_dict(result_to_dict(result), network)
        assert restored.mode == result.mode
        assert restored.min_card_used == result.min_card_used
        assert len(restored.base_clusters) == len(result.base_clusters)
        assert len(restored.flows) == len(result.flows)
        assert len(restored.noise_flows) == len(result.noise_flows)
        assert len(restored.clusters) == len(result.clusters)

    def test_flow_structure_preserved(self, run):
        network, result = run
        restored = result_from_dict(result_to_dict(result), network)
        for original, copy in zip(result.flows, restored.flows):
            assert copy.sids == original.sids
            assert copy.endpoints == original.endpoints
            assert copy.participants == original.participants
            assert copy.route_length == pytest.approx(original.route_length)

    def test_cluster_membership_preserved(self, run):
        network, result = run
        restored = result_from_dict(result_to_dict(result), network)
        for original, copy in zip(result.clusters, restored.clusters):
            assert [f.sids for f in copy.flows] == [f.sids for f in original.flows]
            assert copy.participants == original.participants

    def test_fragment_contents_preserved(self, run):
        network, result = run
        restored = result_from_dict(result_to_dict(result), network)
        for original, copy in zip(result.base_clusters, restored.base_clusters):
            assert copy.sid == original.sid
            assert copy.density == original.density
            assert copy.participants == original.participants

    def test_file_roundtrip(self, run, tmp_path):
        network, result = run
        path = tmp_path / "clustering.json"
        save_result(result, path, network_name=network.name)
        restored = load_result(path, network)
        assert len(restored.flows) == len(result.flows)


class TestValidation:
    def test_rejects_wrong_format(self, grid3x3):
        with pytest.raises(ClusteringError):
            result_from_dict({"format": "nope", "version": 1}, grid3x3)

    def test_rejects_wrong_version(self, run):
        network, result = run
        data = result_to_dict(result)
        data["version"] = 9
        with pytest.raises(ClusteringError):
            result_from_dict(data, network)


class TestFromMembers:
    def test_single_member(self, line3):
        from repro.core.base_cluster import form_base_clusters

        clusters = form_base_clusters(
            line3, [trajectory_through(line3, 0, [1])]
        )
        flow = FlowCluster.from_members(line3, clusters)
        assert flow.sids == (1,)

    def test_orientation_inferred(self, line3):
        from repro.core.base_cluster import form_base_clusters

        clusters = form_base_clusters(
            line3, [trajectory_through(line3, 0, [0, 1, 2])]
        )
        by_sid = {c.sid: c for c in clusters}
        # Reversed order: 2, 1, 0 — front must be node 3, end node 0.
        flow = FlowCluster.from_members(line3, [by_sid[2], by_sid[1], by_sid[0]])
        assert flow.sids == (2, 1, 0)
        assert flow.endpoints == (3, 0)

    def test_rejects_empty(self, line3):
        with pytest.raises(ClusteringError):
            FlowCluster.from_members(line3, [])

    def test_rejects_non_adjacent(self, line3):
        from repro.core.base_cluster import form_base_clusters

        clusters = form_base_clusters(
            line3, [trajectory_through(line3, 0, [0, 1, 2])]
        )
        by_sid = {c.sid: c for c in clusters}
        with pytest.raises(ClusteringError):
            FlowCluster.from_members(line3, [by_sid[0], by_sid[2]])


class TestDurableFormat:
    """save_result seals; load_result verifies and types every failure."""

    def test_saved_file_is_sealed_not_plain_json(self, run, tmp_path):
        network, result = run
        path = tmp_path / "clustering.json"
        save_result(result, path, network_name=network.name)
        from repro.persist.store import SNAPSHOT_MAGIC

        assert path.read_bytes().startswith(SNAPSHOT_MAGIC)

    def test_truncation_is_torn_write_with_path(self, run, tmp_path):
        from repro.errors import TornWrite

        network, result = run
        path = tmp_path / "clustering.json"
        save_result(result, path, network_name=network.name)
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(TornWrite) as excinfo:
            load_result(path, network)
        assert str(path) in str(excinfo.value)

    def test_bit_flip_is_corrupt_snapshot_with_path(self, run, tmp_path):
        from repro.errors import CorruptSnapshot

        network, result = run
        path = tmp_path / "clustering.json"
        save_result(result, path, network_name=network.name)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        path.write_bytes(bytes(blob))
        with pytest.raises(CorruptSnapshot) as excinfo:
            load_result(path, network)
        assert str(path) in str(excinfo.value)

    def test_missing_file_is_typed_not_oserror(self, run, tmp_path):
        from repro.errors import CorruptSnapshot

        network, _ = run
        with pytest.raises(CorruptSnapshot):
            load_result(tmp_path / "absent.json", network)

    def test_legacy_plain_json_still_loads(self, run, tmp_path):
        import json

        network, result = run
        path = tmp_path / "legacy.json"
        path.write_text(
            json.dumps(result_to_dict(result, network_name=network.name))
        )
        restored = load_result(path, network)
        assert len(restored.flows) == len(result.flows)

    def test_mangled_body_never_partial_result(self, run, tmp_path):
        # A decode failure *inside* a checksum-valid document must still
        # come back typed, never as a half-populated result object.
        import json

        from repro.errors import CorruptSnapshot

        network, result = run
        document = result_to_dict(result, network_name=network.name)
        del document["flows"]
        path = tmp_path / "mangled.json"
        from repro.persist.store import atomic_write, seal_snapshot

        atomic_write(
            path, seal_snapshot(json.dumps(document).encode("utf-8"))
        )
        with pytest.raises(CorruptSnapshot) as excinfo:
            load_result(path, network)
        assert str(path) in str(excinfo.value)
