"""Structural validation of NEAT results.

An independent checker for every invariant the three-phase framework
guarantees — useful to users consuming serialized results from a NEAT
server, and used by this repository's property-based tests as the single
source of truth for "is this output well-formed?".

Checked invariants:

1. base clusters are keyed by distinct, existing road segments and
   contain only matching-sid fragments;
2. Phase 1 output is density-sorted (dense-core first);
3. every base cluster belongs to exactly one flow (kept or noise) when
   Phase 2 ran — the partition is lossless;
4. every flow's representative segments form a network route;
5. every kept flow meets the resolved ``minCard``, every noise flow
   misses it;
6. final clusters partition the kept flows (when Phase 3 ran).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from ..roadnet.network import RoadNetwork
from .model import Trajectory
from .result import NEATResult


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_result` / :func:`validate_trajectories`.

    Attributes:
        errors: Human-readable invariant violations (empty = valid).
        batch_errors: The subset of violations that condemn a whole
            trajectory batch (duplicate ids — no single trajectory can be
            blamed), as opposed to per-trajectory problems.
        bad_trids: Per-trajectory problems, ``trid -> reason``.  A caller
            that prefers degraded ingest over rejection (the service's
            quarantine path) can skip exactly these and admit the rest —
            but only when ``batch_errors`` is empty.
    """

    errors: list[str] = field(default_factory=list)
    batch_errors: list[str] = field(default_factory=list)
    bad_trids: dict[int, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every invariant held."""
        return not self.errors

    def raise_if_invalid(self) -> None:
        """Raise ``ValueError`` listing the violations, if any."""
        if self.errors:
            raise ValueError(
                "invalid NEAT result:\n  " + "\n  ".join(self.errors)
            )


def validate_result(
    result: NEATResult,
    network: RoadNetwork,
    allow_shared_segments: bool = False,
) -> ValidationReport:
    """Check every structural invariant of a NEAT result.

    Args:
        result: The result to check.
        network: The road network it was computed on.
        allow_shared_segments: A single NEAT run assigns each road segment
            to exactly one base cluster and one flow; *incremental*
            snapshots (batched ingestion) legitimately hold one base
            cluster per (segment, batch), so multiple flows may cover the
            same segment.  Set this to relax the uniqueness/partition
            checks while keeping route, ``minCard``, ordering and cluster-
            partition checks.
    """
    report = ValidationReport()
    _check_base_clusters(result, network, report, allow_shared_segments)
    if result.flows or result.noise_flows:
        _check_flows(result, network, report, allow_shared_segments)
    if result.clusters:
        _check_clusters(result, report)
    return report


def validate_trajectories(
    network: RoadNetwork, trajectories: Sequence[Trajectory]
) -> ValidationReport:
    """Check a trajectory batch *before* it enters the pipeline.

    The ingest-side counterpart of :func:`validate_result`: a NEAT server
    admits client batches only after this passes, so a malformed batch is
    rejected at the door instead of poisoning the retained flow pool.

    Checked per trajectory (reported in ``bad_trids`` so callers can
    quarantine individuals): every location references a segment of
    ``network``, coordinates and timestamps are finite (NaN/inf would
    poison every distance downstream), and timestamps are non-decreasing
    — checked NaN-safely, since the :class:`~repro.core.model.Trajectory`
    constructor's ``later < earlier`` comparison is silently ``False``
    for NaN.  Checked per batch (reported in ``batch_errors``):
    trajectory ids are unique.
    """
    report = ValidationReport()
    seen_trids: set[int] = set()
    for trajectory in trajectories:
        if trajectory.trid in seen_trids:
            message = f"duplicate trajectory id in batch: {trajectory.trid}"
            report.errors.append(message)
            report.batch_errors.append(message)
        seen_trids.add(trajectory.trid)
        reason = _trajectory_problem(network, trajectory)
        if reason is not None:
            report.errors.append(f"trajectory {trajectory.trid} {reason}")
            report.bad_trids.setdefault(trajectory.trid, reason)
    return report


def _trajectory_problem(
    network: RoadNetwork, trajectory: Trajectory
) -> str | None:
    """The first admission-blocking defect of one trajectory, or None."""
    previous_t: float | None = None
    for location in trajectory.locations:
        if not network.has_segment(location.sid):
            return f"references unknown segment {location.sid}"
        if not (math.isfinite(location.x) and math.isfinite(location.y)):
            return f"has non-finite coordinates ({location.x}, {location.y})"
        if not math.isfinite(location.t):
            return f"has non-finite timestamp {location.t}"
        # ``not >=`` instead of ``<`` so a NaN that sneaked into an
        # earlier sample cannot make the comparison silently pass.
        if previous_t is not None and not (location.t >= previous_t):
            return (
                f"has non-monotonic timestamps "
                f"({location.t} after {previous_t})"
            )
        previous_t = location.t
    return None


def _check_base_clusters(
    result: NEATResult,
    network: RoadNetwork,
    report: ValidationReport,
    allow_shared_segments: bool = False,
) -> None:
    seen: set[int] = set()
    previous_density: int | None = None
    for cluster in result.base_clusters:
        if cluster.sid in seen and not allow_shared_segments:
            report.errors.append(f"duplicate base cluster for segment {cluster.sid}")
        seen.add(cluster.sid)
        if not network.has_segment(cluster.sid):
            report.errors.append(f"base cluster on unknown segment {cluster.sid}")
        for fragment in cluster.fragments:
            if fragment.sid != cluster.sid:
                report.errors.append(
                    f"fragment of trajectory {fragment.trid} on segment "
                    f"{fragment.sid} filed under base cluster {cluster.sid}"
                )
        if previous_density is not None and cluster.density > previous_density:
            report.errors.append(
                "base clusters not density-sorted "
                f"(density {cluster.density} after {previous_density})"
            )
        previous_density = cluster.density


def _check_flows(
    result: NEATResult,
    network: RoadNetwork,
    report: ValidationReport,
    allow_shared_segments: bool = False,
) -> None:
    assigned: dict[int, int] = {}
    for kind, flows in (("flow", result.flows), ("noise", result.noise_flows)):
        for flow in flows:
            if len(flow.sids) > 1 and not network.is_route(flow.sids):
                report.errors.append(
                    f"{kind} cluster route is not a network path: {flow.sids}"
                )
            for sid in flow.sids:
                if sid in assigned and not allow_shared_segments:
                    report.errors.append(
                        f"segment {sid} assigned to two flows"
                    )
                assigned[sid] = flow.trajectory_cardinality
            if kind == "flow" and flow.trajectory_cardinality < result.min_card_used:
                report.errors.append(
                    f"kept flow below minCard: {flow.trajectory_cardinality} "
                    f"< {result.min_card_used}"
                )
            if kind == "noise" and flow.trajectory_cardinality >= max(
                1, result.min_card_used
            ):
                report.errors.append(
                    f"noise flow meets minCard: {flow.trajectory_cardinality} "
                    f">= {result.min_card_used}"
                )
    base_sids = {cluster.sid for cluster in result.base_clusters}
    if set(assigned) != base_sids:
        missing = base_sids - set(assigned)
        extra = set(assigned) - base_sids
        if missing:
            report.errors.append(f"base clusters not in any flow: {sorted(missing)[:5]}")
        if extra:
            report.errors.append(f"flows reference unknown base clusters: {sorted(extra)[:5]}")


def _check_clusters(result: NEATResult, report: ValidationReport) -> None:
    clustered = [id(flow) for cluster in result.clusters for flow in cluster.flows]
    if len(clustered) != len(set(clustered)):
        report.errors.append("a flow appears in two final clusters")
    kept = {id(flow) for flow in result.flows}
    if set(clustered) != kept:
        report.errors.append(
            "final clusters do not partition the kept flows "
            f"({len(clustered)} clustered vs {len(kept)} kept)"
        )
    for index, cluster in enumerate(result.clusters):
        if not cluster.flows:
            report.errors.append(f"final cluster {index} is empty")
