"""Opt-in smoke run of every example script (REPRO_RUN_EXAMPLES=1).

Examples are living documentation; this module keeps them executable.
Skipped by default because the full set takes a few minutes (the TraClus
comparison dominates).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(
    path for path in EXAMPLES_DIR.glob("*.py")
)

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_RUN_EXAMPLES") != "1",
    reason="example smoke runs are opt-in (REPRO_RUN_EXAMPLES=1)",
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_cleanly(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"
