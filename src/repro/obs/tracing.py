"""Span tracing: nested wall-clock timers collected into a trace tree.

A :class:`Tracer` hands out :class:`Span` context managers::

    tracer = Tracer()
    with tracer.span("neat.run"):
        with tracer.span("phase1.fragmentation"):
            ...

Spans opened while another span is active become its children, so one run
produces a tree mirroring the call structure.  The tree exports to plain
dicts (:meth:`Tracer.to_dict`) for JSON dumping, and :meth:`Tracer.find`
fetches a span by name for assertions and derived views (the pipeline's
``PhaseTimings`` is exactly that).

:class:`NullTracer` (singleton :data:`NULL_TRACER`) implements the same
surface with a single reusable no-op context manager, so instrumented hot
paths cost one attribute lookup and an empty ``with`` block when tracing
is disabled.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Iterator


class Span:
    """One timed region: a name, start/end stamps and child spans."""

    __slots__ = ("name", "start", "end", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.start = 0.0
        self.end = 0.0
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        """Wall-clock seconds between enter and exit (0 while open)."""
        return max(self.end - self.start, 0.0)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible subtree: name, duration and children."""
        document: dict[str, Any] = {
            "name": self.name,
            "duration_s": self.duration,
        }
        if self.children:
            document["children"] = [child.to_dict() for child in self.children]
        return document

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration:.6f}s, {len(self.children)} children)"


class _SpanContext:
    """Context manager entering/exiting one span on its tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        tracer = self._tracer
        parent = tracer._stack[-1] if tracer._stack else None
        (parent.children if parent is not None else tracer.roots).append(self._span)
        tracer._stack.append(self._span)
        self._span.start = perf_counter()
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._span.end = perf_counter()
        self._tracer._stack.pop()


class Tracer:
    """Collects spans into a forest of trace trees.

    Not thread-safe: one tracer per run/worker, by design (the pipeline
    creates a fresh one per :meth:`~repro.core.pipeline.NEAT.run`).
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str) -> _SpanContext:
        """A context manager timing ``name`` nested under the open span."""
        return _SpanContext(self, Span(name))

    def find(self, name: str) -> Span | None:
        """First span named ``name`` across all recorded trees."""
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self) -> list[dict[str, Any]]:
        """The recorded trees as JSON-compatible dicts."""
        return [root.to_dict() for root in self.roots]

    def reset(self) -> None:
        """Drop every recorded span (open spans must not be on the stack)."""
        if self._stack:
            raise RuntimeError("cannot reset a tracer with open spans")
        self.roots.clear()


class _NullSpan(Span):
    """The span no-op contexts yield; always zero duration, no children."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("<null>")


class _NullSpanContext:
    __slots__ = ("_span",)

    def __init__(self) -> None:
        self._span = _NullSpan()

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        return None


class NullTracer(Tracer):
    """A tracer that records nothing and allocates nothing per span."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_context = _NullSpanContext()

    def span(self, name: str) -> _NullSpanContext:  # type: ignore[override]
        return self._null_context


#: Shared no-op tracer for disabled telemetry.
NULL_TRACER = NullTracer()
