"""Unit tests for junction-crossing inference between segments."""

from __future__ import annotations

import pytest

from repro.errors import NoPathError
from repro.mapmatch.path_inference import infer_crossings
from repro.roadnet.geometry import Point
from repro.roadnet.network import RoadNetwork


class TestInferCrossings:
    def test_same_segment_no_crossings(self, line3):
        assert infer_crossings(line3, 0, 0) == []

    def test_adjacent_single_crossing(self, line3):
        crossings = infer_crossings(line3, 0, 1)
        assert len(crossings) == 1
        assert crossings[0].node_id == 1
        assert crossings[0].sid == 1

    def test_skipped_segment(self, line3):
        crossings = infer_crossings(line3, 0, 2)
        assert [(c.node_id, c.sid) for c in crossings] == [(1, 1), (2, 2)]

    def test_long_gap(self):
        from repro.roadnet.builder import line_network

        net = line_network(6)
        crossings = infer_crossings(net, 0, 5)
        assert [c.sid for c in crossings] == [1, 2, 3, 4, 5]
        assert [c.node_id for c in crossings] == [1, 2, 3, 4, 5]

    def test_last_crossing_enters_target(self, grid3x3):
        for target in grid3x3.segment_ids():
            if target == 0 or grid3x3.are_adjacent(0, target):
                continue
            crossings = infer_crossings(grid3x3, 0, target)
            assert crossings[-1].sid == target
            break

    def test_crossings_form_walkable_sequence(self, grid3x3):
        crossings = infer_crossings(grid3x3, 0, 11)
        previous_sid = 0
        for crossing in crossings:
            # Each crossing's junction joins the previous segment and the
            # entered segment.
            assert grid3x3.segment(previous_sid).has_endpoint(crossing.node_id)
            assert grid3x3.segment(crossing.sid).has_endpoint(crossing.node_id)
            previous_sid = crossing.sid

    def test_disconnected_raises(self):
        net = RoadNetwork()
        for x in range(4):
            net.add_junction(Point(x * 100.0, 0.0))
        net.add_junction(Point(0.0, 5000.0))
        net.add_junction(Point(100.0, 5000.0))
        a = net.add_segment(0, 1)
        net.add_segment(1, 2)
        b = net.add_segment(4, 5)
        with pytest.raises(NoPathError):
            infer_crossings(net, a, b)

    def test_picks_shortest_connection(self, grid3x3):
        # Segments on opposite corners: the crossing count must match the
        # shortest segment path, never a detour.
        crossings = infer_crossings(grid3x3, 0, 11)
        # Grid 3x3: segment 0 is (0-1) bottom-left, 11 is (7-8)? Regardless,
        # the route between nearest endpoints is at most 4 hops here.
        assert len(crossings) <= 4
