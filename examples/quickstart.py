#!/usr/bin/env python3
"""Quickstart: cluster simulated trajectories with NEAT in ~20 lines.

Builds a small Atlanta-like road network, simulates 200 commuters leaving
two hotspots for three destinations, runs the full three-phase NEAT
pipeline and prints what each phase produced.

Run:  python examples/quickstart.py
"""

from repro.core import NEAT, NEATConfig
from repro.mobisim import SimulationConfig, simulate_dataset
from repro.roadnet import atlanta_like

# 1. A road network.  `atlanta_like` generates a synthetic map whose
#    structure (junction degrees, segment lengths) matches the paper's
#    North-West Atlanta extract at a configurable scale.
network = atlanta_like(scale=0.1)
print(f"Network: {network}")

# 2. Mobility traces.  Objects start near two hotspots and drive, at the
#    speed limit, along shortest paths to one of three destinations,
#    logging (segment, x, y, t) every 5 seconds.
dataset = simulate_dataset(
    network,
    SimulationConfig(object_count=200, sample_interval=5.0, name="quickstart"),
)
print(f"Dataset: {len(dataset)} trajectories, {dataset.total_points} points")

# 3. Cluster.  eps is the Phase 3 network-distance threshold for merging
#    nearby flows; minCard defaults to the mean flow cardinality.
neat = NEAT(network, NEATConfig(eps=800.0))
result = neat.run_opt(dataset)

print(f"\n{result.summary()}\n")

print("Top flow clusters (Phase 2):")
for index, flow in enumerate(result.flows[:5]):
    print(
        f"  flow {index}: {len(flow)} segments, "
        f"{flow.trajectory_cardinality} trajectories, "
        f"route {flow.route_length / 1000:.1f} km"
    )

print("\nFinal trajectory clusters (Phase 3):")
for cluster in result.clusters:
    print(
        f"  cluster {cluster.cluster_id}: {len(cluster.flows)} flows, "
        f"{cluster.trajectory_cardinality} trajectories, "
        f"{cluster.total_route_length / 1000:.1f} km of routes"
    )

print(
    f"\nPhase timings: base={result.timings.base:.3f}s "
    f"flow={result.timings.flow:.3f}s refine={result.timings.refine:.3f}s"
)

# 4. Export for GIS tooling (QGIS, kepler.gl, deck.gl).
from pathlib import Path

from repro.analysis import flows_geojson, save_geojson

out = Path(__file__).parent / "output"
out.mkdir(exist_ok=True)
path = save_geojson(flows_geojson(network, result.flows), out / "flows.geojson")
print(f"Flows exported to {path}")
