"""CSV import/export of road networks (real-data adoption path).

The paper builds its maps from USGS/TIGER extracts; real deployments
usually have a node table and an edge table.  This module reads/writes
that shape:

``nodes.csv``::

    node_id,x,y
    0,1000.5,2200.0

``edges.csv``::

    sid,node_u,node_v,length,speed_limit,bidirectional,road_class
    0,0,1,154.2,13.9,1,local

``length``, ``speed_limit``, ``bidirectional`` and ``road_class`` are
optional columns; missing values fall back to the chord length, the
default speed limit, bidirectional, and ``"local"`` respectively.
"""

from __future__ import annotations

import csv
from pathlib import Path

from ..errors import RoadNetworkError
from .geometry import Point
from .network import RoadNetwork
from .segment import DEFAULT_SPEED_LIMIT

NODE_FIELDS = ("node_id", "x", "y")
EDGE_FIELDS = (
    "sid", "node_u", "node_v", "length", "speed_limit", "bidirectional",
    "road_class",
)


def save_network_csv(
    network: RoadNetwork, nodes_path: str | Path, edges_path: str | Path
) -> None:
    """Write a network as a node table and an edge table."""
    with open(nodes_path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(NODE_FIELDS)
        for junction in network.junctions():
            writer.writerow(
                [junction.node_id, junction.point.x, junction.point.y]
            )
    with open(edges_path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(EDGE_FIELDS)
        for segment in network.segments():
            writer.writerow(
                [
                    segment.sid, segment.node_u, segment.node_v,
                    segment.length, segment.speed_limit,
                    int(segment.bidirectional), segment.road_class,
                ]
            )


def load_network_csv(
    nodes_path: str | Path,
    edges_path: str | Path,
    name: str = "csv-network",
) -> RoadNetwork:
    """Read a network from node/edge CSV tables.

    Raises:
        RoadNetworkError: on missing required columns or malformed rows.
    """
    network = RoadNetwork(name=name)
    with open(nodes_path, newline="") as handle:
        reader = csv.DictReader(handle)
        _require(reader.fieldnames, ("node_id", "x", "y"), nodes_path)
        for row_number, row in enumerate(reader, start=2):
            try:
                network.add_junction(
                    Point(float(row["x"]), float(row["y"])),
                    node_id=int(row["node_id"]),
                )
            except (TypeError, ValueError) as error:
                raise RoadNetworkError(
                    f"{nodes_path}:{row_number}: bad node row ({error})"
                ) from error

    with open(edges_path, newline="") as handle:
        reader = csv.DictReader(handle)
        _require(reader.fieldnames, ("sid", "node_u", "node_v"), edges_path)
        for row_number, row in enumerate(reader, start=2):
            try:
                length_raw = row.get("length")
                speed_raw = row.get("speed_limit")
                bidir_raw = row.get("bidirectional")
                network.add_segment(
                    int(row["node_u"]),
                    int(row["node_v"]),
                    length=float(length_raw) if length_raw else None,
                    speed_limit=(
                        float(speed_raw) if speed_raw else DEFAULT_SPEED_LIMIT
                    ),
                    bidirectional=(
                        bool(int(bidir_raw)) if bidir_raw not in (None, "") else True
                    ),
                    road_class=row.get("road_class") or "local",
                    sid=int(row["sid"]),
                )
            except RoadNetworkError:
                raise
            except (TypeError, ValueError) as error:
                raise RoadNetworkError(
                    f"{edges_path}:{row_number}: bad edge row ({error})"
                ) from error
    return network


def _require(
    fieldnames, required: tuple[str, ...], path: str | Path
) -> None:
    present = set(fieldnames or ())
    missing = [column for column in required if column not in present]
    if missing:
        raise RoadNetworkError(f"{path}: missing columns {missing}")
