"""Metrics instruments and the registry they live in.

Three instrument kinds, matching the Prometheus data model:

* :class:`Counter` — monotonically increasing total (``inc``);
* :class:`Gauge` — a value that goes both ways (``set``/``inc``/``dec``);
* :class:`Histogram` — bucketed observations with running count and sum.

A :class:`MetricsRegistry` owns instruments by dotted name
(``neat.phase3.elb_pruned``) with get-or-create semantics, and exports
the whole family either as a JSON-compatible dict (:meth:`as_dict`) or
as Prometheus text exposition format (:meth:`to_prometheus`, dots
becoming underscores).  Everything is plain Python on purpose: an
``inc()`` is one float add, cheap enough to leave enabled in production
paths.

The registry itself is **thread-safe**: get-or-create, lookups and the
bulk exports hold an internal lock, so the exposition server can scrape
``to_prometheus()`` while pipeline threads register and bump
instruments.  Individual instrument mutations stay lock-free — each
instrument has a single writer by design (one tracer/pipeline per run),
and a scrape racing one float add reads an at-most-one-event-stale
value, which Prometheus semantics tolerate.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Any, Iterator

_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

#: Default latency buckets (seconds), Prometheus-style.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _format_number(value: float) -> str:
    """Render ints without a trailing ``.0`` (Prometheus-friendly)."""
    return str(int(value)) if float(value).is_integer() else repr(float(value))


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def as_dict(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value that can move in both directions."""

    kind = "gauge"
    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0.0

    def as_dict(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Bucketed observations with a running count and sum.

    Buckets are upper bounds (``le``); an observation lands in the first
    bucket whose bound is >= the value, mirroring Prometheus semantics
    (the implicit ``+Inf`` bucket catches the rest).
    """

    kind = "histogram"
    __slots__ = ("name", "description", "buckets", "bucket_counts", "count", "sum")

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.description = description
        bounds = tuple(sorted(set(buckets if buckets is not None else DEFAULT_BUCKETS)))
        if not bounds:
            raise ValueError(f"histogram {self.name!r} needs at least one bucket")
        self.buckets = bounds
        self.bucket_counts = [0] * len(bounds)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        index = bisect_left(self.buckets, value)
        if index < len(self.buckets):
            self.bucket_counts[index] += 1

    @property
    def mean(self) -> float:
        """Average observed value (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at ``+Inf``."""
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.buckets, self.bucket_counts):
            running += bucket_count
            pairs.append((bound, running))
        pairs.append((float("inf"), self.count))
        return pairs

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by interpolating cumulative buckets.

        Same estimator as Prometheus' ``histogram_quantile``: linear
        interpolation inside the bucket the target rank falls into, with
        the first bucket's lower edge taken as 0.  Observations beyond
        the last finite bound cannot be interpolated, so a rank landing
        in the ``+Inf`` tail returns the highest finite bucket bound.

        Returns 0.0 for an empty histogram.

        Raises:
            ValueError: ``q`` outside ``[0, 1]``.
        """
        return quantile_from_cumulative(self.cumulative_buckets(), self.count, q)

    def reset(self) -> None:
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "buckets": {
                ("+Inf" if bound == float("inf") else _format_number(bound)): total
                for bound, total in self.cumulative_buckets()
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count}, sum={self.sum})"


def quantile_from_cumulative(
    pairs: list[tuple[float, int]], count: int, q: float
) -> float:
    """The ``q``-quantile of ``(upper_bound, cumulative_count)`` pairs.

    Shared by :meth:`Histogram.quantile` and windowed evaluations (the
    SLO watchdog diffs two bucket snapshots and interpolates the delta).
    ``pairs`` must be sorted by bound and end with the ``+Inf`` bucket.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if count <= 0:
        return 0.0
    target = q * count
    highest_finite = 0.0
    previous_bound = 0.0
    previous_cumulative = 0
    for bound, cumulative in pairs:
        if bound != float("inf"):
            highest_finite = bound
        if cumulative >= target:
            if bound == float("inf"):
                return highest_finite
            in_bucket = cumulative - previous_cumulative
            if in_bucket <= 0:
                return bound
            fraction = (target - previous_cumulative) / in_bucket
            fraction = min(max(fraction, 0.0), 1.0)
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_cumulative = bound, cumulative
    return highest_finite


Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Named instruments with get-or-create access and bulk export.

    Registry-level operations (creation, lookup, iteration, the bulk
    exports, :meth:`reset`) are serialized by an internal re-entrant
    lock, so concurrent readers (the ``/metrics`` exposition server) and
    writers (pipeline/service threads creating instruments on first use)
    never observe a half-built instrument table.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}
        self._lock = threading.RLock()

    # -- creation / lookup ---------------------------------------------
    def _get_or_create(self, cls, name: str, description: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, requested {cls.kind}"
                    )
                return existing
            instrument = cls(name, description, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        """The counter called ``name`` (created on first request)."""
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        """The gauge called ``name`` (created on first request)."""
        return self._get_or_create(Gauge, name, description)

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        """The histogram called ``name`` (created on first request)."""
        return self._get_or_create(Histogram, name, description, buckets=buckets)

    def inc(self, name: str, amount: float = 1.0, description: str = "") -> None:
        """Bump the counter called ``name`` (created on first use).

        A one-line convenience for event-shaped instrumentation
        (``registry.inc("resilience.retries")``) where holding the
        instrument object would be noise.
        """
        self.counter(name, description).inc(amount)

    def get(self, name: str) -> Instrument | None:
        """The instrument called ``name``, or None."""
        with self._lock:
            return self._instruments.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """A counter/gauge's current value (``default`` when absent)."""
        with self._lock:
            instrument = self._instruments.get(name)
        if instrument is None:
            return default
        if isinstance(instrument, Histogram):
            raise TypeError(f"metric {name!r} is a histogram; read .count/.sum")
        return instrument.value

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._instruments

    def __iter__(self) -> Iterator[Instrument]:
        with self._lock:
            return iter(list(self._instruments.values()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    # -- lifecycle ------------------------------------------------------
    def reset(self) -> None:
        """Zero every instrument (registrations are kept)."""
        with self._lock:
            for instrument in self._instruments.values():
                instrument.reset()

    # -- export ---------------------------------------------------------
    def _sorted_instruments(self) -> list[Instrument]:
        with self._lock:
            return [
                self._instruments[name] for name in sorted(self._instruments)
            ]

    def as_dict(self) -> dict[str, Any]:
        """Snapshot: ``{"counters": {...}, "gauges": {...}, "histograms": {...}}``."""
        document: dict[str, dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for instrument in self._sorted_instruments():
            document[instrument.kind + "s"][instrument.name] = instrument.as_dict()
        return document

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format.

        ``HELP`` text is escaped per the exposition format (backslashes
        and newlines), and dotted names are sanitized through
        :func:`prometheus_name` — two dotted names may collide after
        sanitization (``a.b`` and ``a_b``); both series are emitted and
        the scraper's last-wins/duplicate handling applies.
        """
        lines: list[str] = []
        for instrument in self._sorted_instruments():
            prom = prometheus_name(instrument.name)
            if instrument.description:
                lines.append(
                    f"# HELP {prom} {escape_help(instrument.description)}"
                )
            lines.append(f"# TYPE {prom} {instrument.kind}")
            if isinstance(instrument, Histogram):
                for bound, total in instrument.cumulative_buckets():
                    le = "+Inf" if bound == float("inf") else _format_number(bound)
                    lines.append(f'{prom}_bucket{{le="{le}"}} {total}')
                lines.append(f"{prom}_sum {_format_number(instrument.sum)}")
                lines.append(f"{prom}_count {instrument.count}")
            else:
                lines.append(f"{prom} {_format_number(instrument.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def prometheus_name(name: str) -> str:
    """A dotted instrument name as a valid Prometheus metric name."""
    sanitized = _PROM_SANITIZE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def escape_help(text: str) -> str:
    """``HELP`` text escaped per the exposition format.

    Backslashes and line feeds are the two characters the format
    escapes in HELP lines; anything else passes through verbatim.
    """
    return text.replace("\\", "\\\\").replace("\n", "\\n")
