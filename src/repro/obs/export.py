"""Timeline exporters: Chrome trace-event JSON and folded flamegraph stacks.

Two views of the same span forest:

* :func:`chrome_trace` — the Trace Event Format consumed by Perfetto /
  ``chrome://tracing`` (one complete ``"ph": "X"`` event per span, with
  microsecond ``ts``/``dur`` on the tracer's monotonic timeline);
* :func:`folded_stacks` / :func:`folded_text` — Brendan Gregg's folded
  stack format (``neat.run;phase3.refinement 812345``), where each line
  carries a span path's *self* time in integer microseconds, so piping
  the text through ``flamegraph.pl`` renders the run as a flame graph.

Every function accepts the same ``source`` shapes: a live
:class:`~repro.obs.tracing.Tracer`, a telemetry snapshot
(``{"trace": [...], ...}`` — what :attr:`NEATResult.telemetry` and
``--metrics-out`` carry), or the bare list of span-tree dicts.  Spans
exported before the timeline fields existed (no ``start_offset_s``) are
laid out sequentially from their durations, so old snapshots still load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .tracing import Tracer

#: Microseconds per second (trace-event timestamps are integer-ish µs).
_US = 1_000_000.0


def _as_roots(source: Any) -> list[dict[str, Any]]:
    """Normalize any supported ``source`` into span-tree dicts."""
    if isinstance(source, Tracer):
        return source.to_dict()
    if isinstance(source, dict):
        trace = source.get("trace")
        if trace is None:
            raise TypeError(
                "snapshot dict has no 'trace' key; pass a Telemetry "
                "snapshot, a Tracer, or the span-tree list itself"
            )
        return list(trace)
    return list(source)


def _layout(node: dict[str, Any], cursor_s: float) -> dict[str, Any]:
    """``node`` with offsets present, children laid out sequentially.

    Spans recorded with the timeline fields pass through unchanged;
    legacy spans (duration only) are placed at ``cursor_s`` with their
    children packed back-to-back from the parent's start.
    """
    start = node.get("start_offset_s")
    duration = float(node.get("duration_s", 0.0))
    if start is None:
        start = cursor_s
    start = float(start)
    end = float(node.get("end_offset_s", start + duration))
    placed: dict[str, Any] = {
        "name": str(node.get("name", "<anonymous>")),
        "duration_s": duration,
        "start_offset_s": start,
        "end_offset_s": end,
    }
    child_cursor = start
    children = []
    for child in node.get("children", ()):
        placed_child = _layout(child, child_cursor)
        child_cursor = placed_child["end_offset_s"]
        children.append(placed_child)
    if children:
        placed["children"] = children
    return placed


def normalized_spans(source: Any) -> list[dict[str, Any]]:
    """The span forest of ``source`` with timeline offsets guaranteed."""
    roots: list[dict[str, Any]] = []
    cursor = 0.0
    for root in _as_roots(source):
        placed = _layout(root, cursor)
        cursor = placed["end_offset_s"]
        roots.append(placed)
    return roots


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def trace_events(
    source: Any, pid: int = 1, tid: int = 1, cat: str = "neat"
) -> list[dict[str, Any]]:
    """Complete (``"ph": "X"``) trace events for every span, depth-first."""
    events: list[dict[str, Any]] = []

    def emit(node: dict[str, Any]) -> None:
        events.append(
            {
                "name": node["name"],
                "cat": cat,
                "ph": "X",
                "ts": round(node["start_offset_s"] * _US, 3),
                "dur": round(node["duration_s"] * _US, 3),
                "pid": pid,
                "tid": tid,
                "args": {},
            }
        )
        for child in node.get("children", ()):
            emit(child)

    for root in normalized_spans(source):
        emit(root)
    return events


def chrome_trace(
    source: Any, pid: int = 1, tid: int = 1, process_name: str = "repro"
) -> dict[str, Any]:
    """A Perfetto-loadable Trace Event Format document.

    The two metadata events name the process/thread in the viewer; the
    tracer's wall-clock epoch (when the source is a live tracer) rides
    along in ``otherData`` so a trace can be correlated with logs.
    """
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": process_name},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": "pipeline"},
        },
    ]
    document: dict[str, Any] = {
        "traceEvents": metadata + trace_events(source, pid=pid, tid=tid),
        "displayTimeUnit": "ms",
    }
    if isinstance(source, Tracer):
        document["otherData"] = {"epoch_unix": source.epoch_unix}
    return document


def save_chrome_trace(source: Any, path: str | Path) -> Path:
    """Write :func:`chrome_trace` as JSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(chrome_trace(source), indent=2) + "\n")
    return target


# ----------------------------------------------------------------------
# Folded flamegraph stacks
# ----------------------------------------------------------------------
def _span_us(node: dict[str, Any]) -> int:
    return int(round(float(node["duration_s"]) * _US))


def folded_stacks(source: Any) -> dict[str, int]:
    """``{"a;b;c": self_time_us}`` for every span path in the forest.

    Self time is the span's duration minus its children's, in integer
    microseconds, so summing every value telescopes back to the total
    duration of the root spans (the total profiled time) exactly —
    ``assert sum(folded.values()) == sum(root µs)`` holds by
    construction whenever children nest inside their parents.
    """
    stacks: dict[str, int] = {}

    def walk(node: dict[str, Any], prefix: str) -> None:
        path = f"{prefix};{node['name']}" if prefix else node["name"]
        children = node.get("children", ())
        self_us = _span_us(node) - sum(_span_us(child) for child in children)
        stacks[path] = stacks.get(path, 0) + max(self_us, 0)
        for child in children:
            walk(child, path)

    for root in normalized_spans(source):
        walk(root, "")
    return stacks


def folded_text(source: Any) -> str:
    """:func:`folded_stacks` in the one-line-per-stack flamegraph format."""
    stacks = folded_stacks(source)
    return "\n".join(f"{path} {value}" for path, value in sorted(stacks.items()))


def save_folded(source: Any, path: str | Path) -> Path:
    """Write :func:`folded_text` (plus trailing newline); returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    text = folded_text(source)
    target.write_text(text + "\n" if text else "")
    return target
