"""Unit and behaviour tests for the TraClus pipeline and network variant."""

from __future__ import annotations

import pytest

from repro.core.base_cluster import form_base_clusters
from repro.traclus.grouping import TraClusParams
from repro.traclus.network_variant import base_cluster_distance, network_traclus
from repro.traclus.traclus import TraClus
from repro.roadnet.shortest_path import ShortestPathEngine

from conftest import trajectory_through


class TestTraClusPipeline:
    def test_runs_on_simulated_workload(self, small_workload):
        _network, dataset = small_workload
        result = TraClus(TraClusParams(eps=10.0, min_lns=3)).run(dataset)
        assert result.segment_count > 0
        assert result.partition_seconds >= 0.0
        assert result.grouping_seconds >= 0.0
        assert result.total_seconds == pytest.approx(
            result.partition_seconds + result.grouping_seconds
        )

    def test_degenerate_params_shatter_clusters(self, small_workload):
        # Figure 4's contrast: eps=1/MinLns=1 yields many more, smaller
        # clusters than the tuned setting.
        _network, dataset = small_workload
        tuned = TraClus(TraClusParams(eps=10.0, min_lns=5)).run(dataset)
        degenerate = TraClus(TraClusParams(eps=1.0, min_lns=1)).run(dataset)
        assert degenerate.cluster_count > tuned.cluster_count

    def test_representative_lengths_nonnegative(self, small_workload):
        _network, dataset = small_workload
        result = TraClus(TraClusParams(eps=10.0, min_lns=3)).run(dataset)
        for length in result.representative_lengths():
            assert length >= 0.0

    def test_accepts_plain_list(self, line3):
        trs = [trajectory_through(line3, i, [0, 1, 2]) for i in range(5)]
        result = TraClus(TraClusParams(eps=15.0, min_lns=3)).run(trs)
        assert result.segment_count > 0


class TestNetworkVariant:
    def test_distance_zero_for_same_cluster(self, line3):
        trs = [trajectory_through(line3, 0, [0, 1])]
        clusters = form_base_clusters(line3, trs)
        engine = ShortestPathEngine(line3)
        assert base_cluster_distance(engine, line3, clusters[0], clusters[0]) == 0.0

    def test_distance_symmetric(self, grid3x3):
        trs = [trajectory_through(grid3x3, 0, [0, 1]), trajectory_through(grid3x3, 1, [10, 11])]
        clusters = form_base_clusters(grid3x3, trs)
        engine = ShortestPathEngine(grid3x3)
        a, b = clusters[0], clusters[-1]
        assert base_cluster_distance(engine, grid3x3, a, b) == pytest.approx(
            base_cluster_distance(engine, grid3x3, b, a)
        )

    def test_groups_nearby_base_clusters(self, line3):
        trs = [trajectory_through(line3, i, [0, 1, 2]) for i in range(3)]
        clusters = form_base_clusters(line3, trs)
        result = network_traclus(line3, clusters, eps=150.0, min_lns=2)
        assert result.base_cluster_count == 3
        assert result.cluster_count == 1

    def test_far_base_clusters_separate(self, small_workload):
        network, dataset = small_workload
        clusters = form_base_clusters(network, dataset.trajectories)
        result = network_traclus(network, clusters, eps=100.0, min_lns=2)
        assert result.cluster_count >= 1
        assert result.shortest_path_computations > 0

    def test_empty_input(self, line3):
        result = network_traclus(line3, [], eps=100.0)
        assert result.cluster_count == 0
        assert result.shortest_path_computations == 0

    def test_variant_slower_than_neat_phase2(self, small_workload):
        """The Section IV-C claim: all-pairs network distances dominate."""
        import time

        from repro.core.config import NEATConfig
        from repro.core.flow_formation import form_flow_clusters

        network, dataset = small_workload
        clusters = form_base_clusters(network, dataset.trajectories)

        started = time.perf_counter()
        form_flow_clusters(network, clusters, NEATConfig(min_card=0))
        neat_phase2 = time.perf_counter() - started

        started = time.perf_counter()
        network_traclus(network, clusters, eps=300.0, min_lns=2)
        variant = time.perf_counter() - started
        assert variant > neat_phase2
