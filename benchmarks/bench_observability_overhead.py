"""Overhead of the telemetry layer on the opt-NEAT hot path.

One measurement, one artifact (``output/BENCH_observability_overhead.json``):
three configurations of the same opt-NEAT run on a synthetic network —

* **bare** — the phase functions called directly with no telemetry
  arguments at all (the pre-telemetry code path);
* **disabled** — the pipeline with ``Telemetry.disabled()`` (null tracer,
  no metric publication; what a latency-critical deployment would run);
* **enabled** — the default pipeline (spans + per-phase counters).

The acceptance bar is that the *disabled* path stays within 2% of bare:
with the null tracer a run pays three empty ``with`` blocks and a few
``None`` checks.  The measurement uses best-of-N wall times, which is
robust to scheduler noise in a way means are not.  The artifact also
records the enabled run's phase counters, which are deterministic for a
fixed workload and therefore gateable by ``check_perf_regression.py``
and trendable by ``bench_history.py``.

Run standalone with ``python benchmarks/bench_observability_overhead.py
[--smoke]`` (smoke mode shrinks the workload so CI finishes in seconds;
the <2% assertion applies only at full scale — CI gates the smoke
artifact through ``check_perf_regression.py --key-max`` instead).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

OUTPUT_DIR = Path(__file__).parent / "output"
ARTIFACT = OUTPUT_DIR / "BENCH_observability_overhead.json"

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.base_cluster import form_base_clusters  # noqa: E402
from repro.core.config import NEATConfig  # noqa: E402
from repro.core.flow_formation import form_flow_clusters  # noqa: E402
from repro.core.pipeline import NEAT  # noqa: E402
from repro.core.refinement import refine_flow_clusters  # noqa: E402
from repro.experiments.harness import export_metrics, format_table  # noqa: E402
from repro.experiments.workloads import (  # noqa: E402
    WorkloadSpec,
    build_dataset,
    build_network,
)
from repro.obs import Telemetry  # noqa: E402
from repro.roadnet.shortest_path import ShortestPathEngine  # noqa: E402

ROUNDS = 10
OBJECTS = 200
EPS = 1000.0
REGION = "ATL"


def _workload(
    objects: int, region: str = REGION, network_scale: float | None = None
):
    network = build_network(region, network_scale)
    dataset = build_dataset(
        network, WorkloadSpec(region, objects, network_scale=network_scale)
    )
    return network, list(dataset.trajectories)


def _best_of_interleaved(fns: dict, rounds: int) -> dict:
    """Best-of-``rounds`` wall seconds per configuration, interleaved.

    Round-robin ordering means slow scheduler phases hit every
    configuration equally instead of biasing whichever ran last, which
    roughly halves run-to-run spread versus timing each in a block.
    """
    best = {name: float("inf") for name in fns}
    for _ in range(rounds):
        for name, fn in fns.items():
            started = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - started)
    return best


def run_overhead(
    objects: int = OBJECTS,
    rounds: int = ROUNDS,
    region: str = REGION,
    network_scale: float | None = None,
) -> dict:
    """Best-of-N opt-NEAT wall time: bare phases vs disabled vs enabled."""
    network, trajectories = _workload(objects, region, network_scale)
    config = NEATConfig(eps=EPS)

    def bare():
        # The seed-equivalent path: phase functions, fresh engine, no
        # telemetry arguments anywhere.
        base = form_base_clusters(network, trajectories)
        formation = form_flow_clusters(network, base, config)
        refine_flow_clusters(
            network, formation.flows, config,
            engine=ShortestPathEngine(network, directed=False),
        )

    def disabled():
        NEAT(network, config, telemetry=Telemetry.disabled()).run_opt(trajectories)

    def enabled():
        return NEAT(network, config).run_opt(trajectories)

    for warmup in (bare, disabled, enabled):
        warmup()
    best = _best_of_interleaved(
        {"bare": bare, "disabled": disabled, "enabled": enabled}, rounds
    )
    bare_s, disabled_s, enabled_s = (
        best["bare"], best["disabled"], best["enabled"]
    )

    # The enabled run's counters are deterministic for the workload —
    # they anchor the artifact against an accidental workload change
    # masquerading as an overhead shift.
    result = enabled()
    counters = result.telemetry["metrics"]["counters"]

    return {
        "network": region,
        "objects": objects,
        "rounds": rounds,
        "eps": EPS,
        "bare_s": round(bare_s, 4),
        "disabled_s": round(disabled_s, 4),
        "enabled_s": round(enabled_s, 4),
        "overhead_disabled_pct": round((disabled_s - bare_s) / bare_s * 100.0, 2),
        "overhead_enabled_pct": round((enabled_s - bare_s) / bare_s * 100.0, 2),
        "t_fragments": counters["neat.phase1.t_fragments"],
        "pair_checks": counters["neat.phase3.pair_checks"],
        "clusters": len(result.clusters),
    }


def render_overhead(report: dict) -> str:
    table = format_table(
        ("configuration", f"best-of-{report['rounds']} (s)", "overhead vs bare"),
        [
            ("bare phases (seed path)", f"{report['bare_s']:.4f}", "—"),
            (
                "telemetry disabled",
                f"{report['disabled_s']:.4f}",
                f"{report['overhead_disabled_pct']:+.2f}%",
            ),
            (
                "telemetry enabled",
                f"{report['enabled_s']:.4f}",
                f"{report['overhead_enabled_pct']:+.2f}%",
            ),
        ],
    )
    return "\n".join(
        [
            "Telemetry overhead on opt-NEAT "
            f"({report['network']}, {report['objects']} objects, "
            f"eps={report['eps']})",
            table,
        ]
    )


def bench_observability_overhead(emit):
    """Pytest entry point: run the comparison, write the artifact."""
    report = run_overhead()
    export_metrics(report, ARTIFACT)
    emit("observability_overhead", render_overhead(report))

    # The acceptance bar: a disabled-telemetry run must not regress the
    # hot path by more than 2%.
    assert report["overhead_disabled_pct"] < 2.0, (
        f"disabled-telemetry overhead {report['overhead_disabled_pct']:.2f}% "
        f"exceeds 2% (bare={report['bare_s']:.4f}s "
        f"disabled={report['disabled_s']:.4f}s)"
    )


def bench_opt_neat_telemetry_enabled(benchmark):
    """pytest-benchmark timing of the default (telemetry-on) pipeline."""
    network, trajectories = _workload(OBJECTS)
    neat = NEAT(network, NEATConfig(eps=EPS))
    result = benchmark.pedantic(
        lambda: neat.run_opt(trajectories), rounds=3, iterations=1
    )
    assert result.telemetry["metrics"]["counters"]["neat.phase1.t_fragments"] > 0


def bench_opt_neat_telemetry_disabled(benchmark):
    """pytest-benchmark timing of the disabled-telemetry pipeline."""
    network, trajectories = _workload(OBJECTS)
    neat = NEAT(network, NEATConfig(eps=EPS), telemetry=Telemetry.disabled())
    result = benchmark.pedantic(
        lambda: neat.run_opt(trajectories), rounds=3, iterations=1
    )
    assert result.telemetry == {}


def main(argv: list[str] | None = None) -> int:
    """Standalone runner (CI smoke mode shrinks the workload)."""
    import argparse

    from repro.tune.profiles import add_profile_argument, resolve_profile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload: checks the harness runs, not the 2%% bar",
    )
    add_profile_argument(parser)
    options = parser.parse_args(argv)

    if options.profile:
        spec = resolve_profile(options.profile).bench_spec(smoke=options.smoke)
        report = run_overhead(
            objects=spec.object_count,
            rounds=25 if options.smoke else ROUNDS,
            region=spec.region,
            network_scale=spec.network_scale,
        )
    elif options.smoke:
        report = run_overhead(objects=100, rounds=25)
    else:
        report = run_overhead()
        assert report["overhead_disabled_pct"] < 2.0, (
            f"disabled-telemetry overhead "
            f"{report['overhead_disabled_pct']:.2f}% exceeds 2%"
        )
    export_metrics(report, ARTIFACT)
    print(render_overhead(report))
    print(f"\nwrote {ARTIFACT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
