"""Tests for repro.obs.profile: the sampling profiler."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.profile import SamplingProfiler, phase_from_tracer
from repro.obs.tracing import Tracer


def spin(stop: threading.Event) -> None:
    while not stop.is_set():
        time.sleep(0.001)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError):
            SamplingProfiler(hz=-5)
        with pytest.raises(ValueError):
            SamplingProfiler(max_depth=0)

    def test_starts_idle(self):
        profiler = SamplingProfiler()
        assert not profiler.running
        assert profiler.samples == 0
        assert profiler.folded() == {}


class TestSampleOnce:
    def test_samples_other_threads_not_itself(self):
        stop = threading.Event()
        worker = threading.Thread(target=spin, args=(stop,), daemon=True)
        worker.start()
        try:
            profiler = SamplingProfiler(thread_id=worker.ident)
            recorded = profiler.sample_once()
            assert recorded == 1
            assert profiler.samples == 1
            (path,) = profiler.folded()
            assert "spin" in path
        finally:
            stop.set()
            worker.join()

    def test_stack_is_root_first(self):
        stop = threading.Event()

        def outer(event: threading.Event) -> None:
            spin(event)

        worker = threading.Thread(target=outer, args=(stop,), daemon=True)
        worker.start()
        try:
            profiler = SamplingProfiler(thread_id=worker.ident)
            profiler.sample_once()
            (path,) = profiler.folded()
            frames = path.split(";")
            assert frames.index(
                [f for f in frames if "outer" in f][0]
            ) < frames.index([f for f in frames if "spin" in f][0])
        finally:
            stop.set()
            worker.join()

    def test_phase_prefix(self):
        tracer = Tracer()
        stop = threading.Event()
        worker = threading.Thread(target=spin, args=(stop,), daemon=True)
        worker.start()
        try:
            profiler = SamplingProfiler(
                phase=phase_from_tracer(tracer), thread_id=worker.ident
            )
            with tracer.span("phase3.refinement"):
                profiler.sample_once()
            (path,) = profiler.folded()
            assert path.startswith("phase3.refinement;")
            # Outside any span: no prefix.
            profiler.reset()
            profiler.sample_once()
            (path,) = profiler.folded()
            assert not path.startswith("phase3.refinement")
        finally:
            stop.set()
            worker.join()

    def test_phase_provider_errors_are_swallowed(self):
        def broken() -> str:
            raise RuntimeError("boom")

        stop = threading.Event()
        worker = threading.Thread(target=spin, args=(stop,), daemon=True)
        worker.start()
        try:
            profiler = SamplingProfiler(phase=broken, thread_id=worker.ident)
            assert profiler.sample_once() == 1
        finally:
            stop.set()
            worker.join()

    def test_max_depth_bounds_path(self):
        stop = threading.Event()

        def deep(n: int, event: threading.Event) -> None:
            if n > 0:
                deep(n - 1, event)
            else:
                spin(event)

        worker = threading.Thread(target=deep, args=(30, stop), daemon=True)
        worker.start()
        try:
            profiler = SamplingProfiler(thread_id=worker.ident, max_depth=5)
            profiler.sample_once()
            (path,) = profiler.folded()
            assert len(path.split(";")) == 5
        finally:
            stop.set()
            worker.join()

    def test_aggregates_repeated_samples(self):
        stop = threading.Event()
        worker = threading.Thread(target=spin, args=(stop,), daemon=True)
        worker.start()
        try:
            profiler = SamplingProfiler(thread_id=worker.ident)
            for _ in range(5):
                profiler.sample_once()
            stacks = profiler.folded()
            assert sum(stacks.values()) == 5
        finally:
            stop.set()
            worker.join()


class TestLifecycle:
    def test_background_sampling_collects(self):
        stop = threading.Event()
        worker = threading.Thread(target=spin, args=(stop,), daemon=True)
        worker.start()
        try:
            with SamplingProfiler(hz=200.0, thread_id=worker.ident) as profiler:
                assert profiler.running
                deadline = time.monotonic() + 5.0
                while profiler.samples < 3 and time.monotonic() < deadline:
                    time.sleep(0.01)
            assert not profiler.running
            assert profiler.samples >= 3
            assert sum(profiler.folded().values()) >= 3
        finally:
            stop.set()
            worker.join()

    def test_start_stop_idempotent(self):
        profiler = SamplingProfiler(hz=500.0)
        assert profiler.start() is profiler.start()
        thread = profiler._thread
        profiler.start()
        assert profiler._thread is thread
        profiler.stop()
        profiler.stop()
        assert not profiler.running

    def test_reset(self):
        stop = threading.Event()
        worker = threading.Thread(target=spin, args=(stop,), daemon=True)
        worker.start()
        try:
            profiler = SamplingProfiler(thread_id=worker.ident)
            profiler.sample_once()
            profiler.reset()
            assert profiler.samples == 0
            assert profiler.folded() == {}
        finally:
            stop.set()
            worker.join()


class TestExport:
    def test_folded_text_and_save(self, tmp_path):
        stop = threading.Event()
        worker = threading.Thread(target=spin, args=(stop,), daemon=True)
        worker.start()
        try:
            profiler = SamplingProfiler(thread_id=worker.ident)
            profiler.sample_once()
            text = profiler.folded_text()
            (line,) = text.splitlines()
            path, _, count = line.rpartition(" ")
            assert "spin" in path
            assert count.isdigit()
            saved = profiler.save(tmp_path / "profile.folded")
            assert saved.read_text() == text + "\n"
        finally:
            stop.set()
            worker.join()

    def test_empty_save(self, tmp_path):
        profiler = SamplingProfiler()
        saved = profiler.save(tmp_path / "empty.folded")
        assert saved.read_text() == ""
