"""The telemetry bundle threaded through the NEAT stack.

A :class:`Telemetry` pairs one :class:`~repro.obs.tracing.Tracer` with
one :class:`~repro.obs.metrics.MetricsRegistry`.  The pipeline, the
incremental clusterer and the service each operate against a bundle:
spans time the phases, instruments count the operations, and
:meth:`Telemetry.snapshot` freezes both into one JSON-compatible
artifact (what :attr:`NEATResult.telemetry` carries and what the CLI's
``--metrics-out`` writes).

``Telemetry.disabled()`` swaps in the shared no-op tracer and flags the
bundle off; instrumented code checks :attr:`Telemetry.enabled` before
publishing, so a disabled run pays only a handful of branch tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .metrics import MetricsRegistry
from .tracing import NULL_TRACER, Tracer


@dataclass
class Telemetry:
    """One tracer + one metrics registry, on/off as a unit.

    Attributes:
        tracer: Span collector (a no-op tracer when disabled).
        metrics: Instrument registry for counters/gauges/histograms.
        enabled: Whether instrumented code should record at all.
    """

    tracer: Tracer = field(default_factory=Tracer)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    enabled: bool = True

    @classmethod
    def create(cls) -> "Telemetry":
        """A fresh, enabled bundle (one per pipeline run by default)."""
        return cls()

    @classmethod
    def disabled(cls) -> "Telemetry":
        """A no-op bundle: null tracer, empty registry, ``enabled=False``."""
        return cls(tracer=NULL_TRACER, metrics=MetricsRegistry(), enabled=False)

    def snapshot(self) -> dict[str, Any]:
        """Freeze the trace forest and every instrument into plain dicts."""
        return {
            "trace": self.tracer.to_dict(),
            "metrics": self.metrics.as_dict(),
        }

    def save(self, path: str | Path) -> Path:
        """Write :meth:`snapshot` as pretty-printed JSON; returns the path.

        Parent directories are created as needed.
        """
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n")
        return target
