"""Flat-array (CSR) shortest-path core.

The legacy searches in :mod:`~repro.roadnet.shortest_path` walk the
mutable :class:`~repro.roadnet.RoadNetwork` through dict-of-lists
adjacency, building neighbor tuples on every visit.  That is fine for
correctness work, but Phase 3 of NEAT runs thousands of point-to-point
queries per clustering run and the allocation churn dominates.  This
module freezes a network into a :class:`CSRGraph` — a compressed sparse
row snapshot whose adjacency is four flat parallel lists indexed by a
dense ``0..n-1`` node index — and runs Dijkstra over plain list reads:

* :meth:`CSRGraph.single_source` — (bounded) single-source distances;
* :meth:`CSRGraph.distance_counted` — (bounded) point-to-point Dijkstra;
* :meth:`CSRGraph.bidirectional_distance_counted` — point-to-point
  search growing a forward and a backward frontier, settling roughly
  ``2*sqrt`` of the nodes a unidirectional search would;
* :meth:`CSRGraph.shortest_route` — point-to-point with path recovery.

Storage is typed :class:`array.array` buffers (``'q'`` int64 for the
structure arrays, ``'d'`` float64 for weights), so every column exposes
the buffer protocol: a snapshot can be copied byte-for-byte into a
:mod:`multiprocessing.shared_memory` segment and *attached* zero-copy in
worker processes as ``memoryview`` casts over the shared buffer (see
:mod:`repro.roadnet.sharedcsr`).  Indexing semantics are identical
across backings — the Dijkstra loops below never know whether they read
a private array or a shared mapping.

Snapshots are immutable and picklable (attached views materialize into
private arrays on pickle), so read-only copies can still be shipped the
legacy way when shared memory is unavailable.  ``RoadNetwork.csr``
builds and caches one per direction mode, invalidating on mutation.

Exactness: for a unique shortest path, the unidirectional searches
return bit-identical floats to the legacy dict backend (same additions
in the same order along the path).  The bidirectional search sums the
two half-paths separately, so its result can differ in the last ulp;
callers comparing across backends should allow a relative tolerance of
~1e-12 (decision thresholds like Phase 3's ``eps`` are unaffected).
"""

from __future__ import annotations

from array import array
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Iterable, Sequence

from ..errors import NoPathError, UnknownNodeError
from .shortest_path import INFINITY, Route

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .network import RoadNetwork


class CSRGraph:
    """A frozen compressed-sparse-row view of a road network.

    Attributes:
        directed: Whether one-way segments are respected.  The undirected
            view stores every segment in both directions; the directed
            view additionally carries a reverse adjacency (incoming
            edges) so bidirectional search can grow a backward frontier.
        node_ids: Original junction ids, ascending; position = CSR index.
        indptr: ``indptr[i]:indptr[i+1]`` slices the edge lists of node
            ``i`` (forward / outgoing view).
        adj: Neighbor CSR indices, one entry per directed edge.
        sids: Segment id of each edge entry.
        weights: Length in metres of each edge entry.
        rindptr/radj/rsids/rweights: The reverse (incoming) adjacency;
            aliases of the forward lists when the graph is undirected.
    """

    __slots__ = (
        "directed",
        "node_ids",
        "index_of",
        "indptr",
        "adj",
        "sids",
        "weights",
        "rindptr",
        "radj",
        "rsids",
        "rweights",
    )

    def __init__(
        self,
        directed: bool,
        node_ids: list[int],
        edges: list[tuple[int, int, int, float]],
    ) -> None:
        """Build from a dense edge list of ``(src, dst, sid, weight)``.

        ``src``/``dst`` are CSR indices (not junction ids).  Use
        :func:`build_csr` to derive one from a :class:`RoadNetwork`.
        """
        self.directed = directed
        self.node_ids = array("q", node_ids)
        self.index_of = {nid: i for i, nid in enumerate(self.node_ids)}
        self.indptr, self.adj, self.sids, self.weights = _pack(
            len(node_ids), edges
        )
        if directed:
            reverse = [(dst, src, sid, w) for src, dst, sid, w in edges]
            self.rindptr, self.radj, self.rsids, self.rweights = _pack(
                len(node_ids), reverse
            )
        else:
            self.rindptr = self.indptr
            self.radj = self.adj
            self.rsids = self.sids
            self.rweights = self.weights

    @classmethod
    def from_arrays(
        cls,
        directed: bool,
        node_ids,
        indptr,
        adj,
        sids,
        weights,
        rindptr=None,
        radj=None,
        rsids=None,
        rweights=None,
    ) -> "CSRGraph":
        """Wrap already-packed CSR columns without copying them.

        The columns may be :class:`array.array` buffers or typed
        ``memoryview`` casts over a shared-memory segment (the zero-copy
        attach path of :class:`~repro.roadnet.sharedcsr.SharedCSR`); the
        search kernels only ever index them.  For a directed graph the
        reverse columns are required; undirected graphs alias the forward
        ones.
        """
        graph = cls.__new__(cls)
        graph.directed = directed
        graph.node_ids = node_ids
        graph.index_of = {nid: i for i, nid in enumerate(node_ids)}
        graph.indptr = indptr
        graph.adj = adj
        graph.sids = sids
        graph.weights = weights
        if directed:
            if rindptr is None or radj is None or rsids is None or rweights is None:
                raise ValueError("directed CSR needs its reverse columns")
            graph.rindptr = rindptr
            graph.radj = radj
            graph.rsids = rsids
            graph.rweights = rweights
        else:
            graph.rindptr = indptr
            graph.radj = adj
            graph.rsids = sids
            graph.rweights = weights
        return graph

    # ------------------------------------------------------------------
    # Pickling: materialize the columns into private typed arrays so a
    # snapshot ships to a process even when its storage is a memoryview
    # over someone else's shared segment; ``index_of`` is rebuilt on the
    # receiving side instead of being serialized.
    def __getstate__(self) -> dict:
        state = {
            "directed": self.directed,
            "node_ids": array("q", self.node_ids),
            "indptr": array("q", self.indptr),
            "adj": array("q", self.adj),
            "sids": array("q", self.sids),
            "weights": array("d", self.weights),
        }
        if self.directed:
            state["rindptr"] = array("q", self.rindptr)
            state["radj"] = array("q", self.radj)
            state["rsids"] = array("q", self.rsids)
            state["rweights"] = array("d", self.rweights)
        return state

    def __setstate__(self, state: dict) -> None:
        directed = state["directed"]
        self.directed = directed
        self.node_ids = state["node_ids"]
        self.index_of = {nid: i for i, nid in enumerate(self.node_ids)}
        self.indptr = state["indptr"]
        self.adj = state["adj"]
        self.sids = state["sids"]
        self.weights = state["weights"]
        if directed:
            self.rindptr = state["rindptr"]
            self.radj = state["radj"]
            self.rsids = state["rsids"]
            self.rweights = state["rweights"]
        else:
            self.rindptr = self.indptr
            self.radj = self.adj
            self.rsids = self.sids
            self.rweights = self.weights

    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of junctions in the snapshot."""
        return len(self.node_ids)

    @property
    def edge_count(self) -> int:
        """Number of directed edge entries (2x segments when undirected)."""
        return len(self.adj)

    def _index(self, node_id: int) -> int:
        try:
            return self.index_of[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRGraph(directed={self.directed}, nodes={self.node_count}, "
            f"edges={self.edge_count})"
        )

    # ------------------------------------------------------------------
    # Searches
    # ------------------------------------------------------------------
    def single_source(
        self, source: int, max_distance: float = INFINITY
    ) -> dict[int, float]:
        """Distances from ``source`` to every node within ``max_distance``.

        Drop-in equivalent of
        :func:`~repro.roadnet.shortest_path.dijkstra_single_source` on
        this snapshot's direction mode; keys are original junction ids.
        """
        s = self._index(source)
        n = len(self.node_ids)
        indptr, adj, weights = self.indptr, self.adj, self.weights
        dist = [INFINITY] * n
        settled = bytearray(n)
        dist[s] = 0.0
        heap: list[tuple[float, int]] = [(0.0, s)]
        out: dict[int, float] = {}
        node_ids = self.node_ids
        while heap:
            d, u = heappop(heap)
            if settled[u]:
                continue
            settled[u] = 1
            out[node_ids[u]] = d
            for k in range(indptr[u], indptr[u + 1]):
                v = adj[k]
                nd = d + weights[k]
                if nd < dist[v] and nd <= max_distance:
                    dist[v] = nd
                    heappush(heap, (nd, v))
        return out

    def distance_counted(
        self, source: int, target: int, cutoff: float = INFINITY
    ) -> tuple[float, int]:
        """Unidirectional point-to-point Dijkstra.

        Returns ``(distance, settled_nodes)``; distance is
        :data:`INFINITY` when ``target`` is unreachable within ``cutoff``.
        """
        s = self._index(source)
        t = self._index(target)
        if s == t:
            return 0.0, 0
        n = len(self.node_ids)
        indptr, adj, weights = self.indptr, self.adj, self.weights
        dist = [INFINITY] * n
        settled = bytearray(n)
        dist[s] = 0.0
        heap: list[tuple[float, int]] = [(0.0, s)]
        expansions = 0
        while heap:
            d, u = heappop(heap)
            if settled[u]:
                continue
            if u == t:
                return d, expansions
            settled[u] = 1
            expansions += 1
            for k in range(indptr[u], indptr[u + 1]):
                v = adj[k]
                nd = d + weights[k]
                if nd < dist[v] and nd <= cutoff:
                    dist[v] = nd
                    heappush(heap, (nd, v))
        return INFINITY, expansions

    def bidirectional_distance_counted(
        self, source: int, target: int, cutoff: float = INFINITY
    ) -> tuple[float, int]:
        """Point-to-point distance via bidirectional Dijkstra.

        Grows a forward frontier from ``source`` (outgoing edges) and a
        backward frontier from ``target`` (incoming edges), stopping as
        soon as the two least frontier keys prove no shorter connection
        can exist — or exceed ``cutoff``, in which case the pair is
        reported unreachable-within-bound (:data:`INFINITY`).

        Returns ``(distance, settled_nodes)``.
        """
        s = self._index(source)
        t = self._index(target)
        if s == t:
            return 0.0, 0
        n = len(self.node_ids)
        dist_f = [INFINITY] * n
        dist_b = [INFINITY] * n
        done_f = bytearray(n)
        done_b = bytearray(n)
        dist_f[s] = 0.0
        dist_b[t] = 0.0
        heap_f: list[tuple[float, int]] = [(0.0, s)]
        heap_b: list[tuple[float, int]] = [(0.0, t)]
        best = INFINITY
        expansions = 0
        while heap_f and heap_b:
            if heap_f[0][0] + heap_b[0][0] >= best:
                break
            if heap_f[0][0] + heap_b[0][0] > cutoff:
                break
            if heap_f[0][0] <= heap_b[0][0]:
                heap, dist, done, other = heap_f, dist_f, done_f, dist_b
                indptr, adj, weights = self.indptr, self.adj, self.weights
            else:
                heap, dist, done, other = heap_b, dist_b, done_b, dist_f
                indptr, adj, weights = self.rindptr, self.radj, self.rweights
            d, u = heappop(heap)
            if done[u]:
                continue
            done[u] = 1
            expansions += 1
            for k in range(indptr[u], indptr[u + 1]):
                v = adj[k]
                nd = d + weights[k]
                if nd < dist[v] and nd <= cutoff and nd < best:
                    dist[v] = nd
                    heappush(heap, (nd, v))
                od = other[v]
                if od < INFINITY:
                    total = dist[v] + od
                    if total < best:
                        best = total
        if best <= cutoff:
            return best, expansions
        return INFINITY, expansions

    def multi_target_distances(
        self,
        source: int,
        targets: Iterable[int],
        cutoff: float = INFINITY,
    ) -> tuple[dict[int, float], int]:
        """One bounded single-source search answering a whole target set.

        The batched kernel behind the tiered distance oracle: where the
        per-pair path runs one point-to-point search per ``(source, t)``
        pair, this settles outward from ``source`` once and stops as soon
        as every requested target is settled (or the frontier exceeds
        ``cutoff``).  Distances are unidirectional-Dijkstra sums, so they
        are bit-identical to :meth:`distance_counted` / the legacy dict
        walker for the same pair.

        Returns:
            ``(found, settled_nodes)`` where ``found`` maps each target
            junction id settled within ``cutoff`` to its distance.  A
            target absent from ``found`` is proven farther than
            ``cutoff`` from ``source`` (or unreachable).
        """
        s = self._index(source)
        found: dict[int, float] = {}
        remaining: set[int] = set()
        for target in targets:
            t = self._index(target)
            if t == s:
                found[target] = 0.0
            else:
                remaining.add(t)
        if not remaining:
            return found, 0
        n = len(self.node_ids)
        indptr, adj, weights = self.indptr, self.adj, self.weights
        node_ids = self.node_ids
        dist = [INFINITY] * n
        settled = bytearray(n)
        dist[s] = 0.0
        heap: list[tuple[float, int]] = [(0.0, s)]
        expansions = 0
        while heap:
            d, u = heappop(heap)
            if settled[u]:
                continue
            settled[u] = 1
            expansions += 1
            if u in remaining:
                remaining.discard(u)
                found[node_ids[u]] = d
                if not remaining:
                    break
            for k in range(indptr[u], indptr[u + 1]):
                v = adj[k]
                nd = d + weights[k]
                if nd < dist[v] and nd <= cutoff:
                    dist[v] = nd
                    heappush(heap, (nd, v))
        return found, expansions

    def shortest_route(self, source: int, target: int) -> Route:
        """Point-to-point Dijkstra with path recovery.

        Returns a :class:`~repro.roadnet.shortest_path.Route` in original
        junction/segment ids.

        Raises:
            NoPathError: when ``target`` is unreachable from ``source``.
        """
        s = self._index(source)
        t = self._index(target)
        if s == t:
            return Route((source,), (), 0.0)
        n = len(self.node_ids)
        indptr, adj, sids, weights = self.indptr, self.adj, self.sids, self.weights
        dist = [INFINITY] * n
        settled = bytearray(n)
        parent = [-1] * n
        parent_sid = [-1] * n
        dist[s] = 0.0
        heap: list[tuple[float, int]] = [(0.0, s)]
        while heap:
            d, u = heappop(heap)
            if settled[u]:
                continue
            if u == t:
                return self._recover(s, t, d, parent, parent_sid)
            settled[u] = 1
            for k in range(indptr[u], indptr[u + 1]):
                v = adj[k]
                nd = d + weights[k]
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    parent_sid[v] = sids[k]
                    heappush(heap, (nd, v))
        raise NoPathError(source, target)

    def _recover(
        self,
        s: int,
        t: int,
        length: float,
        parent: list[int],
        parent_sid: list[int],
    ) -> Route:
        node_ids = self.node_ids
        nodes = [node_ids[t]]
        sids: list[int] = []
        u = t
        while u != s:
            sids.append(parent_sid[u])
            u = parent[u]
            nodes.append(node_ids[u])
        nodes.reverse()
        sids.reverse()
        return Route(tuple(nodes), tuple(sids), length)

    # ------------------------------------------------------------------
    def distance_batch(
        self,
        pairs: Sequence[tuple[int, int]],
        cutoff: float = INFINITY,
        bidirectional: bool = True,
    ) -> list[tuple[float, int]]:
        """``(distance, settled)`` for every pair, in order.

        The unit of work shipped to worker processes by
        :meth:`~repro.roadnet.shortest_path.ShortestPathEngine.distance_many`;
        also handy for warming caches serially.
        """
        if bidirectional:
            search = self.bidirectional_distance_counted
        else:
            search = self.distance_counted
        return [search(a, b, cutoff) for a, b in pairs]


def _pack(
    node_count: int, edges: Iterable[tuple[int, int, int, float]]
) -> tuple[array, array, array, array]:
    """Counting-sort an edge list into typed CSR arrays (stable per source).

    Returns int64 (``'q'``) structure columns and a float64 (``'d'``)
    weight column — contiguous buffers a shared-memory publisher can copy
    byte-for-byte.
    """
    edge_list = list(edges)
    counts = [0] * (node_count + 1)
    for src, _dst, _sid, _w in edge_list:
        counts[src + 1] += 1
    indptr = array("q", bytes(8 * (node_count + 1)))
    total = 0
    for i in range(node_count + 1):
        total += counts[i]
        indptr[i] = total
    cursor = list(indptr[:node_count])
    m = len(edge_list)
    adj = array("q", bytes(8 * m))
    sids = array("q", bytes(8 * m))
    weights = array("d", bytes(8 * m))
    for src, dst, sid, w in edge_list:
        k = cursor[src]
        cursor[src] = k + 1
        adj[k] = dst
        sids[k] = sid
        weights[k] = w
    return indptr, adj, sids, weights


def build_csr(network: "RoadNetwork", directed: bool = False) -> CSRGraph:
    """Snapshot a :class:`RoadNetwork` into a :class:`CSRGraph`.

    Prefer :meth:`RoadNetwork.csr`, which memoizes the snapshot and
    invalidates it when the network is mutated.
    """
    node_ids = network.node_ids()
    index_of = {nid: i for i, nid in enumerate(node_ids)}
    edges: list[tuple[int, int, int, float]] = []
    for segment in network.segments():
        u = index_of[segment.node_u]
        v = index_of[segment.node_v]
        edges.append((u, v, segment.sid, segment.length))
        if not directed or segment.bidirectional:
            edges.append((v, u, segment.sid, segment.length))
    return CSRGraph(directed, node_ids, edges)
