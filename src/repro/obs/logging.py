"""Structured logging over the stdlib ``logging`` module.

Every logger in the reproduction hangs off the ``repro`` root logger, so
one :func:`configure_logging` call controls the whole package.  Records
carry an *event* (the message) plus free-form key/value *fields*;
formatters render them either as ``key=value`` text lines or as JSON
lines, one object per record.

Usage::

    from repro.obs import configure_logging, get_logger

    configure_logging("INFO")            # or json_lines=True
    log = get_logger("core.pipeline")
    log.info("run complete", mode="opt", flows=12, seconds=0.41)

``configure_logging`` is idempotent: calling it again replaces the
handler it installed rather than stacking a second one, so libraries and
CLIs can both call it safely.
"""

from __future__ import annotations

import io
import json
import logging
import sys
from typing import Any, TextIO

#: Root of the package's logger hierarchy.
ROOT_LOGGER_NAME = "repro"

#: Attribute marking handlers installed by :func:`configure_logging`.
_HANDLER_MARK = "_repro_obs_handler"

_LEVELS = ("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL")


def _record_fields(record: logging.LogRecord) -> dict[str, Any]:
    fields = getattr(record, "fields", None)
    return fields if isinstance(fields, dict) else {}


def _kv_escape(value: Any) -> str:
    """Render one field value; quote anything containing whitespace."""
    text = str(value)
    if text == "" or any(ch in text for ch in (" ", "\t", "\n", '"', "=")):
        return json.dumps(text)
    return text


class KeyValueFormatter(logging.Formatter):
    """``ts=... level=... logger=... event=... key=value ...`` lines."""

    def format(self, record: logging.LogRecord) -> str:
        parts = [
            f"ts={self.formatTime(record, datefmt='%Y-%m-%dT%H:%M:%S')}",
            f"level={record.levelname.lower()}",
            f"logger={record.name}",
            f"event={_kv_escape(record.getMessage())}",
        ]
        parts.extend(
            f"{key}={_kv_escape(value)}"
            for key, value in _record_fields(record).items()
        )
        if record.exc_info:
            parts.append(f"exc={_kv_escape(self.formatException(record.exc_info))}")
        return " ".join(parts)


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record: ``{"ts", "level", "logger", "event", ...}``."""

    def format(self, record: logging.LogRecord) -> str:
        document: dict[str, Any] = {
            "ts": self.formatTime(record, datefmt="%Y-%m-%dT%H:%M:%S"),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        for key, value in _record_fields(record).items():
            document[key] = value
        if record.exc_info:
            document["exc"] = self.formatException(record.exc_info)
        return json.dumps(document, default=str)


def configure_logging(
    level: int | str = "INFO",
    json_lines: bool = False,
    stream: TextIO | None = None,
) -> logging.Logger:
    """Configure the package-wide ``repro`` logger (idempotently).

    Args:
        level: Threshold name or number (``"DEBUG"`` .. ``"CRITICAL"``).
        json_lines: Emit JSON-lines records instead of ``key=value`` text.
        stream: Destination (default ``sys.stderr``).

    Returns:
        The configured root logger.  Repeated calls replace the handler
        installed by the previous call instead of adding another, so the
        latest configuration always wins and records are never duplicated.
    """
    if isinstance(level, str):
        name = level.upper()
        if name not in _LEVELS:
            raise ValueError(f"unknown log level {level!r}; expected one of {_LEVELS}")
        level = getattr(logging, name)
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in [h for h in root.handlers if getattr(h, _HANDLER_MARK, False)]:
        root.removeHandler(handler)
        handler.close()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLinesFormatter() if json_lines else KeyValueFormatter())
    setattr(handler, _HANDLER_MARK, True)
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root


class StructuredLogger:
    """A thin wrapper accepting key/value fields on every call.

    The stdlib API has no keyword channel for structured payloads; this
    wrapper stashes them on the record (``record.fields``) where the
    :class:`KeyValueFormatter` / :class:`JsonLinesFormatter` pick them up.
    """

    __slots__ = ("_logger", "_bound")

    def __init__(self, logger: logging.Logger, bound: dict[str, Any] | None = None):
        self._logger = logger
        self._bound = dict(bound) if bound else {}

    @property
    def name(self) -> str:
        """The underlying stdlib logger's dotted name."""
        return self._logger.name

    def bind(self, **fields: Any) -> "StructuredLogger":
        """A child logger carrying ``fields`` on every record it emits."""
        return StructuredLogger(self._logger, {**self._bound, **fields})

    def log(self, level: int, event: str, **fields: Any) -> None:
        """Emit ``event`` at ``level`` with merged bound + call fields."""
        if self._logger.isEnabledFor(level):
            self._logger.log(
                level, event, extra={"fields": {**self._bound, **fields}}
            )

    def debug(self, event: str, **fields: Any) -> None:
        self.log(logging.DEBUG, event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log(logging.INFO, event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log(logging.WARNING, event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log(logging.ERROR, event, **fields)


def get_logger(name: str = "") -> StructuredLogger:
    """A structured logger under the ``repro`` hierarchy.

    ``get_logger("core.pipeline")`` maps to the stdlib logger
    ``repro.core.pipeline``; an empty name returns the root itself.
    Safe to call before :func:`configure_logging` — records are simply
    dropped (stdlib last-resort handling) until configuration happens.
    """
    if name and not name.startswith(ROOT_LOGGER_NAME):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return StructuredLogger(logging.getLogger(name or ROOT_LOGGER_NAME))


def capture_logs(json_lines: bool = False) -> tuple[logging.Logger, io.StringIO]:
    """Configure logging into a fresh in-memory buffer (test helper).

    Returns the configured logger and the buffer the records land in.
    """
    buffer = io.StringIO()
    return configure_logging("DEBUG", json_lines=json_lines, stream=buffer), buffer
