"""Detecting hotspot areas from clustering output.

Figure 3's narrative: "There are two dense regions that concentrate the
short flows.  They are the two hotspots where we place the 500 mobile
objects..." — i.e. the flow endpoints themselves reveal the trip origin/
destination areas.  This module inverts that observation: given a set of
flow clusters, it groups their route endpoints by network proximity and
ranks the resulting *hotspot areas* by how much traffic terminates there.

Useful for the paper's LBS applications (where to put a bus terminal, a
store, a taxi rank) and as a sanity check against the simulator's known
hotspot/destination layout (see the tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..cluster.dbscan import clusters_from_labels, dbscan
from ..core.flow_cluster import FlowCluster
from ..roadnet.network import RoadNetwork
from ..roadnet.shortest_path import ShortestPathEngine


@dataclass(frozen=True)
class HotspotArea:
    """A group of junctions where flow endpoints concentrate.

    Attributes:
        nodes: The member junctions (flow route endpoints).
        terminating_cardinality: Distinct trajectories of the flows
            ending in this area (the area's traffic weight).
        flow_count: Number of flow endpoints in the area.
    """

    nodes: frozenset[int]
    terminating_cardinality: int
    flow_count: int


def detect_hotspots(
    network: RoadNetwork,
    flows: Sequence[FlowCluster],
    radius: float = 500.0,
    engine: ShortestPathEngine | None = None,
) -> list[HotspotArea]:
    """Group flow endpoints into hotspot areas by network proximity.

    Args:
        network: The road network.
        flows: Flow clusters (Phase 2 output).
        radius: Network distance threshold for two endpoints to belong
            to the same area.
        engine: Optional shared shortest-path engine.

    Returns:
        Areas sorted by descending terminating cardinality.
    """
    if engine is None:
        engine = ShortestPathEngine(network, directed=False)
    # Each endpoint occurrence is one item: (node, flow index).
    items: list[tuple[int, int]] = []
    for flow_index, flow in enumerate(flows):
        for node in flow.endpoints:
            items.append((node, flow_index))
    if not items:
        return []

    def region_query(index: int) -> list[int]:
        node, _flow = items[index]
        found = []
        for other in range(len(items)):
            if other == index:
                continue
            other_node = items[other][0]
            if node == other_node or engine.distance(node, other_node) <= radius:
                found.append(other)
        return found

    labels = dbscan(len(items), region_query, min_pts=1)
    areas = []
    for indices in clusters_from_labels(labels):
        nodes = frozenset(items[i][0] for i in indices)
        flow_indices = {items[i][1] for i in indices}
        participants: set[int] = set()
        for flow_index in flow_indices:
            participants.update(flows[flow_index].participants)
        areas.append(
            HotspotArea(
                nodes=nodes,
                terminating_cardinality=len(participants),
                flow_count=len(indices),
            )
        )
    areas.sort(key=lambda a: (-a.terminating_cardinality, -a.flow_count))
    return areas
