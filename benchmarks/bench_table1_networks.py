"""Table I: road-network statistics of the three region networks.

Regenerates the paper's Table I for the calibrated synthetic stand-ins and
benchmarks network generation itself (the substrate cost every other
experiment pays first).
"""

from __future__ import annotations

from repro.experiments.figures import run_table1
from repro.roadnet.generators import atlanta_like
from repro.roadnet.stats import network_stats


def bench_table1_network_generation(benchmark, emit):
    """Time ATL-like generation; report all three regions' Table I rows."""
    network = benchmark(lambda: atlanta_like(scale=0.1))
    stats = network_stats(network)
    assert stats.segment_count > 0

    result = run_table1()
    emit("table1_networks", result.render())


def bench_table1_full_scale_generation(benchmark):
    """Generation cost at a larger scale (shows linear growth)."""
    network = benchmark.pedantic(
        lambda: atlanta_like(scale=0.5), rounds=2, iterations=1
    )
    assert network.junction_count > 3000
