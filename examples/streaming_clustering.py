#!/usr/bin/env python3
"""Online clustering: trajectories arrive in batches, clusters stay fresh.

Section III-C of the paper motivates Phase 3 with exactly this scenario:
a NEAT server receives trajectory batches continuously, runs Phases 1-2
per batch, and merges new flows with the retained ones — the memoized
shortest-path engine making each refresh cheaper than the last.

This example replays a day of traffic in four batches and prints how the
global clustering and the Phase 3 cost evolve.

Run:  python examples/streaming_clustering.py
"""

from repro.core import IncrementalNEAT, NEATConfig
from repro.mobisim import SimulationConfig, simulate_dataset
from repro.roadnet import san_jose_like

network = san_jose_like(scale=0.1)

# Four arrival batches, e.g. one per 6-hour window.  Separate simulator
# seeds stand in for evolving traffic; ids are offset automatically.
batches = [
    simulate_dataset(
        network,
        SimulationConfig(object_count=120, seed=100 + window, name=f"win{window}"),
    )
    for window in range(4)
]

neat = IncrementalNEAT(network, NEATConfig(eps=800.0, min_card=5))

print(f"{'batch':>5}  {'new flows':>9}  {'total flows':>11}  "
      f"{'clusters':>8}  {'new Dijkstras':>13}")
for window, dataset in enumerate(batches):
    before = neat.engine.computations
    result = neat.add_batch(list(dataset), auto_offset_ids=True)
    print(
        f"{window:>5}  {len(result.new_flows):>9}  {len(neat.flows):>11}  "
        f"{len(result.clusters):>8}  {neat.engine.computations - before:>13}"
    )

print(
    "\nThe 'new Dijkstras' column shrinks relative to the growing flow "
    "pool: Phase 3 re-runs over all flows each batch, but the memoized "
    "engine answers repeated endpoint distances from cache — the "
    "amortization the paper's online scenario relies on."
)

final = neat.clusters
print(f"\nFinal clustering: {len(final)} clusters over {len(neat.flows)} flows")
for cluster in final[:5]:
    print(
        f"  cluster {cluster.cluster_id}: {len(cluster.flows)} flows, "
        f"{cluster.trajectory_cardinality} trajectories"
    )
