"""TraClus Phase 1: MDL-based trajectory partitioning.

Lee et al. (SIGMOD'07), Section 4.1: a trajectory is partitioned at
*characteristic points* — samples where the moving object changes
behaviour — chosen by the Minimum Description Length principle.  The
approximate algorithm walks the trajectory keeping the longest prefix for
which describing the sub-trajectory by its straight chord
(``MDL_par = L(H) + L(D|H)``) stays cheaper than keeping every sample
(``MDL_nopar = L(H)``); when the comparison flips, the previous sample
becomes a characteristic point.

This is the step the NEAT paper contrasts with junction-based splitting:
on road networks it over-partitions (every curve looks like a behaviour
change) while missing the semantics of intersections.
"""

from __future__ import annotations

import math

from ..core.model import Trajectory
from ..roadnet.geometry import Point
from .distance import angular_distance, perpendicular_distance
from .model import LineSegment


def _log2_length(a: Point, b: Point) -> float:
    """``log2`` of a length, floored at 1 m to avoid log of zero."""
    return math.log2(max(1.0, a.distance_to(b)))


def _mdl_par(points: list[Point], start: int, current: int) -> float:
    """Cost of describing ``points[start..current]`` by its chord.

    ``L(H)`` is the chord's encoded length; ``L(D|H)`` charges every
    original piece its perpendicular and angular deviation from the chord
    (per-piece logs, floored at 1 m, so deviations accumulate linearly
    like the no-partition cost does — without this, the log compresses
    arbitrarily sharp corners into cheap hypotheses and partitioning never
    triggers).
    """
    hypothesis = _log2_length(points[start], points[current])
    chord = LineSegment(-1, points[start], points[current])
    encoding = 0.0
    for i in range(start, current):
        piece = LineSegment(-1, points[i], points[i + 1])
        longer, shorter = (
            (chord, piece) if chord.length >= piece.length else (piece, chord)
        )
        encoding += math.log2(max(1.0, perpendicular_distance(longer, shorter)))
        encoding += math.log2(max(1.0, angular_distance(longer, shorter)))
    return hypothesis + encoding


def _mdl_nopar(points: list[Point], start: int, current: int) -> float:
    """Cost of keeping every sample of ``points[start..current]``."""
    return sum(
        _log2_length(points[i], points[i + 1]) for i in range(start, current)
    )


def characteristic_points(points: list[Point]) -> list[int]:
    """Indices of the characteristic points of a point sequence.

    Always includes the first and last index (Lee et al., Figure 8's
    "approximate trajectory partitioning" algorithm).
    """
    n = len(points)
    if n < 2:
        return list(range(n))
    indices = [0]
    start = 0
    length = 1
    while start + length < n:
        current = start + length
        cost_par = _mdl_par(points, start, current)
        cost_nopar = _mdl_nopar(points, start, current)
        if cost_par > cost_nopar:
            indices.append(current - 1)
            start = current - 1
            length = 1
        else:
            length += 1
    if indices[-1] != n - 1:
        indices.append(n - 1)
    return indices


def partition_trajectory(trajectory: Trajectory) -> list[LineSegment]:
    """Partition one trajectory into TraClus line segments.

    Consecutive duplicate positions are skipped (they carry no geometry).
    """
    points: list[Point] = []
    for location in trajectory.locations:
        point = location.point
        if points and points[-1].distance_to(point) <= 0.0:
            continue
        points.append(point)
    if len(points) < 2:
        return []
    indices = characteristic_points(points)
    segments = []
    for i in range(len(indices) - 1):
        start, end = points[indices[i]], points[indices[i + 1]]
        if start.distance_to(end) > 0.0:
            segments.append(LineSegment(trajectory.trid, start, end))
    return segments


def partition_all(trajectories) -> list[LineSegment]:
    """Partition every trajectory, concatenating segments in input order."""
    segments: list[LineSegment] = []
    for trajectory in trajectories:
        segments.extend(partition_trajectory(trajectory))
    return segments
