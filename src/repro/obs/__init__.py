"""repro.obs — the unified telemetry layer.

Three zero-dependency pillars shared by every subsystem:

* :mod:`repro.obs.logging` — structured logging (``key=value`` or
  JSON-lines) over the stdlib, configured once per process;
* :mod:`repro.obs.tracing` — nested wall-clock spans collected into an
  exportable trace tree, with a no-op tracer for disabled runs;
* :mod:`repro.obs.metrics` — named counters, gauges and histograms in a
  :class:`MetricsRegistry`, exportable as a JSON dict or Prometheus text.

:class:`~repro.obs.telemetry.Telemetry` bundles one tracer and one
registry and is what the NEAT pipeline, the incremental clusterer and the
service thread through their phases.  Instrument names follow the
``subsystem.phaseN.quantity`` convention documented in
``docs/observability.md``.
"""

from .logging import (
    JsonLinesFormatter,
    KeyValueFormatter,
    StructuredLogger,
    configure_logging,
    get_logger,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .telemetry import Telemetry
from .tracing import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLinesFormatter",
    "KeyValueFormatter",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "StructuredLogger",
    "Telemetry",
    "Tracer",
    "configure_logging",
    "get_logger",
]
