"""Paper-scale feasibility run (opt-in: set REPRO_PAPER_SCALE=1).

Runs opt-NEAT at the paper's actual scale — the full-size ATL network
(~7k junctions, ~9.2k segments) with 5000 objects (~0.8M points) and the
paper's eps = 6500 m — to confirm the implementation handles Table II's
magnitudes, not just the scaled bench workloads.  Skipped by default:
trace generation alone takes ~1 minute.

Reference measurement on this repository's development machine:
dataset generation 54.6 s; opt-NEAT 13.3 s total (Phase 1: 9.9 s,
Phase 2: 1.2 s, Phase 3: 2.2 s with ELB) — the same order of magnitude
as the paper's 59.7 s for ATL5000 on 2008-era Java.
"""

from __future__ import annotations

import os

import pytest

from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT
from repro.experiments.harness import format_seconds
from repro.experiments.workloads import WorkloadSpec, build_dataset, build_network

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_PAPER_SCALE") != "1",
    reason="paper-scale run is opt-in (REPRO_PAPER_SCALE=1)",
)


def bench_paper_scale_atl5000(benchmark, emit):
    """opt-NEAT over the full-size ATL network with 5000 objects."""
    network = build_network("ATL", network_scale=1.0)
    dataset = build_dataset(
        network, WorkloadSpec("ATL", 5000, network_scale=1.0)
    )
    neat = NEAT(network, NEATConfig(eps=6500.0))
    result = benchmark.pedantic(
        lambda: neat.run_opt(dataset), rounds=1, iterations=1
    )
    emit(
        "paper_scale",
        "Paper-scale run: full ATL network, ATL5000\n"
        f"  network: {network.junction_count} junctions, "
        f"{network.segment_count} segments (paper: 6979 / 9187)\n"
        f"  dataset: {dataset.total_points} points (paper: 1,277,521)\n"
        f"  opt-NEAT: {format_seconds(result.timings.total)} "
        f"(paper: 59.7 s on 2008 Java) -> {result.flow_count} flows, "
        f"{result.cluster_count} clusters",
    )
    assert result.flows
