"""Unit tests for the calibrated synthetic network generators."""

from __future__ import annotations

import pytest

from repro.roadnet.generators import (
    GridConfig,
    TABLE1_TARGETS,
    atlanta_like,
    generate_grid_network,
    miami_like,
    san_jose_like,
)
from repro.roadnet.shortest_path import dijkstra_single_source
from repro.roadnet.stats import network_stats


class TestGridConfig:
    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            GridConfig(rows=1, cols=5)

    def test_rejects_large_jitter(self):
        with pytest.raises(ValueError):
            GridConfig(rows=3, cols=3, jitter=0.5)

    def test_rejects_low_degree(self):
        with pytest.raises(ValueError):
            GridConfig(rows=3, cols=3, avg_degree=1.5)


class TestGenerateGridNetwork:
    def test_deterministic_for_seed(self):
        config = GridConfig(rows=8, cols=8, seed=42)
        a = generate_grid_network(config)
        b = generate_grid_network(config)
        assert a.segment_count == b.segment_count
        assert [s.endpoints for s in a.segments()] == [
            s.endpoints for s in b.segments()
        ]

    def test_different_seeds_differ(self):
        a = generate_grid_network(GridConfig(rows=8, cols=8, seed=1))
        b = generate_grid_network(GridConfig(rows=8, cols=8, seed=2))
        assert [s.endpoints for s in a.segments()] != [
            s.endpoints for s in b.segments()
        ]

    def test_connected(self):
        net = generate_grid_network(GridConfig(rows=10, cols=10, seed=3))
        reachable = dijkstra_single_source(net, net.node_ids()[0])
        assert len(reachable) == net.junction_count

    def test_respects_max_degree(self):
        config = GridConfig(rows=10, cols=10, max_degree=5, hub_count=5, seed=4)
        net = generate_grid_network(config)
        assert max(net.degree(n) for n in net.node_ids()) <= 5

    def test_average_degree_near_target(self):
        config = GridConfig(rows=20, cols=20, avg_degree=2.8, seed=5)
        net = generate_grid_network(config)
        stats = network_stats(net)
        assert stats.avg_degree == pytest.approx(2.8, abs=0.15)

    def test_road_classes_present(self):
        net = generate_grid_network(GridConfig(rows=12, cols=12, seed=6))
        classes = {s.road_class for s in net.segments()}
        assert "local" in classes
        assert "arterial" in classes or "highway" in classes

    def test_speed_limits_by_class(self):
        net = generate_grid_network(GridConfig(rows=12, cols=12, seed=6))
        for segment in net.segments():
            if segment.road_class == "local":
                assert segment.speed_limit == pytest.approx(13.9)


class TestPresets:
    @pytest.mark.parametrize(
        "factory,region",
        [(atlanta_like, "ATL"), (san_jose_like, "SJ"), (miami_like, "MIA")],
    )
    def test_preset_tracks_table1(self, factory, region):
        scale = 0.05 if region != "MIA" else 0.01
        net = factory(scale=scale)
        stats = network_stats(net)
        junctions, segments, avg_len, _max_deg = TABLE1_TARGETS[region]
        # Junction count proportional to scale (within 25%).
        assert stats.junction_count == pytest.approx(junctions * scale, rel=0.25)
        # Average degree tracks the target ratio (within 10%).
        target_degree = 2.0 * segments / junctions
        assert stats.avg_degree == pytest.approx(target_degree, rel=0.10)
        # Average segment length within 15% of the paper's.
        assert stats.avg_segment_length_m == pytest.approx(avg_len, rel=0.15)

    def test_preset_connected(self):
        net = atlanta_like(scale=0.05)
        reachable = dijkstra_single_source(net, net.node_ids()[0])
        assert len(reachable) == net.junction_count

    def test_preset_names(self):
        assert "ATL" in atlanta_like(scale=0.02).name
        assert "SJ" in san_jose_like(scale=0.02).name
        assert "MIA" in miami_like(scale=0.005).name
