"""The NEAT pipeline: base-NEAT, flow-NEAT and opt-NEAT.

Section IV of the paper names three usable variants of the framework:

* **base-NEAT** — Phase 1 only: trajectories become density-sorted base
  clusters (already useful: thresholding them shows where traffic is
  densest, matching what TraClus finds — Section IV-C);
* **flow-NEAT** — Phases 1+2: base clusters merge into flow clusters
  describing dense *and continuous* traffic streams;
* **opt-NEAT** — all three phases: flows within network proximity ``ε`` are
  merged into final trajectory clusters.

:class:`NEAT` runs any of the three over a trajectory set and returns a
:class:`~repro.core.result.NEATResult` with outputs, timings and counters.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from ..errors import PersistenceError
from ..obs import Telemetry, get_logger
from ..roadnet.network import RoadNetwork
from ..roadnet.shortest_path import ShortestPathEngine
from .base_cluster import form_base_clusters
from .config import NEATConfig
from .flow_formation import form_flow_clusters
from .model import Trajectory, TrajectoryDataset
from .refinement import RefinementStats, refine_flow_clusters
from .result import NEATResult, PhaseTimings

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience import FaultInjector

#: The three framework variants, in increasing phase count.
MODES = ("base", "flow", "opt")

#: Wire format of resumable phase checkpoints (see NEAT.run_resumable).
PHASE_CHECKPOINT_FORMAT = "repro-phase-checkpoint"
PHASE_CHECKPOINT_VERSION = 1

_log = get_logger("core.pipeline")


def _pool_snapshot(metrics) -> dict[str, int] | None:
    """Baseline of the process-wide ``pool.*`` counters for one run."""
    if metrics is None:
        return None
    from ..parallel import pool_counters

    return pool_counters()


def _publish_pool_deltas(metrics, before: dict[str, int] | None) -> None:
    """Publish this run's worker-pool activity as ``pool.*`` counters.

    The pool is a process-wide singleton, so its counters accumulate
    across runs; each run publishes only its own delta into the bound
    metrics registry.  Zero deltas are skipped — a serial run adds no
    ``pool.*`` instruments at all.
    """
    if metrics is None or before is None:
        return
    from ..parallel import pool_counters

    after = pool_counters()
    for name, value in after.items():
        delta = value - before.get(name, 0)
        if delta:
            metrics.counter(name, _POOL_COUNTER_HELP[name]).inc(delta)


#: Catalogue text for the pool counters (docs/observability.md mirrors it).
_POOL_COUNTER_HELP = {
    "pool.starts": "Worker-pool executor starts (cold starts)",
    "pool.restarts": "Worker-pool restarts (new resources, growth, crashes)",
    "pool.batches": "Parallel batches dispatched to the pool",
    "pool.reuses": "Batches served by already-running workers",
    "pool.tasks": "Individual tasks shipped to workers",
    "pool.bytes_shipped": "Pickled task payload bytes shipped to workers",
    "pool.broadcast_bytes": "Bytes of broadcast-once object resources",
    "pool.shm_segments": "Shared-memory segments published",
    "pool.shm_bytes": "Bytes published to shared-memory segments",
    "pool.crash_recoveries": "Batches retried after a worker crash",
    "pool.serial_fallbacks": "Batches that fell back to inline execution",
}


class NEAT:
    """Road-network-aware trajectory clustering (the paper's contribution).

    Args:
        network: The road network the trajectories travel on.
        config: Algorithm parameters; defaults to :class:`NEATConfig`.

    Example:
        >>> from repro.roadnet import line_network
        >>> from repro.core import NEAT, Trajectory, Location
        >>> net = line_network(3)
        >>> trs = [Trajectory(i, (
        ...     Location(0, 10.0, 0.0, 0.0), Location(2, 250.0, 0.0, 60.0),
        ... )) for i in range(4)]
        >>> result = NEAT(net).run(trs, mode="flow")
        >>> result.flow_count
        1
    """

    def __init__(
        self,
        network: RoadNetwork,
        config: NEATConfig | None = None,
        engine: ShortestPathEngine | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.network = network
        self.config = config if config is not None else NEATConfig()
        # Shared across runs so Phase 3 amortizes shortest-path work the
        # way a long-lived NEAT server would (Section III-C's incremental
        # online clustering discussion).  Callers can inject an engine,
        # e.g. one backed by a LandmarkOracle for ALT acceleration.
        if engine is not None and engine.directed:
            raise ValueError("Phase 3 needs an undirected engine")
        self.engine = (
            engine if engine is not None
            else ShortestPathEngine(
                network, directed=False, backend=self.config.sp_backend
            )
        )
        # None (the default) means "fresh enabled telemetry per run", so
        # every NEATResult carries its own isolated snapshot.  Injecting a
        # bundle accumulates across runs; Telemetry.disabled() turns the
        # layer off entirely (PhaseTimings then reads all-zero).
        self.telemetry = telemetry

    # ------------------------------------------------------------------
    def run(
        self,
        trajectories: TrajectoryDataset | Sequence[Trajectory] | Iterable[Trajectory],
        mode: str = "opt",
    ) -> NEATResult:
        """Cluster ``trajectories`` with the requested framework variant.

        Args:
            trajectories: A dataset or any iterable of trajectories.
            mode: ``"base"``, ``"flow"`` or ``"opt"``.

        Returns:
            The phase outputs, timings and counters of this run.
        """
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        trajectory_list = self._as_list(trajectories)

        telemetry = (
            self.telemetry if self.telemetry is not None else Telemetry.create()
        )
        result = NEATResult(mode=mode, timings=PhaseTimings())
        with telemetry.tracer.span("neat.run"):
            self._run_phases(trajectory_list, mode, result, telemetry)
        if telemetry.enabled:
            result.telemetry = telemetry.snapshot()
        _log.info(
            "run complete",
            mode=mode,
            trajectories=len(trajectory_list),
            base_clusters=len(result.base_clusters),
            flows=len(result.flows),
            clusters=len(result.clusters),
            seconds=round(result.timings.total, 6),
        )
        return result

    def _run_phases(
        self,
        trajectory_list: list[Trajectory],
        mode: str,
        result: NEATResult,
        telemetry: Telemetry,
    ) -> None:
        """Run the requested phases, timing each with a span.

        ``PhaseTimings`` is a derived view of the span durations; the
        metrics registry receives each phase module's counters.
        """
        tracer = telemetry.tracer
        metrics = telemetry.metrics if telemetry.enabled else None
        # (Re)bind per run: a fresh registry sees per-run deltas even on a
        # warm shared engine; disabled runs unbind so the hot path pays
        # only the None checks.
        self.engine.bind_metrics(metrics)

        pool_before = _pool_snapshot(metrics)
        try:
            self._phase1(trajectory_list, result, tracer, metrics)
            if mode == "base":
                return
            self._phase2(result, tracer, metrics)
            if mode == "flow":
                return
            self._phase3(result, tracer, metrics)
        finally:
            _publish_pool_deltas(metrics, pool_before)

    def _phase1(self, trajectory_list, result, tracer, metrics) -> None:
        with tracer.span("phase1.fragmentation") as span:
            result.base_clusters = form_base_clusters(
                self.network,
                trajectory_list,
                keep_interior_points=self.config.keep_interior_points,
                metrics=metrics,
                workers=self.config.workers,
            )
        result.timings.base = span.duration
        _log.debug(
            "phase1 done",
            base_clusters=len(result.base_clusters),
            seconds=round(span.duration, 6),
        )

    def _phase2(self, result, tracer, metrics) -> None:
        with tracer.span("phase2.flow_formation") as span:
            formation = form_flow_clusters(
                self.network, result.base_clusters, self.config, metrics=metrics
            )
        result.timings.flow = span.duration
        result.flows = formation.flows
        result.noise_flows = formation.noise_flows
        result.min_card_used = formation.min_card_used
        _log.debug(
            "phase2 done",
            flows=len(result.flows),
            noise_flows=len(result.noise_flows),
            min_card=result.min_card_used,
            seconds=round(span.duration, 6),
        )

    def _phase3(self, result, tracer, metrics) -> None:
        stats = RefinementStats()
        with tracer.span("phase3.refinement") as span:
            result.clusters = refine_flow_clusters(
                self.network,
                result.flows,
                self.config,
                engine=self.engine,
                stats=stats,
                metrics=metrics,
                workers=self.config.workers,
            )
        result.timings.refine = span.duration
        result.refinement_stats = stats
        _log.debug(
            "phase3 done",
            clusters=len(result.clusters),
            elb_pruned=stats.elb_pruned,
            sp_computations=stats.shortest_path_computations,
            seconds=round(span.duration, 6),
        )

    # ------------------------------------------------------------------
    def run_resumable(
        self,
        trajectories,
        mode: str = "opt",
        state_dir: str | Path = ".neat-state",
        *,
        fsync: bool = True,
        faults: "FaultInjector | None" = None,
    ) -> NEATResult:
        """Like :meth:`run`, but checkpointing after every completed phase.

        A sealed phase checkpoint (``state_dir/phases/``) is written after
        Phase 1, Phase 2 and the final phase, keyed by a fingerprint of
        the result-affecting configuration, the network and the input
        trajectories.  A rerun with the same inputs resumes from the
        furthest matching checkpoint — a killed Phase 3 run redoes only
        Phase 3.  A corrupt, torn or mismatched checkpoint is never
        trusted: the run silently recomputes from scratch (and a failed
        checkpoint *write* never fails the run — resumability is
        best-effort, the computation is not).

        Restored phases report zero in ``result.timings`` (nothing was
        recomputed for them).
        """
        from .serialize import result_from_dict, result_to_dict

        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        trajectory_list = self._as_list(trajectories)
        fingerprint = self._fingerprint(trajectory_list)

        from ..persist.store import SnapshotStore

        store = SnapshotStore(
            Path(state_dir) / "phases", keep=2, fsync=fsync, faults=faults,
        )
        done = -1  # index into MODES of the furthest restored phase
        result = NEATResult(mode=mode, timings=PhaseTimings())
        try:
            latest = store.read_latest()
        except PersistenceError as error:
            _log.warning("phase checkpoints unreadable", error=repr(error))
            latest = None
        if latest is not None:
            generation, payload = latest
            try:
                document = json.loads(payload.decode("utf-8"))
                if (
                    document.get("format") == PHASE_CHECKPOINT_FORMAT
                    and document.get("version") == PHASE_CHECKPOINT_VERSION
                    and document.get("fingerprint") == fingerprint
                    and document.get("phase") in MODES
                ):
                    restored = result_from_dict(document["result"], self.network)
                    phase = document["phase"]
                    done = min(MODES.index(phase), MODES.index(mode))
                    result.base_clusters = restored.base_clusters
                    if done >= 1:
                        result.flows = restored.flows
                        result.noise_flows = restored.noise_flows
                        result.min_card_used = restored.min_card_used
                    if done >= 2:
                        result.clusters = restored.clusters
                    _log.info(
                        "resumed from phase checkpoint",
                        phase=phase, generation=generation.number,
                    )
            except Exception as error:
                # Undecodable or wrong-shaped checkpoint: recompute.
                _log.warning(
                    "phase checkpoint ignored",
                    generation=generation.number, error=repr(error),
                )
                done = -1

        telemetry = (
            self.telemetry if self.telemetry is not None else Telemetry.create()
        )
        tracer = telemetry.tracer
        metrics = telemetry.metrics if telemetry.enabled else None
        self.engine.bind_metrics(metrics)

        def save(phase: str) -> None:
            document = {
                "format": PHASE_CHECKPOINT_FORMAT,
                "version": PHASE_CHECKPOINT_VERSION,
                "fingerprint": fingerprint,
                "phase": phase,
                "result": result_to_dict(result, self.network.name),
            }
            try:
                store.write(
                    json.dumps(document, sort_keys=True).encode("utf-8"),
                    watermark=MODES.index(phase),
                )
            except (PersistenceError, OSError) as error:
                _log.warning(
                    "phase checkpoint write failed",
                    phase=phase, error=repr(error),
                )

        pool_before = _pool_snapshot(metrics)
        try:
            with tracer.span("neat.run_resumable"):
                if done < 0:
                    self._phase1(trajectory_list, result, tracer, metrics)
                    save("base")
                if mode != "base" and done < 1:
                    self._phase2(result, tracer, metrics)
                    save("flow")
                if mode == "opt" and done < 2:
                    self._phase3(result, tracer, metrics)
                    save("opt")
        finally:
            _publish_pool_deltas(metrics, pool_before)
        if telemetry.enabled:
            result.telemetry = telemetry.snapshot()
        _log.info(
            "resumable run complete",
            mode=mode,
            resumed_phases=done + 1,
            flows=len(result.flows),
            clusters=len(result.clusters),
        )
        return result

    def _fingerprint(self, trajectory_list: list[Trajectory]) -> str:
        """Identity of (config, network, inputs) for checkpoint matching.

        Covers exactly the result-affecting knobs — operational settings
        (workers, retries, deadlines) deliberately excluded, so changing
        them does not invalidate checkpoints.
        """
        config = self.config
        digest = hashlib.sha256()
        digest.update(json.dumps({
            "wq": config.wq, "wk": config.wk, "wv": config.wv,
            "beta": repr(config.beta), "min_card": config.min_card,
            "eps": config.eps, "min_pts": config.min_pts,
            "use_elb": config.use_elb,
            "keep_interior_points": config.keep_interior_points,
            "network": self.network.name,
            "segments": self.network.segment_count,
        }, sort_keys=True).encode("utf-8"))
        for trajectory in trajectory_list:
            digest.update(str(trajectory.trid).encode("utf-8"))
            for location in trajectory.locations:
                digest.update(
                    f"{location.sid},{location.x!r},{location.y!r},"
                    f"{location.t!r},{location.node_id}".encode("utf-8")
                )
        return digest.hexdigest()

    # Convenience wrappers matching the paper's naming -----------------
    def run_base(self, trajectories) -> NEATResult:
        """Phase 1 only (base-NEAT)."""
        return self.run(trajectories, mode="base")

    def run_flow(self, trajectories) -> NEATResult:
        """Phases 1-2 (flow-NEAT)."""
        return self.run(trajectories, mode="flow")

    def run_opt(self, trajectories) -> NEATResult:
        """All three phases (opt-NEAT)."""
        return self.run(trajectories, mode="opt")

    @staticmethod
    def _as_list(trajectories) -> list[Trajectory]:
        if isinstance(trajectories, TrajectoryDataset):
            return list(trajectories.trajectories)
        return list(trajectories)
