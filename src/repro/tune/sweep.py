"""The grid sweep runner: score configs, elect and reproduce best_configs.

One sweep = one profile × one grid.  For every workload in the profile
the runner clusters the dataset once per grid point, records runtime and
quality metrics (reusing the benchmark harness' metrics conventions),
scores the rows on the grid's declared objective and writes, per network:

* ``sweep_<profile>_<region>.csv`` — every row, in grid order;
* ``best_config/<region>.json``   — the winning configuration, carrying
  enough provenance (workload spec, objective, cluster digest, git sha)
  to reproduce the winning run byte-identically;
* ``RESULTS_tuning.md``           — the human-readable results doc.

``reproduce_best_config`` is the round-trip check: it rebuilds the
workload from the recorded spec, replays the stored config through the
normal pipeline and compares the cluster digest — the acceptance bar for
committing a best_config.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import time
from pathlib import Path
from typing import Any, Sequence

from ..analysis.metrics import trajectory_coverage
from ..core.config import NEATConfig
from ..core.pipeline import NEAT
from ..core.serialize import result_to_dict
from ..experiments.harness import format_table
from ..experiments.workloads import WorkloadSpec, build_dataset, build_network
from .grid import expand_grid, load_grid, overlay_config, pick_best, score_rows
from .profiles import WorkloadProfile, resolve_profile

#: best_config document schema tag.
BEST_CONFIG_SCHEMA = "neat.best_config/1"

#: Axis columns come first in the sweep CSV, then these measured fields.
ROW_FIELDS = (
    "clusters",
    "flows",
    "noise_flows",
    "trajectory_coverage",
    "sp_computations",
    "pair_checks",
    "t_fragments",
    "phase3_s",
    "total_s",
    "score",
    "qualified",
    "digest",
)


def cluster_digest(result) -> str:
    """Byte-level fingerprint of a clustering (canonical serialization).

    Matches the digest the oracle and parity benches gate on: SHA-256
    over the sorted, separator-normalized ``result_to_dict`` document —
    timing-free, so identical clusters always hash identically.
    """
    document = result_to_dict(result)
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_config(network, dataset, config: NEATConfig) -> dict:
    """Cluster one workload under one config; returns the metrics row."""
    neat = NEAT(network, config)
    started = time.perf_counter()
    result = neat.run_opt(dataset)
    wall = time.perf_counter() - started
    stats = result.refinement_stats
    return {
        "clusters": len(result.clusters),
        "flows": len(result.flows),
        "noise_flows": len(result.noise_flows),
        "trajectory_coverage": round(
            trajectory_coverage(result, len(dataset)), 4
        ),
        "sp_computations": neat.engine.computations,
        "pair_checks": stats.pair_checks,
        "t_fragments": sum(
            len(cluster.fragments) for cluster in result.base_clusters
        ),
        "phase3_s": round(result.timings.refine, 4),
        "total_s": round(wall, 4),
        "digest": cluster_digest(result),
    }


def sweep_workload(
    spec: WorkloadSpec, grid_document: dict, profile_name: str
) -> dict:
    """Sweep the full grid over one workload; returns the region report."""
    network = build_network(spec.region, spec.network_scale, spec.seed)
    dataset = build_dataset(network, spec)
    overlays = expand_grid(grid_document["grid"])
    base = grid_document.get("base", {})
    objective = grid_document.get("objective", {})

    rows = []
    configs = []
    for overlay in overlays:
        config = overlay_config(base, overlay, spec.region)
        row = run_config(network, dataset, config)
        row.update({f"axis.{name}": value for name, value in overlay.items()})
        rows.append(row)
        configs.append(config)

    scored = score_rows(rows, objective)
    best_index = pick_best(scored)
    report = {
        "profile": profile_name,
        "region": spec.region,
        "objects": len(dataset),
        "grid_configs": len(overlays),
        "qualified": sum(1 for row in scored if row["qualified"]),
        "overlays": overlays,
        "rows": scored,
        "best_index": best_index,
    }
    if best_index is not None:
        report["best_config"] = _best_config_document(
            spec, configs[best_index], scored[best_index],
            overlays[best_index], objective, profile_name,
        )
    return report


def _best_config_document(
    spec: WorkloadSpec,
    config: NEATConfig,
    row: dict,
    overlay: dict,
    objective: dict,
    profile_name: str,
) -> dict:
    return {
        "schema": BEST_CONFIG_SCHEMA,
        "profile": profile_name,
        "region": spec.region,
        "workload": {
            "region": spec.region,
            "object_count": spec.object_count,
            "network_scale": spec.network_scale,
            "sample_interval": spec.sample_interval,
            "seed": spec.seed,
        },
        "objective": dict(objective),
        "grid_point": overlay,
        "config": config.to_dict(),
        "score": row["score"],
        "metrics": {
            name: row[name]
            for name in ROW_FIELDS
            if name not in ("score", "qualified", "digest")
        },
        "digest": row["digest"],
    }


def best_config_to_neat(document: dict) -> NEATConfig:
    """Rebuild the committed winning configuration (round-trip check).

    Accepts either a full best_config document or a bare config mapping,
    so ``repro cluster --config`` can consume both.
    """
    payload = document.get("config", document)
    if "schema" in payload:
        payload = {k: v for k, v in payload.items() if k != "schema"}
    return NEATConfig.from_dict(payload)


def reproduce_best_config(document: dict) -> tuple[bool, str]:
    """Replay a best_config on its recorded workload.

    Returns ``(digests_match, fresh_digest)`` — the acceptance check
    that a committed winner still reproduces its clusters byte-for-byte.
    """
    workload = document["workload"]
    spec = WorkloadSpec(
        region=workload["region"],
        object_count=workload["object_count"],
        network_scale=workload["network_scale"],
        sample_interval=workload["sample_interval"],
        seed=workload["seed"],
    )
    network = build_network(spec.region, spec.network_scale, spec.seed)
    dataset = build_dataset(network, spec)
    config = best_config_to_neat(document)
    result = NEAT(network, config).run_opt(dataset)
    fresh = cluster_digest(result)
    return fresh == document["digest"], fresh


# --------------------------------------------------------------------------
# Outputs


def _axis_names(report: dict) -> list[str]:
    return sorted(report["grid"]) if "grid" in report else sorted(
        {name for overlay in report["overlays"] for name in overlay}
    )


def write_sweep_csv(report: dict, path: Path) -> Path:
    """Every scored row in grid order, axes first."""
    axes = _axis_names(report)
    columns = (
        ["index"] + [f"axis.{name}" for name in axes] + list(ROW_FIELDS)
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, lineterminator="\n")
    writer.writeheader()
    for index, row in enumerate(report["rows"]):
        record = {"index": index}
        for name in axes:
            record[f"axis.{name}"] = json.dumps(row.get(f"axis.{name}"))
        for name in ROW_FIELDS:
            record[name] = row.get(name)
        writer.writerow(record)
    path.write_text(buffer.getvalue(), encoding="utf-8")
    return path


def render_results_doc(
    profile: WorkloadProfile, grid_path: str, reports: Sequence[dict]
) -> str:
    """The committed RESULTS_tuning.md: objective, winners, full tables."""
    lines = [
        "# Tuning sweep results",
        "",
        f"Profile: **{profile.name}** — {profile.description}.",
        f"Grid: `{grid_path}` "
        f"({reports[0]['grid_configs'] if reports else 0} configurations).",
        "",
        "Regenerate with "
        f"`repro tune sweep --grid {grid_path} --profile {profile.name}`; "
        "verify a committed winner with `repro tune reproduce --best "
        "benchmarks/tuning/best_config/<region>.json` (the digest must "
        "match byte-for-byte).",
        "",
    ]
    for report in reports:
        lines.append(f"## {report['region']} ({report['objects']} objects)")
        lines.append("")
        best = report.get("best_config")
        if best is None:
            lines.append(
                "No configuration met the guardrails — nothing committed."
            )
            lines.append("")
            continue
        lines.append(
            f"Winner: grid point {report['best_index']} "
            f"`{json.dumps(best['grid_point'], sort_keys=True)}` with "
            f"{best['objective'].get('minimize', 'total_s')} = "
            f"{best['score']:g} "
            f"({report['qualified']}/{report['grid_configs']} qualified); "
            f"digest `{best['digest'][:16]}…`."
        )
        lines.append("")
        axes = _axis_names(report)
        header = (
            ["#"] + axes
            + ["clusters", "coverage", "phase3 s", "total s", "score", "ok"]
        )
        rows = []
        for index, row in enumerate(report["rows"]):
            rows.append(
                [
                    ("*" if index == report["best_index"] else "")
                    + str(index)
                ]
                + [json.dumps(row.get(f"axis.{name}")) for name in axes]
                + [
                    row["clusters"],
                    row["trajectory_coverage"],
                    row["phase3_s"],
                    row["total_s"],
                    f"{row['score']:g}",
                    "yes" if row["qualified"] else "no",
                ]
            )
        lines.append("```")
        lines.append(format_table(header, rows))
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def sweep_artifact(reports: Sequence[dict], profile_name: str, wall_s: float) -> dict:
    """The BENCH-style artifact for the trend ledger."""
    return {
        "profile": profile_name,
        "grid_configs": reports[0]["grid_configs"] if reports else 0,
        "networks": len(reports),
        "runs": sum(report["grid_configs"] for report in reports),
        "qualified": sum(report["qualified"] for report in reports),
        "sweep_s": round(wall_s, 2),
        "regions": {
            report["region"]: {
                "best_index": report["best_index"],
                "score": report["rows"][report["best_index"]]["score"]
                if report["best_index"] is not None else None,
                "clusters": report["rows"][report["best_index"]]["clusters"]
                if report["best_index"] is not None else None,
                "qualified": report["qualified"],
            }
            for report in reports
        },
    }


def run_sweep(
    grid_path: str | Path,
    profile_name: str,
    out_dir: str | Path,
    smoke: bool = False,
) -> dict:
    """The full sweep: every profile workload × every grid point.

    Writes the per-region CSVs, best_config JSONs and the results doc
    under ``out_dir`` and returns a summary report (the artifact document
    plus per-region reports under ``"reports"``).
    """
    from .grid import validate_grid

    grid_document = validate_grid(load_grid(grid_path))
    profile = resolve_profile(profile_name)
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    started = time.perf_counter()
    reports = []
    for spec in profile.resolved_specs(smoke=smoke):
        report = sweep_workload(spec, grid_document, profile.name)
        write_sweep_csv(
            report, out / f"sweep_{profile.name}_{spec.region}.csv"
        )
        best = report.get("best_config")
        if best is not None:
            target = out / "best_config" / f"{spec.region}.json"
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(
                json.dumps(best, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        reports.append(report)
    wall = time.perf_counter() - started

    (out / "RESULTS_tuning.md").write_text(
        render_results_doc(profile, str(grid_path), reports) + "\n",
        encoding="utf-8",
    )
    summary = sweep_artifact(reports, profile.name, wall)
    summary["reports"] = reports
    return summary
