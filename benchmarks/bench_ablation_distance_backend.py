"""Ablation: Phase 3 distance backend (Dijkstra vs ALT) x ELB.

Figure 7 prunes whole distance computations with the Euclidean lower
bound; ALT landmarks accelerate the computations that remain.  This bench
crosses the two, confirming (a) identical clustering under every backend,
(b) the cost ordering ELB+ALT <= ELB+Dijkstra <= Dijkstra.
"""

from __future__ import annotations

from conftest import NEAT_COUNTS

from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT
from repro.experiments.figures import DEFAULT_EPS
from repro.experiments.harness import format_seconds, format_table, timed
from repro.experiments.workloads import build_suite
from repro.roadnet.landmarks import LandmarkOracle
from repro.roadnet.shortest_path import ShortestPathEngine


def bench_ablation_distance_backend(benchmark, emit):
    """Cross ELB on/off with Dijkstra/ALT backends on the largest SJ set."""
    network, datasets = build_suite("SJ", NEAT_COUNTS)
    dataset = datasets[-1]
    oracle, oracle_seconds = timed(
        lambda: LandmarkOracle(network, landmark_count=8)
    )

    def run(use_elb: bool, use_alt: bool):
        config = NEATConfig(eps=DEFAULT_EPS["SJ"], use_elb=use_elb)
        engine = ShortestPathEngine(
            network, oracle=oracle if use_alt else None
        )
        neat = NEAT(network, config, engine=engine)
        return timed(lambda: neat.run_opt(dataset))

    rows = []
    shapes = []
    for label, use_elb, use_alt in (
        ("Dijkstra", False, False),
        ("ALT", False, True),
        ("ELB + Dijkstra", True, False),
        ("ELB + ALT", True, True),
    ):
        result, seconds = run(use_elb, use_alt)
        rows.append(
            (
                label,
                format_seconds(result.timings.refine),
                result.refinement_stats.shortest_path_computations,
                format_seconds(seconds),
            )
        )
        shapes.append(
            sorted(
                tuple(sorted(tuple(f.sids) for f in c.flows))
                for c in result.clusters
            )
        )

    # Every backend yields the identical clustering.
    assert all(shape == shapes[0] for shape in shapes[1:])

    benchmark.pedantic(
        lambda: run(True, True), rounds=2, iterations=1
    )
    emit(
        "ablation_distance_backend",
        "Phase 3 distance backend ablation (largest SJ dataset)\n"
        + format_table(
            ("backend", "phase3 time", "distance computations", "total"),
            rows,
        )
        + f"\n(landmark preprocessing: {format_seconds(oracle_seconds)}, "
        "paid once per network; identical clusters under all backends.)",
    )
