"""Auto-tuning harness: dataset passports, workload profiles, grid sweeps.

NEAT exposes a wide knob surface (the SF weights ``wq/wk/wv``, ``beta``,
``minCard``, ``eps``, the oracle tier, landmark count, vector backend,
worker count, ...) and nothing in the bench suite tunes it systematically.
This package turns the benchmark harness into an optimization loop:

* :mod:`repro.tune.passport` — per-dataset/per-network sanity statistics
  (trajectory counts, point densities, segment-length and degree
  distributions, SF-component ranges), one JSON passport per dataset plus
  a summary CSV;
* :mod:`repro.tune.profiles` — the named workload ladder
  (``small`` / ``medium`` / ``stress``) layered on
  :mod:`repro.experiments.workloads` and selectable from the CLI and every
  benchmark via a shared ``--profile`` flag;
* :mod:`repro.tune.grid` — the committed ``tune_grid.yaml`` loader, the
  deterministic grid expansion and the objective scoring
  (runtime minimization under cluster-quality guardrails);
* :mod:`repro.tune.sweep` — the sweep runner: reuses the benchmark
  harness and metrics registry, writes one ``best_config`` JSON per
  network plus a results doc, and feeds the bench trend ledger.

See ``docs/tuning.md`` for the workflow.
"""

from .grid import expand_grid, load_grid, overlay_config, pick_best, score_rows
from .passport import (
    build_passport,
    dataset_passport,
    network_passport,
    passports_artifact,
    summary_csv,
    write_passport,
)
from .profiles import (
    PROFILES,
    WorkloadProfile,
    add_profile_argument,
    resolve_profile,
)
from .sweep import (
    best_config_to_neat,
    cluster_digest,
    reproduce_best_config,
    run_sweep,
)

__all__ = [
    "PROFILES",
    "WorkloadProfile",
    "add_profile_argument",
    "best_config_to_neat",
    "build_passport",
    "cluster_digest",
    "dataset_passport",
    "expand_grid",
    "load_grid",
    "network_passport",
    "overlay_config",
    "passports_artifact",
    "pick_best",
    "reproduce_best_config",
    "resolve_profile",
    "run_sweep",
    "score_rows",
    "summary_csv",
    "write_passport",
]
