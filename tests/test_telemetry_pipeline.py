"""Pipeline-level telemetry: snapshots agree with the classic counters.

The acceptance contract of the telemetry layer: whatever
``PhaseTimings``, ``RefinementStats`` and the flow counts report must be
readable — with identical values — from the ``NEATResult.telemetry``
snapshot, its Prometheus rendering, and the CLI's ``--metrics-out``
artifact.
"""

from __future__ import annotations

import json

import pytest
from conftest import trajectory_through

from repro.core import NEAT, NEATConfig, IncrementalNEAT
from repro.distributed.service import NeatService
from repro.experiments.harness import export_metrics, result_metrics
from repro.obs import Telemetry
from repro.roadnet.builder import line_network
from repro.roadnet.shortest_path import ShortestPathEngine


@pytest.fixture
def chain12():
    return line_network(12, segment_length=100.0)


@pytest.fixture
def corridor(chain12):
    """Two traffic streams on one chain, far enough apart for the ELB."""
    trajectories = []
    for trid in range(4):
        trajectories.append(trajectory_through(chain12, trid, [0, 1, 2]))
    for trid in range(4, 8):
        trajectories.append(trajectory_through(chain12, trid, [9, 10, 11]))
    return trajectories


@pytest.fixture
def near_corridor(chain12):
    """Two streams close enough that refinement must compute distances."""
    trajectories = []
    for trid in range(4):
        trajectories.append(trajectory_through(chain12, trid, [0, 1, 2, 3]))
    for trid in range(4, 8):
        trajectories.append(trajectory_through(chain12, trid, [7, 8, 9, 10]))
    return trajectories


def _counters(result):
    return result.telemetry["metrics"]["counters"]


class TestSnapshotAgreement:
    def test_phase_spans_match_timings(self, chain12, corridor):
        result = NEAT(chain12, NEATConfig(min_card=0, eps=300.0)).run_opt(corridor)
        trace = result.telemetry["trace"]
        assert [root["name"] for root in trace] == ["neat.run"]
        children = {c["name"]: c["duration_s"] for c in trace[0]["children"]}
        assert children["phase1.fragmentation"] == result.timings.base
        assert children["phase2.flow_formation"] == result.timings.flow
        assert children["phase3.refinement"] == result.timings.refine
        assert trace[0]["duration_s"] >= result.timings.total
        assert result.timings.base > 0.0

    def test_refinement_counters_match_stats(self, chain12, corridor):
        result = NEAT(chain12, NEATConfig(min_card=0, eps=300.0)).run_opt(corridor)
        stats = result.refinement_stats
        counters = _counters(result)
        assert counters["neat.phase3.pair_checks"] == stats.pair_checks
        assert counters["neat.phase3.elb_pruned"] == stats.elb_pruned
        assert (
            counters["neat.phase3.hausdorff_evaluations"]
            == stats.hausdorff_evaluations
        )
        assert (
            counters["neat.phase3.sp_computations"]
            == stats.shortest_path_computations
        )
        assert counters["neat.phase3.clusters"] == len(result.clusters)
        # The two streams are > eps apart, so the ELB must have pruned.
        assert stats.elb_pruned > 0

    def test_phase1_phase2_counters(self, chain12, corridor):
        result = NEAT(chain12, NEATConfig(min_card=0, eps=300.0)).run_opt(corridor)
        counters = _counters(result)
        assert counters["neat.phase1.trajectories"] == len(corridor)
        assert counters["neat.phase1.t_fragments"] == sum(
            len(cluster) for cluster in result.base_clusters
        )
        assert counters["neat.phase1.base_clusters"] == len(result.base_clusters)
        kept, noise = len(result.flows), len(result.noise_flows)
        assert counters["neat.phase2.flows_formed"] == kept + noise
        assert counters["neat.phase2.flows_kept"] == kept
        assert counters["neat.phase2.min_card_drops"] == noise
        assert counters["neat.phase2.merges"] == sum(
            len(flow.members) - 1
            for flow in result.flows + result.noise_flows
        )
        gauges = result.telemetry["metrics"]["gauges"]
        assert gauges["neat.phase2.min_card_used"] == result.min_card_used

    def test_engine_counters_routed_through_registry(self, chain12, near_corridor):
        engine = ShortestPathEngine(chain12, directed=False)
        neat = NEAT(chain12, NEATConfig(min_card=0, eps=300.0), engine=engine)
        result = neat.run_opt(near_corridor)
        counters = _counters(result)
        assert counters["roadnet.sp.computations"] == engine.computations
        assert counters["roadnet.sp.cache_hits"] == engine.cache_hits
        assert counters["roadnet.sp.nodes_expanded"] == engine.nodes_expanded
        assert counters["roadnet.sp.computations"] > 0

    def test_shared_engine_reports_per_run_deltas(self, chain12, near_corridor):
        engine = ShortestPathEngine(chain12, directed=False)
        neat = NEAT(chain12, NEATConfig(min_card=0, eps=300.0), engine=engine)
        first = neat.run_opt(near_corridor)
        second = neat.run_opt(near_corridor)
        # Warm cache: the second run recomputes nothing but still answers.
        assert _counters(second)["roadnet.sp.computations"] == 0
        assert _counters(second)["roadnet.sp.cache_hits"] > 0
        assert _counters(first)["roadnet.sp.computations"] == engine.computations

    def test_base_and_flow_modes_stop_early(self, chain12, corridor):
        config = NEATConfig(min_card=0, eps=300.0)
        base = NEAT(chain12, config).run_base(corridor)
        names = [c["name"] for c in base.telemetry["trace"][0]["children"]]
        assert names == ["phase1.fragmentation"]
        flow = NEAT(chain12, config).run_flow(corridor)
        names = [c["name"] for c in flow.telemetry["trace"][0]["children"]]
        assert names == ["phase1.fragmentation", "phase2.flow_formation"]
        assert "neat.phase3.pair_checks" not in _counters(flow)


class TestDisabledTelemetry:
    def test_no_snapshot_and_zero_timings(self, chain12, corridor):
        neat = NEAT(
            chain12, NEATConfig(min_card=0, eps=300.0),
            telemetry=Telemetry.disabled(),
        )
        result = neat.run_opt(corridor)
        assert result.telemetry == {}
        assert result.timings.total == 0.0
        # The classic counters still work: they are independent of obs.
        assert result.refinement_stats.pair_checks > 0
        assert result.clusters

    def test_results_identical_to_enabled(self, chain12, corridor):
        config = NEATConfig(min_card=0, eps=300.0)
        enabled = NEAT(chain12, config).run_opt(corridor)
        disabled = NEAT(
            chain12, config, telemetry=Telemetry.disabled()
        ).run_opt(corridor)
        assert [tuple(f.sids) for f in disabled.flows] == [
            tuple(f.sids) for f in enabled.flows
        ]
        assert [
            sorted(tuple(f.sids) for f in c.flows) for c in disabled.clusters
        ] == [sorted(tuple(f.sids) for f in c.flows) for c in enabled.clusters]


class TestInjectedTelemetry:
    def test_prometheus_export_carries_run_counters(self, chain12, corridor):
        telemetry = Telemetry.create()
        NEAT(
            chain12, NEATConfig(min_card=0, eps=300.0), telemetry=telemetry
        ).run_opt(corridor)
        text = telemetry.metrics.to_prometheus()
        assert "# TYPE neat_phase3_elb_pruned counter" in text
        assert "# TYPE neat_phase2_min_card_used gauge" in text
        assert "roadnet_sp_computations" in text

    def test_save_writes_json_snapshot(self, chain12, corridor, tmp_path):
        telemetry = Telemetry.create()
        result = NEAT(
            chain12, NEATConfig(min_card=0, eps=300.0), telemetry=telemetry
        ).run_opt(corridor)
        path = telemetry.save(tmp_path / "metrics.json")
        document = json.loads(path.read_text())
        assert (
            document["metrics"]["counters"]["neat.phase3.sp_computations"]
            == result.refinement_stats.shortest_path_computations
        )
        assert document["trace"][0]["name"] == "neat.run"


class TestEngineCounters:
    def test_reset_counters_zeroes_everything(self, chain12):
        engine = ShortestPathEngine(chain12, directed=False)
        engine.distance(0, 5)
        engine.distance(0, 5)  # cache hit
        assert engine.computations == 1
        assert engine.cache_hits == 1
        assert engine.nodes_expanded > 0
        engine.reset_counters()
        assert engine.computations == 0
        assert engine.cache_hits == 0
        assert engine.nodes_expanded == 0
        # The memo table survives a counter reset.
        engine.distance(0, 5)
        assert engine.computations == 0
        assert engine.cache_hits == 1

    def test_clear_also_drops_cache(self, chain12):
        engine = ShortestPathEngine(chain12, directed=False)
        engine.distance(0, 5)
        engine.clear()
        engine.distance(0, 5)
        assert engine.computations == 1
        assert engine.cache_hits == 0

    def test_back_to_back_runs_with_reset_match_figure7(
        self, chain12, near_corridor
    ):
        """The satellite scenario: a shared engine, per-run numbers."""
        engine = ShortestPathEngine(chain12, directed=False)
        neat = NEAT(chain12, NEATConfig(min_card=0, eps=300.0), engine=engine)
        neat.run_opt(near_corridor)
        first_total = engine.computations
        assert first_total > 0
        engine.clear()
        neat.run_opt(near_corridor)
        assert engine.computations == first_total


class TestIncrementalAndService:
    def test_incremental_counters_accumulate(self, chain12, corridor):
        incremental = IncrementalNEAT(chain12, NEATConfig(min_card=0, eps=300.0))
        incremental.add_batch(corridor[:4])
        incremental.add_batch(corridor[4:], auto_offset_ids=True)
        metrics = incremental.telemetry.metrics
        assert metrics.value("incremental.batches") == 2
        assert metrics.value("incremental.trajectories") == len(corridor)
        assert metrics.value("incremental.retained_flows") == len(incremental.flows)
        histogram = metrics.get("incremental.batch_seconds")
        assert histogram.count == 2
        assert histogram.sum > 0.0

    def test_service_stats_derive_from_registry(self, chain12, corridor):
        service = NeatService(chain12, NEATConfig(min_card=0, eps=300.0))
        service.submit(corridor[:4])
        service.submit(corridor[4:])
        service.get_clustering()
        service.get_flow_summaries()
        stats = service.stats()
        assert stats.batches_ingested == 2
        assert stats.trajectories_ingested == len(corridor)
        assert stats.queries_served == 2
        assert stats.submit_seconds_total > 0.0
        snapshot = service.metrics_snapshot()
        counters = snapshot["metrics"]["counters"]
        assert counters["service.batches_ingested"] == 2
        assert counters["service.queries_served"] == 2
        histograms = snapshot["metrics"]["histograms"]
        assert histograms["service.submit_latency_seconds"]["count"] == 2
        assert histograms["service.query_latency_seconds"]["count"] == 2


class TestHarnessHelpers:
    def test_result_metrics_prefers_snapshot(self, chain12, corridor):
        result = NEAT(chain12, NEATConfig(min_card=0, eps=300.0)).run_opt(corridor)
        assert result_metrics(result) is result.telemetry

    def test_result_metrics_derives_when_disabled(self, chain12, corridor):
        result = NEAT(
            chain12, NEATConfig(min_card=0, eps=300.0),
            telemetry=Telemetry.disabled(),
        ).run_opt(corridor)
        derived = result_metrics(result)
        counters = derived["metrics"]["counters"]
        assert (
            counters["neat.phase3.elb_pruned"]
            == result.refinement_stats.elb_pruned
        )
        assert derived["trace"][0]["name"] == "neat.run"

    def test_export_metrics_roundtrip(self, chain12, corridor, tmp_path):
        result = NEAT(chain12, NEATConfig(min_card=0, eps=300.0)).run_opt(corridor)
        path = export_metrics(result_metrics(result), tmp_path / "out" / "m.json")
        document = json.loads(path.read_text())
        assert document == result.telemetry
