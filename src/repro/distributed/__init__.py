"""Distributed preprocessing substrate (the paper's Section II-C sketch).

The NEAT system "distributes trajectory datasets across multiple nodes in
a cluster.  These data nodes can perform some data preprocessing tasks."
This package implements that 3-tier deployment two ways: simulated
in-process :class:`DataNode` s, and *real* shard worker processes
(``repro shard-node``) reached over the framed TCP wire protocol of
:mod:`repro.distributed.transport`, partitioned by map region through
the consistent-hash ring of :mod:`repro.distributed.shardmap`.  Either
way, data nodes run Phase 1 over their trajectory shards, the
coordinator merges the partial base clusters (base-cluster formation is
a group-by, so the merge is exact) and runs Phases 2-3 centrally —
byte-identical to a serial run under any partition.

The tier is fault-tolerant: dispatches retry under
:class:`~repro.resilience.RetryPolicy`, dead nodes are tracked, trigger
a deterministic ring rebalance, and their shards are re-dispatched in
ring preference order (or reported in ``NEATResult.dropped_shards``),
and the :class:`NeatService` facade adds admission control, per-call
deadlines, a circuit breaker and degraded-mode (stale-snapshot) serving.
See ``docs/robustness.md``.
"""

from .nodes import DataNode, NeatCoordinator, merge_base_clusters, shard_round_robin
from .service import NeatService, ServiceStats
from .shardmap import HashRing, RegionShardMap, boundary_sids, partition_slices
from .transport import (
    ConnectionPool,
    RemoteDataNode,
    ShardNodeServer,
    ShardProcess,
    TransportClient,
    spawn_local_shards,
    stop_shards,
)

__all__ = [
    "ConnectionPool",
    "DataNode",
    "HashRing",
    "NeatCoordinator",
    "NeatService",
    "RegionShardMap",
    "RemoteDataNode",
    "ServiceStats",
    "ShardNodeServer",
    "ShardProcess",
    "TransportClient",
    "boundary_sids",
    "merge_base_clusters",
    "partition_slices",
    "shard_round_robin",
    "spawn_local_shards",
    "stop_shards",
]
