"""Tests for CSV import/export of road networks."""

from __future__ import annotations

import pytest

from repro.errors import RoadNetworkError
from repro.roadnet.csv_io import load_network_csv, save_network_csv
from repro.roadnet.generators import GridConfig, generate_grid_network


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        network = generate_grid_network(GridConfig(rows=5, cols=5, seed=12))
        nodes, edges = tmp_path / "nodes.csv", tmp_path / "edges.csv"
        save_network_csv(network, nodes, edges)
        restored = load_network_csv(nodes, edges, name=network.name)
        assert restored.junction_count == network.junction_count
        assert restored.segment_count == network.segment_count
        for sid in network.segment_ids():
            original = network.segment(sid)
            copy = restored.segment(sid)
            assert copy.endpoints == original.endpoints
            assert copy.length == pytest.approx(original.length)
            assert copy.speed_limit == pytest.approx(original.speed_limit)
            assert copy.bidirectional == original.bidirectional
            assert copy.road_class == original.road_class

    def test_roundtrip_positions(self, grid3x3, tmp_path):
        nodes, edges = tmp_path / "n.csv", tmp_path / "e.csv"
        save_network_csv(grid3x3, nodes, edges)
        restored = load_network_csv(nodes, edges)
        for node_id in grid3x3.node_ids():
            assert restored.node_point(node_id) == grid3x3.node_point(node_id)


class TestMinimalColumns:
    def test_optional_columns_defaulted(self, tmp_path):
        (tmp_path / "nodes.csv").write_text(
            "node_id,x,y\n0,0,0\n1,100,0\n"
        )
        (tmp_path / "edges.csv").write_text(
            "sid,node_u,node_v\n0,0,1\n"
        )
        network = load_network_csv(
            tmp_path / "nodes.csv", tmp_path / "edges.csv"
        )
        segment = network.segment(0)
        assert segment.length == pytest.approx(100.0)  # chord fallback
        assert segment.bidirectional
        assert segment.road_class == "local"


class TestErrors:
    def test_missing_node_columns(self, tmp_path):
        (tmp_path / "nodes.csv").write_text("id,lon,lat\n0,0,0\n")
        (tmp_path / "edges.csv").write_text("sid,node_u,node_v\n")
        with pytest.raises(RoadNetworkError):
            load_network_csv(tmp_path / "nodes.csv", tmp_path / "edges.csv")

    def test_malformed_node_row(self, tmp_path):
        (tmp_path / "nodes.csv").write_text("node_id,x,y\n0,zero,0\n")
        (tmp_path / "edges.csv").write_text("sid,node_u,node_v\n")
        with pytest.raises(RoadNetworkError) as excinfo:
            load_network_csv(tmp_path / "nodes.csv", tmp_path / "edges.csv")
        assert ":2:" in str(excinfo.value)  # row number reported

    def test_edge_referencing_unknown_node(self, tmp_path):
        (tmp_path / "nodes.csv").write_text("node_id,x,y\n0,0,0\n1,100,0\n")
        (tmp_path / "edges.csv").write_text("sid,node_u,node_v\n0,0,7\n")
        with pytest.raises(RoadNetworkError):
            load_network_csv(tmp_path / "nodes.csv", tmp_path / "edges.csv")

    def test_clustering_works_on_csv_network(self, tmp_path, grid3x3):
        """End to end: export, re-import, cluster."""
        from repro.core.config import NEATConfig
        from repro.core.pipeline import NEAT
        from conftest import trajectory_through

        nodes, edges = tmp_path / "n.csv", tmp_path / "e.csv"
        save_network_csv(grid3x3, nodes, edges)
        network = load_network_csv(nodes, edges)
        trs = [trajectory_through(network, i, [0, 1]) for i in range(3)]
        result = NEAT(network, NEATConfig(min_card=0)).run_flow(trs)
        assert result.flows
