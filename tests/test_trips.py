"""Unit tests for trip planning."""

from __future__ import annotations

import random

import pytest

from repro.errors import NoPathError
from repro.mobisim.hotspots import choose_layout
from repro.mobisim.trips import TripPlanner
from repro.roadnet.generators import GridConfig, generate_grid_network
from repro.roadnet.geometry import Point
from repro.roadnet.network import RoadNetwork


@pytest.fixture
def planner_setup():
    net = generate_grid_network(GridConfig(rows=8, cols=8, seed=2))
    layout = choose_layout(net, seed=3)
    return net, layout


class TestPlanTrip:
    def test_route_starts_in_pool_ends_at_destination(self, planner_setup):
        net, layout = planner_setup
        planner = TripPlanner(net, layout, random.Random(1))
        plan = planner.plan_trip(0)
        all_starts = {n for pool in layout.start_pool for n in pool}
        assert plan.route.source in all_starts
        assert plan.route.target in layout.destination_nodes
        assert net.is_route(plan.route.sids)

    def test_start_time_in_window(self, planner_setup):
        net, layout = planner_setup
        planner = TripPlanner(net, layout, random.Random(2), start_window=60.0)
        for trid in range(10):
            plan = planner.plan_trip(trid)
            assert 0.0 <= plan.start_time <= 60.0

    def test_speed_factor_bounds(self, planner_setup):
        net, layout = planner_setup
        planner = TripPlanner(net, layout, random.Random(3), min_speed_factor=0.9)
        for trid in range(10):
            plan = planner.plan_trip(trid)
            assert 0.9 <= plan.speed_factor <= 1.0

    def test_invalid_speed_factor_rejected(self, planner_setup):
        net, layout = planner_setup
        with pytest.raises(ValueError):
            TripPlanner(net, layout, random.Random(4), min_speed_factor=0.0)

    def test_deterministic_with_seeded_rng(self, planner_setup):
        net, layout = planner_setup
        plans_a = [
            TripPlanner(net, layout, random.Random(5)).plan_trip(i) for i in range(3)
        ]
        plans_b = [
            TripPlanner(net, layout, random.Random(5)).plan_trip(i) for i in range(3)
        ]
        # Each plan consumes RNG state, so plan streams must match pairwise.
        for a, b in zip(plans_a, plans_b):
            assert a.route.sids == b.route.sids
            assert a.start_time == b.start_time

    def test_unroutable_raises_no_path(self):
        # Two disconnected islands: hotspot on one, destinations on the other.
        net = RoadNetwork()
        for x, y in [(0, 0), (100, 0), (5000, 5000), (5100, 5000), (5200, 5000)]:
            net.add_junction(Point(x, y))
        net.add_segment(0, 1)
        net.add_segment(2, 3)
        net.add_segment(3, 4)
        from repro.mobisim.hotspots import HotspotLayout

        layout = HotspotLayout(
            hotspot_nodes=(0,), destination_nodes=(2, 3, 4), start_pool=((0, 1),)
        )
        planner = TripPlanner(net, layout, random.Random(6))
        with pytest.raises(NoPathError):
            planner.plan_trip(0)
