"""Trip planning: start/destination selection and route computation.

One trip = one trajectory in the generated dataset.  The planner draws a
start junction from a hotspot's pool and a destination from the predefined
destination set, then routes via shortest path on the directed network —
exactly the recipe of Section IV-A ("following shortest paths to a final
destination chosen randomly from a predefined set of locations").
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import NoPathError
from ..roadnet.network import RoadNetwork
from ..roadnet.shortest_path import Route, shortest_route
from .hotspots import HotspotLayout


@dataclass(frozen=True, slots=True)
class TripPlan:
    """A planned trip: route plus departure metadata."""

    trid: int
    route: Route
    start_time: float
    speed_factor: float


class TripPlanner:
    """Plans trips for a population of objects over a hotspot layout.

    Args:
        network: Road network to route on.
        layout: Hotspot/destination layout (see :func:`choose_layout`).
        rng: Seeded RNG; all randomness flows through it so trip plans are
            reproducible.
        start_window: Departure times are uniform in ``[0, start_window]``
            seconds.
        min_speed_factor: Lower bound of the per-object speed factor
            (upper bound is 1.0 — the speed limit).
    """

    #: How many times to re-draw endpoints when routing fails before
    #: giving up on an object.
    MAX_ATTEMPTS = 25

    def __init__(
        self,
        network: RoadNetwork,
        layout: HotspotLayout,
        rng: random.Random,
        start_window: float = 300.0,
        min_speed_factor: float = 0.75,
    ) -> None:
        if not (0.0 < min_speed_factor <= 1.0):
            raise ValueError(
                f"min_speed_factor must be in (0, 1], got {min_speed_factor}"
            )
        self._network = network
        self._layout = layout
        self._rng = rng
        self._start_window = float(start_window)
        self._min_speed_factor = float(min_speed_factor)

    def plan_trip(self, trid: int) -> TripPlan:
        """Plan one trip, re-drawing endpoints if routing fails.

        Raises:
            NoPathError: when no routable start/destination pair is found
                after :data:`MAX_ATTEMPTS` draws (disconnected network).
        """
        rng = self._rng
        layout = self._layout
        last_pair: tuple[int, int] | None = None
        for _ in range(self.MAX_ATTEMPTS):
            hotspot_index = rng.randrange(len(layout.hotspot_nodes))
            start = rng.choice(layout.start_pool[hotspot_index])
            destination = rng.choice(layout.destination_nodes)
            last_pair = (start, destination)
            if start == destination:
                continue
            try:
                route = shortest_route(self._network, start, destination, directed=True)
            except NoPathError:
                continue
            if not route.sids:
                continue
            return TripPlan(
                trid=trid,
                route=route,
                start_time=rng.uniform(0.0, self._start_window),
                speed_factor=rng.uniform(self._min_speed_factor, 1.0),
            )
        raise NoPathError(*last_pair) if last_pair else NoPathError(None, None)
