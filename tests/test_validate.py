"""Tests for the NEAT result validator."""

from __future__ import annotations

import pytest

from repro.core.base_cluster import BaseCluster
from repro.core.config import NEATConfig
from repro.core.model import Location, TFragment
from repro.core.pipeline import NEAT
from repro.core.result import NEATResult
from repro.core.validate import validate_result

from conftest import trajectory_through


def frag(trid: int, sid: int) -> TFragment:
    return TFragment(
        trid, sid, (Location(sid, 0.0, 0.0, 0.0), Location(sid, 1.0, 0.0, 1.0))
    )


class TestValidResults:
    @pytest.mark.parametrize("mode", ["base", "flow", "opt"])
    def test_pipeline_output_is_valid(self, small_workload, mode):
        network, dataset = small_workload
        result = NEAT(network, NEATConfig(eps=500.0)).run(dataset, mode=mode)
        report = validate_result(result, network)
        assert report.ok, report.errors

    def test_distributed_output_is_valid(self, small_workload):
        from repro.distributed import NeatCoordinator

        network, dataset = small_workload
        result = NeatCoordinator(network, NEATConfig(eps=500.0)).run(
            list(dataset)
        )
        assert validate_result(result, network).ok

    def test_deserialized_output_is_valid(self, small_workload):
        from repro.core.serialize import result_from_dict, result_to_dict

        network, dataset = small_workload
        result = NEAT(network, NEATConfig(eps=500.0)).run_opt(dataset)
        restored = result_from_dict(result_to_dict(result), network)
        assert validate_result(restored, network).ok


class TestViolationsDetected:
    def test_unknown_segment(self, line3):
        result = NEATResult(mode="base")
        cluster = BaseCluster(99)
        cluster.add(frag(0, 99))
        result.base_clusters = [cluster]
        report = validate_result(result, line3)
        assert not report.ok
        assert any("unknown segment" in e for e in report.errors)

    def test_duplicate_base_cluster(self, line3):
        result = NEATResult(mode="base")
        a, b = BaseCluster(0), BaseCluster(0)
        a.add(frag(0, 0))
        b.add(frag(1, 0))
        result.base_clusters = [a, b]
        report = validate_result(result, line3)
        assert any("duplicate" in e for e in report.errors)

    def test_density_order_violation(self, line3):
        result = NEATResult(mode="base")
        sparse, dense = BaseCluster(0), BaseCluster(1)
        sparse.add(frag(0, 0))
        for trid in range(3):
            dense.add(frag(trid, 1))
        result.base_clusters = [sparse, dense]  # wrong order
        report = validate_result(result, line3)
        assert any("density-sorted" in e for e in report.errors)

    def test_missing_flow_assignment(self, star4):
        # Two disjoint corridors produce two flows; dropping one breaks
        # the losslessness of the Phase 2 partition.
        trs = [trajectory_through(star4, 0, [0, 1]),
               trajectory_through(star4, 1, [2, 3])]
        result = NEAT(star4, NEATConfig(min_card=0)).run_flow(trs)
        assert len(result.flows) == 2
        result.flows.pop()
        report = validate_result(result, star4)
        assert not report.ok

    def test_kept_flow_below_min_card(self, line3):
        trs = [trajectory_through(line3, i, [0, 1]) for i in range(2)]
        result = NEAT(line3, NEATConfig(min_card=0)).run_flow(trs)
        result.min_card_used = 99  # inconsistent with kept flows
        report = validate_result(result, line3)
        assert any("below minCard" in e for e in report.errors)

    def test_cluster_partition_violation(self, line3):
        trs = [trajectory_through(line3, i, [0, 1]) for i in range(3)]
        result = NEAT(line3, NEATConfig(min_card=0, eps=500.0)).run_opt(trs)
        result.clusters[0].flows.append(result.clusters[0].flows[0])
        report = validate_result(result, line3)
        assert any("two final clusters" in e for e in report.errors)

    def test_raise_if_invalid(self, line3):
        result = NEATResult(mode="base")
        cluster = BaseCluster(99)
        cluster.add(frag(0, 99))
        result.base_clusters = [cluster]
        report = validate_result(result, line3)
        with pytest.raises(ValueError):
            report.raise_if_invalid()

    def test_valid_report_does_not_raise(self, line3):
        trs = [trajectory_through(line3, 0, [0, 1])]
        result = NEAT(line3, NEATConfig(min_card=0)).run_base(trs)
        validate_result(result, line3).raise_if_invalid()
