"""Tests for the radial (ring-and-spoke) network generator."""

from __future__ import annotations

import pytest

from repro.roadnet.generators import RadialConfig, generate_radial_network
from repro.roadnet.shortest_path import dijkstra_single_source


class TestRadialConfig:
    def test_rejects_too_few_spokes(self):
        with pytest.raises(ValueError):
            RadialConfig(rings=2, spokes=2)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            RadialConfig(ring_keep_fraction=0.0)


class TestGenerateRadial:
    def test_node_count(self):
        net = generate_radial_network(RadialConfig(rings=3, spokes=6, seed=1))
        assert net.junction_count == 1 + 3 * 6

    def test_connected(self):
        net = generate_radial_network(RadialConfig(rings=4, spokes=7, seed=2))
        reachable = dijkstra_single_source(net, 0)
        assert len(reachable) == net.junction_count

    def test_center_degree_equals_spokes(self):
        net = generate_radial_network(RadialConfig(rings=3, spokes=5, seed=3))
        assert net.degree(0) == 5

    def test_spokes_are_arterial(self):
        net = generate_radial_network(RadialConfig(rings=2, spokes=4, seed=4))
        arterials = [s for s in net.segments() if s.road_class == "arterial"]
        assert len(arterials) == 2 * 4  # rings x spokes

    def test_ring_thinning(self):
        full = generate_radial_network(
            RadialConfig(rings=3, spokes=8, ring_keep_fraction=1.0, seed=5)
        )
        thinned = generate_radial_network(
            RadialConfig(rings=3, spokes=8, ring_keep_fraction=0.5, seed=5)
        )
        assert thinned.segment_count < full.segment_count

    def test_deterministic(self):
        config = RadialConfig(rings=3, spokes=6, seed=6)
        a = generate_radial_network(config)
        b = generate_radial_network(config)
        assert [s.endpoints for s in a.segments()] == [
            s.endpoints for s in b.segments()
        ]

    def test_neat_runs_on_radial(self):
        """NEAT works on ring-and-spoke topologies, not just grids."""
        from repro.core.config import NEATConfig
        from repro.core.pipeline import NEAT
        from repro.mobisim.simulator import SimulationConfig, simulate_dataset

        net = generate_radial_network(RadialConfig(rings=5, spokes=10, seed=7))
        dataset = simulate_dataset(net, SimulationConfig(object_count=40, seed=7))
        result = NEAT(net, NEATConfig(eps=600.0, min_card=0)).run_opt(dataset)
        assert result.flows
        assert result.clusters
