"""A sampling profiler over ``sys._current_frames()``.

:class:`SamplingProfiler` wakes up ``hz`` times a second on a daemon
thread, walks the Python stack of every (or one selected) thread, and
aggregates what it saw as folded stacks — the same
``module:function;module:function N`` format the span exporter emits
(:mod:`repro.obs.export`), except the value is a *sample count* rather
than microseconds.  Piping :meth:`SamplingProfiler.folded_text` through
``flamegraph.pl`` answers *where inside a phase the time goes*, which
span timings alone cannot.

Design constraints:

* **off by default, free when off** — nothing is created or sampled
  until :meth:`start`; the instrumented code paths never reference the
  profiler (it observes from outside via the interpreter's frame table),
  so the disabled-telemetry overhead gate
  (``bench_observability_overhead``) is untouched;
* **span-phase attribution** — pass ``phase=phase_from_tracer(tracer)``
  and every sample is prefixed with the innermost open span's name, so
  one profile splits cleanly into ``phase1.fragmentation;...`` vs
  ``phase3.refinement;...`` stacks;
* **deterministic tests** — :meth:`sample_once` takes exactly one sample
  synchronously, so tests never depend on wall-clock scheduling.

Sampling is statistical: a sample may catch a frame mid-transition, and
the phase read races the traced thread by design.  Both are standard
sampling-profiler trade-offs; at the default 97 Hz the overhead is a few
stack walks per 10 ms, far below the pipeline's per-phase costs.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path
from typing import Any, Callable

from .tracing import Tracer

__all__ = ["SamplingProfiler", "phase_from_tracer"]

#: Default sampling rate: a prime, so periodic work does not alias.
DEFAULT_HZ = 97.0


def phase_from_tracer(tracer: Tracer) -> Callable[[], str]:
    """A phase provider reading the tracer's innermost open span name.

    The read is unlocked (one list index against the traced thread's
    stack); a sample that races a span boundary lands in one of the two
    adjacent phases, which statistical profiles tolerate.
    """

    def current_phase() -> str:
        stack = tracer._stack
        return stack[-1].name if stack else ""

    return current_phase


def _frame_label(frame: Any) -> str:
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{code.co_name}"


class SamplingProfiler:
    """Aggregates folded Python stacks sampled at a fixed rate.

    Args:
        hz: Samples per second while running (must be > 0).
        phase: Optional zero-argument callable naming the current span
            phase; a non-empty result prefixes each sampled stack (see
            :func:`phase_from_tracer`).
        thread_id: Restrict sampling to one thread (``threading.get_ident``
            of the pipeline thread, usually); ``None`` samples every
            thread except the profiler's own.
        max_depth: Frames kept per stack (innermost dropped beyond it),
            bounding the folded-path length on pathological recursion.

    Use as a context manager (``with SamplingProfiler(...) as prof:``)
    or via explicit :meth:`start`/:meth:`stop`.
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        phase: Callable[[], str] | None = None,
        thread_id: int | None = None,
        max_depth: int = 64,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"hz must be > 0, got {hz}")
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.hz = float(hz)
        self.phase = phase
        self.thread_id = thread_id
        self.max_depth = max_depth
        self.samples = 0
        self._stacks: dict[str, int] = {}
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the sampler thread is active."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Spawn the sampler thread (idempotent while running)."""
        if self.running:
            return self
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop and join the sampler thread (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        self._stop_event.set()
        thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        interval = 1.0 / self.hz
        while not self._stop_event.wait(interval):
            self.sample_once()

    # -- sampling -------------------------------------------------------
    def sample_once(self) -> int:
        """Take one sample of every selected thread; returns stacks added.

        Public so tests (and cooperative callers) can sample
        deterministically without the timer thread.
        """
        own_id = threading.get_ident()
        phase = ""
        if self.phase is not None:
            try:
                phase = self.phase() or ""
            except Exception:
                phase = ""
        recorded = 0
        for thread_id, frame in sys._current_frames().items():
            if thread_id == own_id:
                continue
            if self.thread_id is not None and thread_id != self.thread_id:
                continue
            labels: list[str] = []
            while frame is not None and len(labels) < self.max_depth:
                labels.append(_frame_label(frame))
                frame = frame.f_back
            if not labels:
                continue
            labels.reverse()  # root-first, the folded convention
            if phase:
                labels.insert(0, phase)
            path = ";".join(labels)
            with self._lock:
                self._stacks[path] = self._stacks.get(path, 0) + 1
            recorded += 1
        self.samples += 1
        return recorded

    # -- export ---------------------------------------------------------
    def folded(self) -> dict[str, int]:
        """``{stack_path: sample_count}`` snapshot of everything sampled."""
        with self._lock:
            return dict(self._stacks)

    def folded_text(self) -> str:
        """The samples in the one-line-per-stack flamegraph format."""
        return "\n".join(
            f"{path} {count}" for path, count in sorted(self.folded().items())
        )

    def save(self, path: str | Path) -> Path:
        """Write :meth:`folded_text` (plus trailing newline); returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        text = self.folded_text()
        target.write_text(text + "\n" if text else "")
        return target

    def reset(self) -> None:
        """Drop every aggregated stack and zero the sample counter."""
        with self._lock:
            self._stacks.clear()
        self.samples = 0
