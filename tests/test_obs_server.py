"""Tests for repro.obs.server: the HTTP observability plane."""

from __future__ import annotations

import json
import re
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.config import NEATConfig
from repro.distributed.service import NeatService
from repro.obs import Telemetry
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, ObservabilityServer
from repro.resilience import FaultPlan

from conftest import trajectory_through

_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? -?[0-9.einf+]+$"
)


def get(url: str) -> tuple[int, dict[str, str], bytes]:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, dict(response.headers), response.read()


def get_json(url: str):
    _, _, body = get(url)
    return json.loads(body)


def assert_prometheus_parseable(body: str) -> None:
    for line in body.splitlines():
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE ")), line
        else:
            assert _PROM_SAMPLE.match(line), line


@pytest.fixture
def telemetry() -> Telemetry:
    bundle = Telemetry.create()
    bundle.metrics.counter("neat.runs", "Pipeline runs").inc(3)
    bundle.metrics.histogram("neat.latency", buckets=(0.1, 1.0)).observe(0.05)
    with bundle.tracer.span("neat.run"):
        with bundle.tracer.span("phase1.fragmentation"):
            pass
    return bundle


class TestEndpoints:
    def test_metrics_is_prometheus(self, telemetry):
        with ObservabilityServer(telemetry) as obs:
            status, headers, body = get(obs.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        text = body.decode("utf-8")
        assert "neat_runs 3" in text
        assert 'neat_latency_bucket{le="0.1"} 1' in text
        assert_prometheus_parseable(text)

    def test_default_health(self, telemetry):
        with ObservabilityServer(telemetry) as obs:
            document = get_json(obs.url + "/health")
        assert document["status"] == "ok"
        assert document["instruments"] == len(telemetry.metrics)

    def test_health_degraded_still_200(self, telemetry):
        health = lambda: {"status": "degraded", "reason": "slo"}  # noqa: E731
        with ObservabilityServer(telemetry, health=health) as obs:
            status, _, body = get(obs.url + "/health")
        assert status == 200
        assert json.loads(body)["status"] == "degraded"

    def test_health_down_is_503(self, telemetry):
        health = lambda: {"status": "down"}  # noqa: E731
        with ObservabilityServer(telemetry, health=health) as obs:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(obs.url + "/health")
            assert excinfo.value.code == 503

    def test_default_statusz(self, telemetry):
        with ObservabilityServer(telemetry) as obs:
            document = get_json(obs.url + "/statusz")
        assert document["metrics"]["counters"]["neat.runs"] == 3

    def test_tracez(self, telemetry):
        with ObservabilityServer(telemetry) as obs:
            document = get_json(obs.url + "/tracez")
        assert document["span_count"] == 2
        (root,) = document["spans"]
        assert root["name"] == "neat.run"
        assert root["children"][0]["name"] == "phase1.fragmentation"
        assert "start_offset_s" in root
        assert document["epoch_unix"] > 0

    def test_tracez_bounded(self, telemetry):
        for index in range(10):
            with telemetry.tracer.span(f"extra.{index}"):
                pass
        with ObservabilityServer(telemetry, max_tracez_roots=3) as obs:
            document = get_json(obs.url + "/tracez")
        assert len(document["spans"]) == 3
        assert document["spans"][-1]["name"] == "extra.9"

    def test_index_and_404(self, telemetry):
        with ObservabilityServer(telemetry) as obs:
            status, _, body = get(obs.url + "/")
            assert status == 200
            assert b"/metrics" in body
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(obs.url + "/nope")
            assert excinfo.value.code == 404

    def test_query_strings_and_trailing_slash(self, telemetry):
        with ObservabilityServer(telemetry) as obs:
            status, _, _ = get(obs.url + "/metrics/?name=x")
            assert status == 200


class TestLifecycle:
    def test_ephemeral_port_resolved(self, telemetry):
        obs = ObservabilityServer(telemetry, port=0)
        try:
            assert obs.port > 0
            assert obs.url == f"http://127.0.0.1:{obs.port}"
        finally:
            obs.stop()

    def test_start_stop_idempotent(self, telemetry):
        obs = ObservabilityServer(telemetry)
        assert obs.start() is obs.start()
        assert obs.running
        obs.stop()
        obs.stop()
        assert not obs.running

    def test_rejects_bad_max_tracez(self, telemetry):
        with pytest.raises(ValueError):
            ObservabilityServer(telemetry, max_tracez_roots=0)

    def test_concurrent_scrapes(self, telemetry):
        errors: list[Exception] = []

        def scrape(url: str) -> None:
            try:
                for _ in range(5):
                    get(url)
            except Exception as error:  # pragma: no cover - the assertion
                errors.append(error)

        with ObservabilityServer(telemetry) as obs:
            threads = [
                threading.Thread(target=scrape, args=(obs.url + path,))
                for path in ("/metrics", "/health", "/statusz", "/tracez")
                for _ in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert errors == []


class TestServiceIntegration:
    """The acceptance drill: scrape a live service mid-ingest."""

    def test_all_endpoints_mid_ingest(self, line3):
        svc = NeatService(
            line3,
            NEATConfig(min_card=0, eps=500.0, slo_ingest_p99_s=0.05),
        )
        # Every ingest stalls 0.4 s for real: the first submit breaches
        # the 50 ms SLO, the second gives us a wide mid-ingest window.
        svc.faults.arm(
            "ingest", FaultPlan(latency_s=0.4), sleeper=time.sleep
        )
        obs = svc.serve_obs(port=0)
        try:
            svc.submit([trajectory_through(line3, 0, [0, 1])])
            assert svc.slo_watchdog.breached

            started = threading.Event()
            done = threading.Event()

            def ingest() -> None:
                started.set()
                try:
                    svc.submit([trajectory_through(line3, 1, [1, 2])])
                finally:
                    done.set()

            worker = threading.Thread(target=ingest, daemon=True)
            worker.start()
            started.wait(timeout=5.0)
            time.sleep(0.05)  # inside the injected 0.4 s stall
            assert not done.is_set(), "scrape window missed the ingest"

            status, headers, body = get(obs.url + "/metrics")
            assert status == 200
            assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
            metrics_text = body.decode("utf-8")
            assert_prometheus_parseable(metrics_text)
            assert "service_batches_ingested 1" in metrics_text
            assert "service_slo_breach 1" in metrics_text

            health = get_json(obs.url + "/health")
            assert health["status"] == "degraded"
            assert health["slo"]["ingest"]["breached"] is True
            assert health["effective_max_pending"] < health["max_pending"]

            statusz = get_json(obs.url + "/statusz")
            assert statusz["stats"]["batches_ingested"] == 1
            assert statusz["stats"]["slo_breaches"] == 1
            assert statusz["config"]["slo_ingest_p99_s"] == 0.05
            assert statusz["network"]["segments"] == 3

            tracez = get_json(obs.url + "/tracez")
            names = [span["name"] for span in tracez["spans"]]
            assert "service.submit" in names

            assert not done.is_set(), "scrapes outlasted the fault window"
            worker.join(timeout=10.0)
            assert svc.stats().batches_ingested == 2
        finally:
            svc.stop_obs()
        assert not obs.running

    def test_serve_obs_idempotent(self, line3):
        svc = NeatService(line3)
        first = svc.serve_obs()
        try:
            assert svc.serve_obs() is first
        finally:
            svc.stop_obs()
        svc.stop_obs()  # idempotent


class TestBadRequestHardening:
    """Hostile peers get 400/431 JSON and a counter bump, never a traceback."""

    def raw_request(self, obs: ObservabilityServer, data: bytes) -> bytes:
        import socket

        with socket.create_connection((obs.host, obs.port), timeout=10) as sock:
            sock.sendall(data)
            sock.shutdown(socket.SHUT_WR)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks)

    def counter_value(self, telemetry: Telemetry) -> float:
        instrument = telemetry.metrics.get("server.bad_requests")
        return instrument.value if instrument is not None else 0.0

    def test_garbage_request_line_is_400(self, telemetry):
        with ObservabilityServer(telemetry) as obs:
            response = self.raw_request(obs, b"GARBAGE\r\n\r\n")
            assert response.startswith(b"HTTP/1.1 400")
            header, _, body = response.partition(b"\r\n\r\n")
            assert b"Content-Type: application/json" in header
            assert json.loads(body)["code"] == 400
            assert self.counter_value(telemetry) == 1
            # The server still serves well-formed peers afterwards.
            status, _, _ = get(obs.url + "/health")
            assert status == 200

    def test_oversized_header_is_431(self, telemetry):
        huge = b"X-Flood: " + b"a" * (64 * 1024 + 1024) + b"\r\n"
        request = b"GET /health HTTP/1.1\r\nHost: x\r\n" + huge + b"\r\n"
        with ObservabilityServer(telemetry) as obs:
            response = self.raw_request(obs, request)
            assert response.startswith(b"HTTP/1.1 431")
            assert json.loads(response.partition(b"\r\n\r\n")[2])["code"] == 431
            assert self.counter_value(telemetry) == 1
            status, _, _ = get(obs.url + "/metrics")
            assert status == 200

    def test_each_bad_request_counts(self, telemetry):
        with ObservabilityServer(telemetry) as obs:
            for _ in range(3):
                self.raw_request(obs, b"NOT HTTP AT ALL\r\n\r\n")
            assert self.counter_value(telemetry) == 3
            # The counter is visible on the exposition surface itself.
            _, _, body = get(obs.url + "/metrics")
            assert b"server_bad_requests 3" in body.replace(b".", b"_") or (
                b"server.bad_requests" in body or b"server_bad_requests" in body
            )

    def test_half_closed_peer_never_tracebacks(self, telemetry, capsys):
        import socket

        with ObservabilityServer(telemetry) as obs:
            # A peer that connects and immediately slams the connection.
            with socket.create_connection((obs.host, obs.port), timeout=10):
                pass
            status, _, _ = get(obs.url + "/health")
            assert status == 200
        assert "Traceback" not in capsys.readouterr().err
