"""repro.resilience — the robustness layer of the service tier.

Stdlib-only fault-tolerance primitives (policies) plus a deterministic
fault-injection harness (faults), composed by
:class:`~repro.distributed.service.NeatService` and
:class:`~repro.distributed.nodes.NeatCoordinator`:

* :class:`RetryPolicy` — exponential backoff with deterministic seeded
  jitter;
* :class:`Deadline` — per-call time budgets over an injectable clock;
* :class:`CircuitBreaker` — closed / open / half-open state machine;
* :class:`FaultPlan` / :class:`FaultyCallable` / :class:`FaultInjector`
  — scripted failures, latency, payload corruption and node kills, by
  deterministic call index.

See ``docs/robustness.md`` for the fault matrix and degraded-mode
semantics.
"""

from .faults import FaultInjector, FaultPlan, FaultyCallable, bit_flip, real_sleeper
from .policy import CircuitBreaker, Deadline, RetryPolicy

__all__ = [
    "CircuitBreaker",
    "Deadline",
    "FaultInjector",
    "FaultPlan",
    "FaultyCallable",
    "RetryPolicy",
    "bit_flip",
    "real_sleeper",
]
