"""Unit tests for the base-cluster pool and f-neighborhood operators."""

from __future__ import annotations

import pytest

from repro.core.base_cluster import BaseCluster, form_base_clusters
from repro.core.model import Location, TFragment
from repro.core.neighborhood import BaseClusterPool, maxflow_neighbor

from conftest import trajectory_through


def frag(trid: int, sid: int) -> TFragment:
    return TFragment(
        trid, sid, (Location(sid, 0.0, 0.0, 0.0), Location(sid, 1.0, 0.0, 1.0))
    )


class TestPoolBasics:
    def test_len_and_contains(self, line3):
        clusters = [BaseCluster(0), BaseCluster(1)]
        clusters[0].add(frag(0, 0))
        clusters[1].add(frag(0, 1))
        pool = BaseClusterPool(line3, clusters)
        assert len(pool) == 2
        assert 0 in pool and 1 in pool and 2 not in pool

    def test_duplicate_sid_rejected(self, line3):
        a, b = BaseCluster(0), BaseCluster(0)
        a.add(frag(0, 0))
        b.add(frag(1, 0))
        with pytest.raises(ValueError):
            BaseClusterPool(line3, [a, b])

    def test_pop_densest_order(self, line3):
        clusters = []
        for sid, n in ((0, 1), (1, 3), (2, 2)):
            cluster = BaseCluster(sid)
            for trid in range(n):
                cluster.add(frag(trid, sid))
            clusters.append(cluster)
        pool = BaseClusterPool(line3, clusters)
        assert pool.pop_densest().sid == 1
        assert pool.pop_densest().sid == 2
        assert pool.pop_densest().sid == 0
        with pytest.raises(IndexError):
            pool.pop_densest()

    def test_pop_skips_removed(self, line3):
        clusters = []
        for sid, n in ((0, 3), (1, 2), (2, 1)):
            cluster = BaseCluster(sid)
            for trid in range(n):
                cluster.add(frag(trid, sid))
            clusters.append(cluster)
        pool = BaseClusterPool(line3, clusters)
        pool.remove(clusters[0])  # drop the densest directly
        assert pool.pop_densest().sid == 1


class TestFNeighbors:
    def test_requires_netflow(self, line3):
        # Adjacent segments without shared trajectories are not f-neighbors.
        trs = [
            trajectory_through(line3, 0, [0]),
            trajectory_through(line3, 1, [1]),
        ]
        clusters = form_base_clusters(line3, trs)
        pool = BaseClusterPool(line3, clusters)
        s0 = next(c for c in clusters if c.sid == 0)
        assert pool.f_neighbors_at(s0, 1) == []

    def test_requires_adjacency_at_node(self, line3):
        trs = [trajectory_through(line3, 0, [0, 1, 2])]
        clusters = form_base_clusters(line3, trs)
        pool = BaseClusterPool(line3, clusters)
        s0 = next(c for c in clusters if c.sid == 0)
        # At node 0 (dead end) there is nothing; at node 1 there is s1.
        assert pool.f_neighbors_at(s0, 0) == []
        assert [c.sid for c in pool.f_neighbors_at(s0, 1)] == [1]

    def test_excludes_removed_clusters(self, line3):
        trs = [trajectory_through(line3, 0, [0, 1, 2])]
        clusters = form_base_clusters(line3, trs)
        pool = BaseClusterPool(line3, clusters)
        s0 = next(c for c in clusters if c.sid == 0)
        s1 = next(c for c in clusters if c.sid == 1)
        pool.remove(s1)
        assert pool.f_neighbors_at(s0, 1) == []

    def test_both_endpoints_union(self, line3):
        trs = [trajectory_through(line3, 0, [0, 1, 2])]
        clusters = form_base_clusters(line3, trs)
        pool = BaseClusterPool(line3, clusters)
        s1 = next(c for c in clusters if c.sid == 1)
        assert [c.sid for c in pool.f_neighbors(s1)] == [0, 2]


class TestMaxflowNeighbor:
    def test_empty(self):
        cluster = BaseCluster(0)
        cluster.add(frag(0, 0))
        best, flow = maxflow_neighbor(cluster, [])
        assert best is None and flow == 0

    def test_picks_highest_flow(self, paper_example):
        clusters = form_base_clusters(
            paper_example.network, paper_example.trajectories
        )
        by_sid = {c.sid: c for c in clusters}
        pool = BaseClusterPool(paper_example.network, clusters)
        neighborhood = pool.f_neighbors_at(
            by_sid[paper_example.s1], paper_example.center
        )
        best, flow = maxflow_neighbor(by_sid[paper_example.s1], neighborhood)
        assert (best.sid, flow) == (paper_example.s2, 2)

    def test_tie_breaks_on_sid(self, star4):
        # Two neighbors with identical flow: the lower sid wins.
        trs = [
            trajectory_through(star4, 0, [0, 1]),
            trajectory_through(star4, 1, [0, 2]),
        ]
        clusters = form_base_clusters(star4, trs)
        by_sid = {c.sid: c for c in clusters}
        pool = BaseClusterPool(star4, clusters)
        neighborhood = pool.f_neighbors_at(by_sid[0], 0)
        best, flow = maxflow_neighbor(by_sid[0], neighborhood)
        assert best.sid == 1 and flow == 1
