"""The NEAT server facade (Section II-C, in-process).

The paper sketches a 3-tier system: clients "send trajectories to a NEAT
server and make requests to the server to get trajectory clustering
results for a particular road network".  :class:`NeatService` is that
server tier as a library object, composing the pieces built elsewhere:

* ingestion goes through :class:`~repro.core.incremental.IncrementalNEAT`
  (batched Phases 1-2, warm Phase 3 refreshes);
* query responses are the serialized wire format of
  :mod:`repro.core.serialize`;
* every response is checked by :mod:`repro.core.validate` before leaving
  the service (a malformed answer is a bug, not a payload).

Everything is synchronous and in-process; transports (HTTP, gRPC) would
wrap this object without changing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..core.config import NEATConfig
from ..core.incremental import IncrementalNEAT
from ..core.model import Trajectory
from ..core.result import NEATResult
from ..core.serialize import result_to_dict
from ..core.validate import validate_result
from ..obs import Telemetry, get_logger
from ..roadnet.network import RoadNetwork

_log = get_logger("distributed.service")


@dataclass(frozen=True, slots=True)
class ServiceStats:
    """Operational counters of a service instance.

    A derived view over the service's metrics registry: every field is
    readable (with histograms for the latencies) from
    :meth:`NeatService.metrics_snapshot` as well.
    """

    batches_ingested: int
    trajectories_ingested: int
    queries_served: int
    flow_count: int
    cluster_count: int
    shortest_path_computations: int
    submit_seconds_total: float
    query_seconds_total: float


class NeatService:
    """An in-process NEAT server for one road network.

    Args:
        network: The road network clients' trajectories travel on.
        config: NEAT parameters applied to every ingest/refresh.
        telemetry: Optional :class:`~repro.obs.Telemetry` bundle shared
            with the underlying incremental clusterer; the service adds
            ``service.*`` ingest/query counters and latency histograms to
            it.  Defaults to a fresh enabled bundle.

    Example:
        >>> from repro.roadnet import line_network
        >>> service = NeatService(line_network(3))
    """

    def __init__(
        self,
        network: RoadNetwork,
        config: NEATConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.network = network
        self.config = config if config is not None else NEATConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry.create()
        self._incremental = IncrementalNEAT(
            network, self.config, telemetry=self.telemetry
        )
        metrics = self.telemetry.metrics
        self._submitted_batches = metrics.counter(
            "service.batches_ingested", "Trajectory batches accepted by submit()"
        )
        self._submitted_trajectories = metrics.counter(
            "service.trajectories_ingested", "Trajectories accepted by submit()"
        )
        self._queries = metrics.counter(
            "service.queries_served", "Clustering/flow-summary queries answered"
        )
        self._submit_latency = metrics.histogram(
            "service.submit_latency_seconds", "End-to-end submit() latency"
        )
        self._query_latency = metrics.histogram(
            "service.query_latency_seconds", "End-to-end query latency"
        )

    # ------------------------------------------------------------------
    # Ingestion (the client -> server direction)
    # ------------------------------------------------------------------
    def submit(self, trajectories: Sequence[Trajectory]) -> dict[str, Any]:
        """Ingest a trajectory batch; returns an acknowledgement summary.

        Trajectory ids are re-assigned server-side (clients should not
        need to coordinate id spaces).
        """
        with self.telemetry.tracer.span("service.submit") as span:
            batch = self._incremental.add_batch(
                list(trajectories), auto_offset_ids=True
            )
        self._submitted_batches.inc()
        self._submitted_trajectories.inc(len(trajectories))
        self._submit_latency.observe(span.duration)
        _log.info(
            "batch accepted",
            batch=batch.batch_index,
            trajectories=len(trajectories),
            new_flows=len(batch.new_flows),
            seconds=round(span.duration, 6),
        )
        return {
            "batch": batch.batch_index,
            "accepted": len(trajectories),
            "new_flows": len(batch.new_flows),
            "total_flows": len(self._incremental.flows),
            "clusters": len(batch.clusters),
        }

    # ------------------------------------------------------------------
    # Queries (the server -> client direction)
    # ------------------------------------------------------------------
    def get_clustering(self) -> dict[str, Any]:
        """The current global clustering as a serialized document.

        The response is validated against the framework invariants before
        being returned.
        """
        with self.telemetry.tracer.span("service.get_clustering") as span:
            result = self._snapshot()
            validate_result(
                result, self.network, allow_shared_segments=True
            ).raise_if_invalid()
            document = result_to_dict(result, network_name=self.network.name)
        self._queries.inc()
        self._query_latency.observe(span.duration)
        return document

    def get_flow_summaries(self) -> list[dict[str, Any]]:
        """Lightweight per-flow digests (for map UIs / previews)."""
        with self.telemetry.tracer.span("service.get_flow_summaries") as span:
            summaries = [
                {
                    "flow": index,
                    "segments": list(flow.sids),
                    "endpoints": list(flow.endpoints),
                    "cardinality": flow.trajectory_cardinality,
                    "route_length_m": round(flow.route_length, 1),
                }
                for index, flow in enumerate(self._incremental.flows)
            ]
        self._queries.inc()
        self._query_latency.observe(span.duration)
        return summaries

    def stats(self) -> ServiceStats:
        """Operational counters (a view over the metrics registry)."""
        return ServiceStats(
            batches_ingested=int(self._submitted_batches.value),
            trajectories_ingested=int(self._submitted_trajectories.value),
            queries_served=int(self._queries.value),
            flow_count=len(self._incremental.flows),
            cluster_count=len(self._incremental.clusters),
            shortest_path_computations=self._incremental.engine.computations,
            submit_seconds_total=self._submit_latency.sum,
            query_seconds_total=self._query_latency.sum,
        )

    def metrics_snapshot(self) -> dict[str, Any]:
        """The full telemetry snapshot (trace forest + every instrument)."""
        return self.telemetry.snapshot()

    # ------------------------------------------------------------------
    def _snapshot(self) -> NEATResult:
        """Assemble a NEATResult view of the service's current state.

        The document covers the *retained* flows only: noise flows were
        filtered per batch (possibly under different auto thresholds), so
        including them could not satisfy a single global ``minCard`` — the
        served clustering is the kept-flow world, self-consistent by
        construction.
        """
        incremental = self._incremental
        result = NEATResult(mode="opt")
        members = [
            member for flow in incremental.flows for member in flow.members
        ]
        result.base_clusters = sorted(
            members, key=lambda cluster: (-cluster.density, cluster.sid)
        )
        result.flows = incremental.flows
        result.clusters = incremental.clusters
        cards = [flow.trajectory_cardinality for flow in result.flows]
        result.min_card_used = min(cards) if cards else 0
        return result
