"""Trajectory-OPTICS: whole-trajectory density clustering (Nanni [24]).

The related-work baseline the NEAT paper contrasts with (Section V):
trajectories are clustered *as wholes* under the time-synchronized
average Euclidean distance, with OPTICS as the density engine.  Its two
structural weaknesses — whole-trajectory granularity (no partial
clusters) and Euclidean, network-oblivious geometry — are exactly what
NEAT's t-fragments and network proximity fix, and the comparison bench
(`bench_optics_baseline.py`) measures both.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Sequence

from ..core.model import Trajectory
from .optics import extract_dbscan, optics_ordering


def position_at(trajectory: Trajectory, t: float) -> tuple[float, float]:
    """Linearly interpolated position at time ``t`` (clamped to the trip)."""
    locations = trajectory.locations
    if t <= locations[0].t:
        return (locations[0].x, locations[0].y)
    if t >= locations[-1].t:
        return (locations[-1].x, locations[-1].y)
    # Linear scan is fine: trajectories are short and calls sequential.
    for earlier, later in zip(locations, locations[1:]):
        if earlier.t <= t <= later.t:
            span = later.t - earlier.t
            fraction = (t - earlier.t) / span if span > 0 else 0.0
            return (
                earlier.x + (later.x - earlier.x) * fraction,
                earlier.y + (later.y - earlier.y) * fraction,
            )
    return (locations[-1].x, locations[-1].y)


def trajectory_distance(
    a: Trajectory, b: Trajectory, sample_count: int = 16
) -> float:
    """Time-synchronized average Euclidean distance between two trips.

    The distance of [24]: average over timestamps of the Euclidean
    distance between the objects' synchronized positions, evaluated at
    ``sample_count`` uniform times in the trips' temporal overlap.
    Trips that never coexist in time are infinitely distant.
    """
    start = max(a.start.t, b.start.t)
    end = min(a.end.t, b.end.t)
    if end < start:
        return math.inf
    if sample_count < 1:
        raise ValueError("sample_count must be >= 1")
    total = 0.0
    for k in range(sample_count):
        t = start + (end - start) * (k / max(1, sample_count - 1))
        ax, ay = position_at(a, t)
        bx, by = position_at(b, t)
        total += math.hypot(ax - bx, ay - by)
    return total / sample_count


@dataclass
class TrajectoryOpticsResult:
    """Output of a Trajectory-OPTICS run.

    Attributes:
        labels: Cluster id per trajectory (aligned with the input order),
            -1 for noise.
        clusters: Trajectory indices grouped by cluster id.
        ordering_seconds: Time spent computing the OPTICS ordering.
        distance_evaluations: Pairwise distance computations performed.
    """

    labels: list[int] = field(default_factory=list)
    clusters: list[list[int]] = field(default_factory=list)
    ordering_seconds: float = 0.0
    distance_evaluations: int = 0

    @property
    def cluster_count(self) -> int:
        """Number of discovered clusters (noise excluded)."""
        return len(self.clusters)

    @property
    def noise_count(self) -> int:
        """Trajectories labelled as noise."""
        return sum(1 for label in self.labels if label == -1)


class TrajectoryOptics:
    """Whole-trajectory OPTICS clustering.

    Args:
        eps: Extraction threshold on the reachability plot, metres.
        min_pts: OPTICS core-size parameter.
        max_eps: Neighbourhood cut-off during ordering (defaults to
            ``4 * eps``, ample for extraction while bounding work).
        sample_count: Temporal samples per distance evaluation.
    """

    def __init__(
        self,
        eps: float,
        min_pts: int = 3,
        max_eps: float | None = None,
        sample_count: int = 16,
    ) -> None:
        if eps <= 0.0:
            raise ValueError("eps must be positive")
        self.eps = eps
        self.min_pts = min_pts
        self.max_eps = max_eps if max_eps is not None else 4.0 * eps
        self.sample_count = sample_count

    def run(self, trajectories: Sequence[Trajectory]) -> TrajectoryOpticsResult:
        """Cluster the trajectories; see :class:`TrajectoryOpticsResult`."""
        trajectory_list = list(trajectories)
        result = TrajectoryOpticsResult()
        if not trajectory_list:
            return result

        cache: dict[tuple[int, int], float] = {}

        def distance(i: int, j: int) -> float:
            key = (i, j) if i < j else (j, i)
            cached = cache.get(key)
            if cached is None:
                cached = trajectory_distance(
                    trajectory_list[i], trajectory_list[j], self.sample_count
                )
                cache[key] = cached
                result.distance_evaluations += 1
            return cached

        started = time.perf_counter()
        ordering = optics_ordering(
            len(trajectory_list), distance, self.min_pts, self.max_eps
        )
        result.ordering_seconds = time.perf_counter() - started
        result.labels = extract_dbscan(ordering, self.eps)
        by_id: dict[int, list[int]] = {}
        for index, label in enumerate(result.labels):
            if label >= 0:
                by_id.setdefault(label, []).append(index)
        result.clusters = [by_id[label] for label in sorted(by_id)]
        return result
