"""Behaviour of Phase 3 with a raised minPts (non-default DBSCAN)."""

from __future__ import annotations

import pytest

from repro.core.base_cluster import BaseCluster
from repro.core.config import NEATConfig
from repro.core.flow_cluster import FlowCluster
from repro.core.model import Location, TFragment
from repro.core.refinement import refine_flow_clusters
from repro.roadnet.builder import line_network


def frag(trid: int, sid: int) -> TFragment:
    return TFragment(
        trid, sid, (Location(sid, 0.0, 0.0, 0.0), Location(sid, 1.0, 0.0, 1.0))
    )


def flow_over(network, sids, trids=(0,)) -> FlowCluster:
    clusters = []
    for sid in sids:
        cluster = BaseCluster(sid)
        for trid in trids:
            cluster.add(frag(trid, sid))
        clusters.append(cluster)
    flow = FlowCluster(network, clusters[0])
    for cluster in clusters[1:]:
        flow.append(cluster)
    return flow


@pytest.fixture
def chain10():
    return line_network(10, segment_length=100.0)


class TestMinPtsAboveOne:
    def test_dense_group_clusters_sparse_becomes_singleton(self, chain10):
        # Three mutually-close flows at the left end, one isolated at the
        # right: with min_pts=3 the trio clusters, the loner cannot be a
        # core flow but still gets its own singleton cluster (the paper
        # sets no minimum cardinality on resulting clusters).
        flows = [
            flow_over(chain10, [0], trids=(0,)),
            flow_over(chain10, [1], trids=(1,)),
            flow_over(chain10, [2], trids=(2,)),
            flow_over(chain10, [9], trids=(3,)),
        ]
        clusters = refine_flow_clusters(
            chain10, flows, NEATConfig(eps=250.0, min_pts=3, min_card=0)
        )
        sizes = sorted(len(c.flows) for c in clusters)
        assert sizes == [1, 3]

    def test_every_flow_still_assigned(self, chain10):
        flows = [flow_over(chain10, [i], trids=(i,)) for i in range(0, 10, 3)]
        clusters = refine_flow_clusters(
            chain10, flows, NEATConfig(eps=150.0, min_pts=4, min_card=0)
        )
        assigned = [id(f) for c in clusters for f in c.flows]
        assert sorted(assigned) == sorted(id(f) for f in flows)

    def test_cluster_ids_stay_dense(self, chain10):
        flows = [flow_over(chain10, [i], trids=(i,)) for i in range(5)]
        clusters = refine_flow_clusters(
            chain10, flows, NEATConfig(eps=80.0, min_pts=2, min_card=0)
        )
        assert [c.cluster_id for c in clusters] == list(range(len(clusters)))


class TestKeepInteriorPoints:
    def test_interior_points_flow_through_pipeline(self, chain10):
        from repro.core.model import Trajectory
        from repro.core.pipeline import NEAT

        locations = tuple(
            Location(0, 10.0 + 20.0 * i, 0.0, float(i)) for i in range(5)
        )
        trajectory = Trajectory(0, locations)
        config = NEATConfig(min_card=0, keep_interior_points=True)
        result = NEAT(chain10, config).run_base([trajectory])
        fragment = result.base_clusters[0].fragments[0]
        assert len(fragment.locations) == 5

    def test_default_drops_interior(self, chain10):
        from repro.core.model import Trajectory
        from repro.core.pipeline import NEAT

        locations = tuple(
            Location(0, 10.0 + 20.0 * i, 0.0, float(i)) for i in range(5)
        )
        result = NEAT(chain10, NEATConfig(min_card=0)).run_base(
            [Trajectory(0, locations)]
        )
        fragment = result.base_clusters[0].fragments[0]
        assert len(fragment.locations) == 2
