"""Data nodes and coordinator for distributed Phase 1, fault-tolerant.

Base-cluster formation (Phase 1) is a *distributive* aggregation: a base
cluster is "all t-fragments with this sid", so fragments extracted on any
shard can be merged by sid without loss.  That makes the paper's data-node
preprocessing exact:

1. each :class:`DataNode` fragments its trajectory shard and groups the
   fragments into partial base clusters;
2. :func:`merge_base_clusters` unions the partial clusters by sid;
3. the :class:`NeatCoordinator` runs Phases 2-3 on the merged clusters,
   producing bit-identical results to a centralized run.

On top of that dataflow the coordinator is *robust*: node dispatches run
under a :class:`~repro.resilience.RetryPolicy`, a node whose retries are
exhausted is marked dead, its shard is re-dispatched to surviving nodes
(Phase 1 being distributive makes the re-dispatch exact too), and if even
that fails the merge proceeds without the shard — the loss is reported in
``NEATResult.dropped_shards`` rather than poisoning the run.  A quorum
floor turns "too many shards lost" into an explicit
:class:`~repro.errors.QuorumLost` error.

Everything is synchronous and in-process — the point is the dataflow
decomposition the paper sketches, not an RPC stack.  Faults are injected
deterministically through per-node :class:`~repro.resilience.FaultPlan` s.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.base_cluster import BaseCluster, form_base_clusters
from ..core.config import NEATConfig
from ..core.flow_formation import form_flow_clusters
from ..core.model import Trajectory
from ..core.refinement import RefinementStats, refine_flow_clusters
from ..core.result import NEATResult, PhaseTimings
from ..errors import NodeDown, QuorumLost, RetriesExhausted
from ..obs import Telemetry, get_logger
from ..resilience import FaultPlan, FaultyCallable, RetryPolicy
from ..roadnet.network import RoadNetwork
from ..roadnet.shortest_path import ShortestPathEngine
from .shardmap import RegionShardMap, boundary_sids, partition_slices

_log = get_logger("distributed.nodes")

#: Marks a pipelined call whose request half already failed; the
#: collection loop falls back to the blocking retry-wrapped dispatch.
_PIPELINE_FAILED = object()


def shard_round_robin(
    trajectories: Sequence[Trajectory], shard_count: int
) -> list[list[Trajectory]]:
    """Partition trajectories across ``shard_count`` shards round-robin.

    ``shard_count`` may exceed the trajectory count; the surplus shards
    come back empty and the coordinator skips them (an empty shard is not
    dispatched to a node).
    """
    if shard_count < 1:
        raise ValueError("shard_count must be >= 1")
    shards: list[list[Trajectory]] = [[] for _ in range(shard_count)]
    for index, trajectory in enumerate(trajectories):
        shards[index % shard_count].append(trajectory)
    return shards


@dataclass
class DataNode:
    """One data node: holds a trajectory shard, runs Phase 1 locally.

    Attributes:
        node_id: Identifier within the cluster.
        network: The (replicated) road network.
        trajectories: The node's trajectory shard.
        healthy: Liveness flag; a dead node raises
            :class:`~repro.errors.NodeDown` on any preprocessing call.
        fault_plan: Optional deterministic fault schedule applied to
            every preprocessing call (chaos drills).
    """

    node_id: int
    network: RoadNetwork
    trajectories: list[Trajectory] = field(default_factory=list)
    healthy: bool = True
    fault_plan: FaultPlan | None = None
    _faulty: FaultyCallable | None = field(default=None, repr=False, compare=False)

    def ingest(self, trajectories: Iterable[Trajectory]) -> None:
        """Add trajectories to this node's shard."""
        self.trajectories.extend(trajectories)

    def kill(self) -> None:
        """Mark the node dead (every later call raises ``NodeDown``)."""
        self.healthy = False

    def revive(self) -> None:
        """Bring a dead node back (its shard is still held)."""
        self.healthy = True

    def preprocess(self, keep_interior_points: bool = False) -> list[BaseCluster]:
        """Run Phase 1 over the local shard (the paper's node-side task)."""
        return self.preprocess_batch(
            self.trajectories, keep_interior_points=keep_interior_points
        )

    def preprocess_batch(
        self,
        trajectories: Sequence[Trajectory],
        keep_interior_points: bool = False,
    ) -> list[BaseCluster]:
        """Run Phase 1 over an explicit trajectory list.

        Used for re-dispatch: a surviving node processes a dead peer's
        shard *in addition to* its own, without re-running its own work
        (Phase 1 is distributive, so the partials merge exactly).
        """
        if not self.healthy:
            raise NodeDown(self.node_id)
        if self.fault_plan is not None:
            if self._faulty is None or self._faulty.plan is not self.fault_plan:
                self._faulty = self.fault_plan.wrap(
                    form_base_clusters, operation=f"node{self.node_id}.preprocess"
                )
            return self._faulty(
                self.network, trajectories,
                keep_interior_points=keep_interior_points,
            )
        return form_base_clusters(
            self.network, trajectories,
            keep_interior_points=keep_interior_points,
        )


def merge_base_clusters(
    partials: Iterable[Sequence[BaseCluster]],
    trajectory_order: Sequence[int] | None = None,
) -> list[BaseCluster]:
    """Union partial base clusters by sid (exact, order-independent).

    Returns the merged clusters sorted density-descending, sid ascending —
    the same contract as centralized Phase 1 output.

    Args:
        partials: Per-shard Phase 1 outputs, in any order.
        trajectory_order: When given (the original input trids, in input
            order), each merged cluster's fragments are stably re-sorted
            into that trajectory order.  A trajectory's fragments arrive
            from exactly one shard already in extraction order, so the
            stable sort reconstructs the *centralized* fragment order
            byte-for-byte — regardless of dispatch order, region
            sharding or re-dispatch after a node death.
    """
    merged: dict[int, BaseCluster] = {}
    for partial in partials:
        for cluster in partial:
            target = merged.get(cluster.sid)
            if target is None:
                target = BaseCluster(cluster.sid)
                merged[cluster.sid] = target
            for fragment in cluster.fragments:
                target.add(fragment)
    if trajectory_order is not None:
        rank = {trid: index for index, trid in enumerate(trajectory_order)}
        fallback = len(rank)
        for cluster in merged.values():
            cluster.fragments.sort(
                key=lambda fragment: rank.get(fragment.trid, fallback)
            )
    return sorted(merged.values(), key=lambda s: (-s.density, s.sid))


class NeatCoordinator:
    """The server tier: shards input, gathers Phase 1, runs Phases 2-3.

    Args:
        network: The road network (replicated to every node).
        config: NEAT parameters; ``config.max_retries`` seeds the default
            retry policy.
        node_count: Number of data nodes to simulate.
        retry_policy: Policy for node dispatches.  The default retries
            ``config.max_retries`` times with zero backoff (the nodes are
            in-process; there is no transport to wait out) — pass a real
            policy when fronting remote nodes.
        telemetry: Optional shared telemetry bundle; the coordinator
            publishes ``resilience.*`` and ``coordinator.*`` counters and
            structured events into it.
        redispatch: Re-run a failed shard's trajectories on surviving
            nodes before declaring the shard dropped.
        min_quorum: Minimum fraction of dispatched shards that must be
            merged (after re-dispatch); going below raises
            :class:`~repro.errors.QuorumLost`.  0.0 (default) always
            proceeds with whatever survived.
        nodes: Explicit node objects to dispatch to instead of the
            simulated in-process :class:`DataNode` s — anything with the
            node duck type works, notably
            :class:`~repro.distributed.transport.RemoteDataNode` stubs
            fronting real shard processes.  ``node_count`` is ignored
            when given.
        shardmap: Optional
            :class:`~repro.distributed.shardmap.RegionShardMap`: shards
            are cut by map region through its consistent-hash ring
            instead of round-robin, a dead node triggers a deterministic
            ring rebalance (counted in ``ring.rebalances``) and
            re-dispatch follows ring preference order.  Results are
            byte-identical either way — Phase 1 merges exactly under any
            partition.
        remote_phase3: Fan the Phase 3 distance work out to the nodes.
            The coordinator enumerates exactly the endpoint pairs its
            local refinement would search (the lower-bound survivors),
            partitions them contiguously across healthy remote nodes,
            pipelines ``distances`` calls and absorbs the answers into
            its own engine — refinement then runs without a single
            local shortest-path search, and the clusters stay
            byte-identical because eps-bounded distances are exact
            values, not approximations.  A node that fails its slice is
            simply not absorbed (refinement computes those pairs
            locally), so faults degrade throughput, never correctness.
    """

    def __init__(
        self,
        network: RoadNetwork,
        config: NEATConfig | None = None,
        node_count: int = 4,
        retry_policy: RetryPolicy | None = None,
        telemetry: Telemetry | None = None,
        redispatch: bool = True,
        min_quorum: float = 0.0,
        nodes: Sequence | None = None,
        shardmap: "RegionShardMap | None" = None,
        remote_phase3: bool = False,
    ) -> None:
        if nodes is None and node_count < 1:
            raise ValueError("node_count must be >= 1")
        if nodes is not None and not nodes:
            raise ValueError("nodes must be non-empty when given")
        if not 0.0 <= min_quorum <= 1.0:
            raise ValueError(f"min_quorum must be in [0, 1], got {min_quorum}")
        self.network = network
        self.config = config if config is not None else NEATConfig()
        self.nodes = (
            list(nodes)
            if nodes is not None
            else [DataNode(i, network) for i in range(node_count)]
        )
        self.shardmap = shardmap
        self.engine = ShortestPathEngine(network, directed=False)
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(
                max_retries=self.config.max_retries,
                base_delay_s=0.0, jitter=0.0,
            )
        )
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self.redispatch = redispatch
        self.min_quorum = min_quorum
        self.remote_phase3 = remote_phase3

    # ------------------------------------------------------------------
    def node_health(self) -> dict[int, bool]:
        """Liveness by node id (the coordinator's health-tracking view)."""
        return {node.node_id: node.healthy for node in self.nodes}

    def shard_table(self) -> list[dict]:
        """The ``/statusz`` shard table: one row per node.

        Remote nodes contribute their wire address; ring membership
        reflects any rebalances performed so far.
        """
        in_ring = (
            set(self.shardmap.ring.node_ids)
            if self.shardmap is not None else None
        )
        rows = []
        for node in self.nodes:
            client = getattr(node, "client", None)
            rows.append({
                "node": node.node_id,
                "healthy": bool(node.healthy),
                "trajectories": len(node.trajectories),
                "address": getattr(client, "address", None),
                "in_ring": (
                    node.node_id in in_ring if in_ring is not None else None
                ),
            })
        return rows

    def run(self, trajectories: Sequence[Trajectory], mode: str = "opt") -> NEATResult:
        """Distribute, preprocess on nodes, merge, finish centrally.

        Fault-free, this produces exactly the result of
        ``NEAT(network, config).run(...)`` — the tests assert bit-equality
        of flow routes.  Under faults it produces the centralized result
        over the *surviving* shards, reporting the rest in
        ``result.dropped_shards``.
        """
        if mode not in ("base", "flow", "opt"):
            raise ValueError(f"unknown mode {mode!r}")
        for node in self.nodes:
            node.trajectories.clear()
        if self.shardmap is not None:
            by_node = self.shardmap.shard(trajectories)
            shards = [
                by_node.get(node.node_id, []) for node in self.nodes
            ]
        else:
            shards = shard_round_robin(trajectories, len(self.nodes))
        # Surplus nodes get empty shards; an empty shard is never
        # dispatched (the regression this guards: empty shards used to be
        # preprocessed, producing empty partials on every surplus node).
        assignments = [
            (index, node, shard)
            for index, (node, shard) in enumerate(zip(self.nodes, shards))
            if shard
        ]
        for _, node, shard in assignments:
            node.ingest(shard)

        metrics = self.telemetry.metrics if self.telemetry.enabled else None
        partials, failed = self._gather_partials(assignments)
        if metrics is not None:
            metrics.inc(
                "coordinator.shards_dispatched",
                amount=len(assignments),
                description="Non-empty shards dispatched to data nodes",
            )

        dropped: list[int] = []
        for index, shard in failed:
            if self.redispatch and self._redispatch(index, shard, partials):
                continue
            dropped.append(index)
            if metrics is not None:
                metrics.inc(
                    "coordinator.shards_dropped",
                    description="Shards abandoned after re-dispatch failed",
                )
            _log.warning("shard dropped", shard=index, trajectories=len(shard))

        surviving = len(assignments) - len(dropped)
        if assignments and surviving < math.ceil(self.min_quorum * len(assignments)):
            raise QuorumLost(surviving, len(assignments), self.min_quorum)

        if metrics is not None:
            # Boundary accounting: segments whose fragments arrived from
            # more than one shard.  The merge handles them exactly; the
            # counter makes the partition's edge effects observable.
            metrics.inc(
                "ring.boundary_segments",
                amount=len(boundary_sids(partials)),
                description="Segments whose fragments arrived from "
                            "multiple shards in the last merge",
            )
        result = NEATResult(mode=mode, timings=PhaseTimings())
        result.dropped_shards = dropped
        result.base_clusters = merge_base_clusters(
            partials, trajectory_order=[tr.trid for tr in trajectories]
        )
        if mode == "base":
            return result

        formation = form_flow_clusters(
            self.network, result.base_clusters, self.config
        )
        result.flows = formation.flows
        result.noise_flows = formation.noise_flows
        result.min_card_used = formation.min_card_used
        if mode == "flow":
            return result

        stats = RefinementStats()
        if self.remote_phase3 and result.flows:
            # Seed the stats with the shard-side search count so the
            # Figure-7 accounting still reports the work done, wherever
            # it ran (refinement's own delta only sees local searches).
            stats.shortest_path_computations += self._phase3_remote_prefetch(
                result.flows
            )
        result.clusters = refine_flow_clusters(
            self.network, result.flows, self.config,
            engine=self.engine, stats=stats,
        )
        result.refinement_stats = stats
        return result

    # ------------------------------------------------------------------
    def _gather_partials(
        self, assignments: list[tuple[int, DataNode, list[Trajectory]]]
    ) -> tuple[list[Sequence[BaseCluster]], list[tuple[int, list[Trajectory]]]]:
        """Phase 1 over every assigned shard, pipelined where possible.

        Nodes exposing the ``start_preprocess`` / ``finish_preprocess``
        half-call contract (remote stubs) get their requests written
        *before any response is read* — every shard process computes
        concurrently instead of one-at-a-time behind a blocking call.
        In-process nodes, and any pipelined call that fails, go through
        the blocking retry-wrapped :meth:`_dispatch` (a failed pipelined
        attempt counts one ``resilience.retries``, matching what the
        retry policy would have recorded for its first failure).
        """
        pending: list[tuple[int, DataNode, list[Trajectory], object]] = []
        for index, node, shard in assignments:
            starter = getattr(node, "start_preprocess", None)
            if starter is None or not node.healthy:
                pending.append((index, node, shard, None))
                continue
            try:
                call = starter(
                    shard,
                    keep_interior_points=self.config.keep_interior_points,
                )
            except Exception as error:
                self._count_pipeline_retry(node, index, error)
                call = _PIPELINE_FAILED
            pending.append((index, node, shard, call))

        partials: list[Sequence[BaseCluster]] = []
        failed: list[tuple[int, list[Trajectory]]] = []
        for index, node, shard, call in pending:
            if call is None or call is _PIPELINE_FAILED:
                partial = self._dispatch(node, shard, shard_index=index)
            else:
                try:
                    partial = node.finish_preprocess(call)
                except Exception as error:
                    self._count_pipeline_retry(node, index, error)
                    partial = self._dispatch(node, shard, shard_index=index)
            if partial is None:
                failed.append((index, shard))
            else:
                partials.append(partial)
        return partials, failed

    def _count_pipeline_retry(
        self, node: DataNode, shard_index: int, error: BaseException
    ) -> None:
        """Account a failed pipelined attempt like a policy retry."""
        metrics = self.telemetry.metrics if self.telemetry.enabled else None
        if metrics is not None:
            metrics.inc(
                "resilience.retries",
                description="Attempts retried by a RetryPolicy",
            )
        _log.warning(
            "pipelined dispatch falling back to blocking retry",
            node=node.node_id, shard=shard_index, error=repr(error),
        )

    def _phase3_remote_prefetch(self, flows: Sequence) -> int:
        """Ship Phase 3's distance work to the shards; absorb the answers.

        Enumerates the same lower-bound-surviving endpoint pairs local
        refinement would search (same enumerator, same order), cuts them
        into contiguous :func:`~repro.distributed.shardmap.partition_slices`
        across healthy distance-capable nodes, pipelines one wire call
        per node (chunked through ``batch`` frames for large slices) and
        merges the answers into the coordinator engine's memo tables.
        ``refine_flow_clusters`` then finds every pair pre-answered and
        runs zero local searches.

        A slice whose pipelined call fails is retried once with a
        blocking call on the same node; if that fails too the slice is
        *dropped* — not absorbed — and refinement computes those pairs
        locally (``coordinator.phase3_local_fallbacks``).  Either way the
        clusters are byte-identical: bounded distances are exact values,
        and an unanswered pair is answered by the same search serial NEAT
        would run.

        Returns the shard-side search count, to be folded into the
        refinement stats.
        """
        from ..core.refinement import _surviving_endpoint_pairs

        metrics = self.telemetry.metrics if self.telemetry.enabled else None
        capable = [
            node for node in self.nodes
            if node.healthy and hasattr(node, "start_distances")
        ]
        if not capable:
            return 0
        eps = self.config.eps
        llb = None
        if self.config.use_llb and not self.engine.directed:
            llb = self.engine.landmark_bounds(self.config.llb_landmarks)
        pairs = _surviving_endpoint_pairs(
            self.network, list(flows), eps, self.config.use_elb, llb=llb
        )
        # Skip pairs the engine already knows (exact hit, or proven
        # farther than eps) — a warm coordinator re-run ships only the
        # genuinely new work.  Reaches into the memo tables directly;
        # the filter must mirror the one in ``prefetch_grouped``.
        todo = [
            key for key in pairs
            if key not in self.engine._cache
            and self.engine._bounded.get(key, -1.0) < eps
        ]
        if not todo:
            return 0

        slices = partition_slices(len(todo), [n.node_id for n in capable])
        by_id = {node.node_id: node for node in capable}
        started: list[tuple[int, int, int, object]] = []
        for node_id, start, stop in slices:
            if start == stop:
                continue
            try:
                call = by_id[node_id].start_distances(
                    todo[start:stop], cutoff=eps
                )
            except Exception as error:
                self._count_pipeline_retry(by_id[node_id], -1, error)
                call = _PIPELINE_FAILED
            started.append((node_id, start, stop, call))

        exact: dict[tuple[int, int], float] = {}
        bounded: dict[tuple[int, int], float] = {}
        computations = 0
        absorbed = 0
        for node_id, start, stop, call in started:
            node = by_id[node_id]
            chunk = todo[start:stop]
            values = None
            count = 0
            if call is not _PIPELINE_FAILED:
                try:
                    values, count = node.finish_distances(call)
                except Exception as error:
                    self._count_pipeline_retry(node, -1, error)
                    values = None
            if values is None:
                try:
                    values, count = node.distances(chunk, cutoff=eps)
                except Exception as error:
                    values = None
                    if metrics is not None:
                        metrics.inc(
                            "coordinator.phase3_local_fallbacks",
                            description="Phase 3 pair slices computed "
                                        "locally after a node failed them",
                        )
                    _log.warning(
                        "phase3 slice falling back to local compute",
                        node=node_id, pairs=len(chunk), error=repr(error),
                    )
            if values is None or len(values) != len(chunk):
                continue
            computations += count
            absorbed += len(chunk)
            for key, value in zip(chunk, values):
                if value is None:
                    # Farther than eps: record the bounded verdict, the
                    # exact analogue of a local cutoff search's INFINITY.
                    bounded[key] = eps
                else:
                    exact[key] = float(value)
        if exact or bounded:
            self.engine.absorb_cache(exact, bounded, mark_warm=False)
        if metrics is not None and absorbed:
            metrics.inc(
                "coordinator.phase3_remote_pairs",
                amount=absorbed,
                description="Phase 3 endpoint pairs answered by shard nodes",
            )
        return computations

    # ------------------------------------------------------------------
    def _dispatch(
        self,
        node: DataNode,
        shard: Sequence[Trajectory],
        shard_index: int,
    ) -> list[BaseCluster] | None:
        """One shard through one node under the retry policy.

        Returns the partial base clusters, or None after marking the node
        dead when every attempt failed.
        """
        metrics = self.telemetry.metrics if self.telemetry.enabled else None

        def on_retry(attempt: int, delay: float, error: BaseException) -> None:
            if metrics is not None:
                metrics.inc(
                    "resilience.retries",
                    description="Attempts retried by a RetryPolicy",
                )
            _log.warning(
                "node dispatch retrying",
                node=node.node_id, shard=shard_index,
                attempt=attempt, delay_s=round(delay, 6), error=repr(error),
            )

        try:
            return self.retry_policy.call(
                node.preprocess_batch,
                shard,
                keep_interior_points=self.config.keep_interior_points,
                operation=f"node{node.node_id}.preprocess",
                on_retry=on_retry,
            )
        except (RetriesExhausted, NodeDown) as error:
            node.kill()
            if self.shardmap is not None and self.shardmap.remove_node(
                node.node_id
            ):
                # Deterministic ring rebalance: only regions the dead
                # node owned move, each to its ring successor.
                if metrics is not None:
                    metrics.inc(
                        "ring.rebalances",
                        description="Consistent-hash ring rebalances "
                                    "after a node death",
                    )
            if metrics is not None:
                metrics.inc(
                    "resilience.node_failures",
                    description="Data nodes marked dead by the coordinator",
                )
            _log.error(
                "node marked dead",
                node=node.node_id, shard=shard_index, error=repr(error),
            )
            return None

    def _redispatch(
        self,
        shard_index: int,
        shard: list[Trajectory],
        partials: list[Sequence[BaseCluster]],
    ) -> bool:
        """Re-run a failed shard on surviving nodes; True when recovered.

        With a shard map, candidates are tried in the ring's preference
        order for the shard's region — the failover target is the node a
        real rebalance would hand the region to.  Without one, nodes are
        tried in id order.
        """
        metrics = self.telemetry.metrics if self.telemetry.enabled else None
        candidates = self.nodes
        if self.shardmap is not None:
            rank = {
                node_id: position
                for position, node_id in enumerate(
                    self.shardmap.redispatch_order(shard)
                )
            }
            candidates = sorted(
                self.nodes,
                key=lambda n: rank.get(n.node_id, len(rank)),
            )
        for node in candidates:
            if not node.healthy:
                continue
            partial = self._dispatch(node, shard, shard_index=shard_index)
            if partial is not None:
                node.ingest(shard)
                partials.append(partial)
                if metrics is not None:
                    metrics.inc(
                        "coordinator.shards_redispatched",
                        description="Failed shards recovered on surviving nodes",
                    )
                _log.info(
                    "shard redispatched",
                    shard=shard_index, node=node.node_id,
                    trajectories=len(shard),
                )
                return True
        return False
