"""Equivalence suite: CSR flat-array searches vs the legacy dict backend.

Property-style checks over randomly generated networks: CSR Dijkstra,
bidirectional Dijkstra and the legacy dict-of-lists walkers must return
identical distances and routes, and engines on either backend must report
identical ``roadnet.sp.computations``.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.errors import NoPathError, UnknownNodeError
from repro.roadnet import (
    CSRGraph,
    INFINITY,
    RoadNetwork,
    ShortestPathEngine,
    network_from_edges,
)
from repro.roadnet.geometry import Point
from repro.roadnet.shortest_path import (
    dijkstra_distance,
    dijkstra_distance_counted,
    dijkstra_single_source,
    shortest_route,
)


def random_network(
    seed: int, rows: int = 7, cols: int = 8, keep: float = 0.85
) -> RoadNetwork:
    """A random connected-ish jittered grid (float lengths, no ties)."""
    rng = random.Random(seed)
    points = [
        (c * 100 + rng.uniform(-25, 25), r * 100 + rng.uniform(-25, 25))
        for r in range(rows)
        for c in range(cols)
    ]
    edges = []
    for r in range(rows):
        for c in range(cols):
            i = r * cols + c
            if c + 1 < cols and rng.random() < keep:
                edges.append((i, i + 1))
            if r + 1 < rows and rng.random() < keep:
                edges.append((i, i + cols))
    return network_from_edges(points, edges, name=f"random-{seed}")


def sample_pairs(network: RoadNetwork, seed: int, count: int = 60):
    rng = random.Random(seed * 31 + 7)
    ids = network.node_ids()
    return [(rng.choice(ids), rng.choice(ids)) for _ in range(count)]


class TestConstruction:
    def test_shape_invariants(self):
        net = random_network(1)
        graph = net.csr(directed=False)
        assert graph.node_count == net.junction_count
        # Undirected: every segment appears in both directions.
        assert graph.edge_count == 2 * net.segment_count
        assert graph.indptr[0] == 0
        assert graph.indptr[-1] == graph.edge_count
        assert all(
            graph.indptr[i] <= graph.indptr[i + 1]
            for i in range(graph.node_count)
        )

    def test_directed_respects_one_way(self):
        net = RoadNetwork()
        a = net.add_junction(Point(0, 0))
        b = net.add_junction(Point(100, 0))
        net.add_segment(a, b, bidirectional=False)
        graph = net.csr(directed=True)
        assert graph.distance_counted(a, b)[0] == pytest.approx(100.0)
        assert graph.distance_counted(b, a)[0] == INFINITY
        assert graph.bidirectional_distance_counted(a, b)[0] == pytest.approx(100.0)
        assert graph.bidirectional_distance_counted(b, a)[0] == INFINITY

    def test_unknown_node_raises(self):
        net = random_network(2)
        graph = net.csr()
        with pytest.raises(UnknownNodeError):
            graph.distance_counted(0, 10_000)

    def test_snapshot_cached_and_invalidated(self):
        net = random_network(3)
        first = net.csr()
        assert net.csr() is first  # memoized
        node = net.add_junction(Point(-500.0, -500.0))
        net.add_segment(node, 0)
        rebuilt = net.csr()
        assert rebuilt is not first
        assert rebuilt.node_count == first.node_count + 1

    def test_snapshot_pickles(self):
        net = random_network(4)
        graph = net.csr()
        clone = pickle.loads(pickle.dumps(graph))
        assert isinstance(clone, CSRGraph)
        for a, b in sample_pairs(net, 4, count=10):
            assert clone.distance_counted(a, b) == graph.distance_counted(a, b)

    def test_network_pickle_drops_snapshot_cache(self):
        net = random_network(5)
        net.csr()
        clone = pickle.loads(pickle.dumps(net))
        assert clone._csr_cache == {}
        # ...and rebuilding on the clone matches the original.
        assert clone.csr().single_source(0) == net.csr().single_source(0)


@pytest.mark.parametrize("seed", [11, 22, 33, 44])
class TestDistanceEquivalence:
    def test_point_to_point_matches_dict_backend(self, seed):
        net = random_network(seed)
        graph = net.csr()
        for a, b in sample_pairs(net, seed):
            legacy = dijkstra_distance(net, a, b)
            uni, _ = graph.distance_counted(a, b)
            bidi, _ = graph.bidirectional_distance_counted(a, b)
            # Unidirectional sums the same floats in the same order.
            assert uni == legacy
            if legacy == INFINITY:
                assert bidi == INFINITY
            else:
                assert bidi == pytest.approx(legacy, rel=1e-12)

    def test_single_source_matches_dict_backend(self, seed):
        net = random_network(seed)
        graph = net.csr()
        for source in net.node_ids()[:: max(1, net.junction_count // 8)]:
            assert graph.single_source(source) == dijkstra_single_source(
                net, source
            )

    def test_bounded_single_source_matches(self, seed):
        net = random_network(seed)
        graph = net.csr()
        for source in net.node_ids()[:: max(1, net.junction_count // 6)]:
            for bound in (150.0, 400.0, 900.0):
                assert graph.single_source(
                    source, max_distance=bound
                ) == dijkstra_single_source(net, source, max_distance=bound)

    def test_bounded_point_queries_agree_inside_bound(self, seed):
        net = random_network(seed)
        graph = net.csr()
        for a, b in sample_pairs(net, seed, count=40):
            exact = dijkstra_distance(net, a, b)
            for cutoff in (200.0, 600.0, 1500.0):
                bounded_dict, _ = dijkstra_distance_counted(
                    net, a, b, cutoff=cutoff
                )
                bounded_uni, _ = graph.distance_counted(a, b, cutoff=cutoff)
                bounded_bidi, _ = graph.bidirectional_distance_counted(
                    a, b, cutoff=cutoff
                )
                if exact <= cutoff:
                    assert bounded_dict == exact
                    assert bounded_uni == exact
                    assert bounded_bidi == pytest.approx(exact, rel=1e-12)
                else:
                    assert bounded_dict == INFINITY
                    assert bounded_uni == INFINITY
                    assert bounded_bidi == INFINITY

    def test_routes_match_legacy(self, seed):
        net = random_network(seed)
        graph = net.csr()
        for a, b in sample_pairs(net, seed, count=30):
            try:
                legacy = shortest_route(net, a, b, directed=False)
            except NoPathError:
                with pytest.raises(NoPathError):
                    graph.shortest_route(a, b)
                continue
            route = graph.shortest_route(a, b)
            assert route.length == legacy.length
            assert route.nodes == legacy.nodes
            assert route.sids == legacy.sids
            assert net.is_route(route.sids) or len(route.sids) == 0

    def test_engine_backends_agree(self, seed):
        net = random_network(seed)
        dict_engine = ShortestPathEngine(net, backend="dict")
        csr_engine = ShortestPathEngine(net, backend="csr")
        pairs = sample_pairs(net, seed, count=50)
        for a, b in pairs:
            d_dict = dict_engine.distance(a, b)
            d_csr = csr_engine.distance(a, b)
            if d_dict == INFINITY:
                assert d_csr == INFINITY
            else:
                assert d_csr == pytest.approx(d_dict, rel=1e-12)
        # Identical memo behaviour => identical roadnet.sp.computations.
        assert dict_engine.computations == csr_engine.computations
        assert dict_engine.cache_hits == csr_engine.cache_hits


class TestEngineBackendSelector:
    def test_bad_backend_rejected(self):
        net = random_network(6)
        with pytest.raises(ValueError):
            ShortestPathEngine(net, backend="gpu")

    def test_default_backend_is_csr(self):
        net = random_network(7)
        assert ShortestPathEngine(net).backend == "csr"

    def test_distance_many_matches_loop(self):
        net = random_network(8)
        pairs = sample_pairs(net, 8, count=40) + sample_pairs(net, 8, count=40)
        loop_engine = ShortestPathEngine(net)
        batch_engine = ShortestPathEngine(net)
        expected = [loop_engine.distance(a, b) for a, b in pairs]
        got = batch_engine.distance_many(pairs)
        assert got == expected
        assert batch_engine.computations == loop_engine.computations
        assert batch_engine.cache_hits == loop_engine.cache_hits
        assert batch_engine.nodes_expanded == loop_engine.nodes_expanded
