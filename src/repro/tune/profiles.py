"""Named workload profiles: the ``small`` / ``medium`` / ``stress`` ladder.

A profile is a fixed rung of the workload ladder — a tuple of
:class:`~repro.experiments.workloads.WorkloadSpec` entries that every
benchmark, the passport generator and the sweep runner can resolve by
name.  The ladder gives each perf item a standard workload to prove
itself on and keeps CI, local runs and the tuning loop on identical
datasets (the specs are deterministic functions of their fields).

* ``small``  — all three regions at half the default bench scale with 40
  objects each; finishes in seconds, the CI smoke rung.
* ``medium`` — all three regions at the default bench scale with 300
  objects each; the optimization-loop rung (what the perf benches run).
* ``stress`` — the paper-scale rung: the full-size ATL network with 5000
  objects (~0.8M points, Table II's ATL5000).  Its ``smoke_specs``
  shrink the same shape to a CI-feasible size for
  ``bench_paper_scale.py --smoke``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from ..experiments.workloads import WorkloadSpec


@dataclass(frozen=True, slots=True)
class WorkloadProfile:
    """One rung of the workload ladder.

    Attributes:
        name: Profile name (``"small"``, ``"medium"``, ``"stress"``).
        description: One-line usage profile (what the rung is for).
        specs: The workloads the profile covers, in region order.
        smoke_specs: CI-feasible stand-ins for profiles whose full specs
            are too large for a smoke run; ``None`` means the full specs
            already are the smoke rung.
    """

    name: str
    description: str
    specs: tuple[WorkloadSpec, ...]
    smoke_specs: tuple[WorkloadSpec, ...] | None = None

    def resolved_specs(self, smoke: bool = False) -> tuple[WorkloadSpec, ...]:
        """The workloads to run: the smoke stand-ins when asked and present."""
        if smoke and self.smoke_specs is not None:
            return self.smoke_specs
        return self.specs

    def bench_spec(self, smoke: bool = False) -> WorkloadSpec:
        """The single workload a one-workload benchmark should run."""
        return self.resolved_specs(smoke=smoke)[0]


#: The committed ladder.  Keep the ``small`` rung CI-cheap: passports,
#: the grid sweep smoke and the tune test suite all run it.
PROFILES: dict[str, WorkloadProfile] = {
    "small": WorkloadProfile(
        name="small",
        description=(
            "smoke rung: every region at half the default bench scale, "
            "40 objects — seconds per run, used by CI and the tune tests"
        ),
        specs=(
            WorkloadSpec("ATL", 40, network_scale=0.05),
            WorkloadSpec("SJ", 40, network_scale=0.05),
            WorkloadSpec("MIA", 40, network_scale=0.01),
        ),
    ),
    "medium": WorkloadProfile(
        name="medium",
        description=(
            "optimization rung: every region at the default bench scale, "
            "300 objects — what the perf benches measure"
        ),
        specs=(
            WorkloadSpec("ATL", 300),
            WorkloadSpec("SJ", 300),
            WorkloadSpec("MIA", 300),
        ),
        smoke_specs=(
            WorkloadSpec("ATL", 100),
            WorkloadSpec("SJ", 100),
            WorkloadSpec("MIA", 100),
        ),
    ),
    "stress": WorkloadProfile(
        name="stress",
        description=(
            "paper-scale rung: full-size ATL with 5000 objects "
            "(Table II's ATL5000, ~0.8M points); smoke shrinks to "
            "150 objects at 0.2 scale for CI"
        ),
        specs=(WorkloadSpec("ATL", 5000, network_scale=1.0),),
        smoke_specs=(WorkloadSpec("ATL", 150, network_scale=0.2),),
    ),
}


def resolve_profile(name: str) -> WorkloadProfile:
    """Look up a profile by name; raises ``ValueError`` on unknown names."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown profile {name!r}; pick from {sorted(PROFILES)}"
        ) from None


def add_profile_argument(
    parser: argparse.ArgumentParser, default: str | None = None
) -> None:
    """Attach the shared ``--profile`` flag to a CLI or benchmark parser."""
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default=default,
        help="named workload profile (the small/medium/stress ladder); "
             "overrides the benchmark's own region/object defaults and "
             "labels ledger entries so profile rungs never compare "
             "against each other's baselines",
    )
