"""Map-matching substrate: snapping raw GPS traces onto the road network.

Implements a SLAMM-style selective look-ahead matcher (the preprocessing
step the NEAT paper relies on, reference [14]) plus the junction-crossing
inference Phase 1 uses to split trajectories at intersections.
"""

from .candidates import Candidate, CandidateFinder
from .hmm import HmmConfig, HmmMatcher
from .path_inference import Crossing, infer_crossings
from .slamm import MatchConfig, SlammMatcher

__all__ = [
    "Candidate",
    "CandidateFinder",
    "Crossing",
    "HmmConfig",
    "HmmMatcher",
    "MatchConfig",
    "SlammMatcher",
    "infer_crossings",
]
