"""Batched lower-bound kernels for Phase 3 region queries.

Phase 3's region queries test every flow pair against two cheap lower
bounds before paying for a network search: the Euclidean lower bound
(ELB, Section III-C3) and the landmark/ALT lower bound (LLB).  The
scalar forms live in :mod:`repro.core.refinement`
(:func:`~repro.core.refinement.euclidean_lower_bound`,
:func:`~repro.core.refinement.landmark_lower_bound`); this module
evaluates them for *all* ``n x n`` flow pairs at once over flat
endpoint arrays — the batched modified-Hausdorff endpoint math — and
returns a symmetric ``bytearray`` mask where ``mask[i * n + j] == 1``
means pair ``(i, j)`` is provably farther than ``eps`` and safe to
prune.

Two implementations per kernel, selected by the resolved backend
(:func:`repro.vec.resolve_vector_backend`):

* ``python`` — the scalar functions in a loop; the reference behaviour.
* ``numpy`` — vectorized, but **decision-identical** by construction:

  - The ELB compares *squared* distances (no per-element ``sqrt``)
    against ``eps**2`` outside a relative guard band of
    :data:`GUARD_BAND`; only pairs landing inside the band — where
    ``hypot``-vs-``sqrt(x*x + y*y)`` rounding could flip a comparison —
    are re-checked with the exact scalar expression.  Rounding error of
    either form is ~1e-16 relative; the band is seven orders of
    magnitude wider.
  - The LLB uses only subtraction, ``abs``, ``min``/``max`` — exact
    IEEE-754 operations with no rounding freedom — so its vectorized
    result is bit-identical to the scalar fold (missing landmark
    coverage is ``nan``, ignored by ``fmax`` exactly as the scalar code
    skips uncovered nodes).

Either way the mask equals the scalar decisions bit-for-bit, so
clusters *and* the Figure-7 counters match with or without numpy.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..roadnet.network import RoadNetwork
from ..vec import get_numpy

#: Relative half-width of the squared-distance window around ``eps**2``
#: inside which the numpy ELB defers to the exact scalar expression.
GUARD_BAND = 1e-9


def _endpoint_coordinates(
    network: RoadNetwork, flow_list: Sequence
) -> tuple[list[float], list[float], list[float], list[float]]:
    """Flat per-flow endpoint coordinates ``(x1, y1, x2, y2)``."""
    x1: list[float] = []
    y1: list[float] = []
    x2: list[float] = []
    y2: list[float] = []
    for flow in flow_list:
        e1, e2 = flow.endpoints
        p1 = network.node_point(e1)
        p2 = network.node_point(e2)
        x1.append(p1.x)
        y1.append(p1.y)
        x2.append(p2.x)
        y2.append(p2.y)
    return x1, y1, x2, y2


def elb_far_mask(
    network: RoadNetwork,
    flow_list: Sequence,
    eps: float,
    backend: str = "python",
) -> bytearray:
    """Symmetric mask of flow pairs the Euclidean lower bound prunes.

    ``mask[i * n + j] == 1`` iff
    ``euclidean_lower_bound(network, flow_list[i], flow_list[j]) > eps``
    — bit-for-bit the scalar decision, whichever backend runs.  The
    diagonal is always 0.
    """
    from .refinement import euclidean_lower_bound

    n = len(flow_list)
    mask = bytearray(n * n)
    if n == 0:
        return mask
    numpy = get_numpy() if backend == "numpy" else None
    if numpy is None:
        for i in range(n):
            row = i * n
            for j in range(i + 1, n):
                if euclidean_lower_bound(network, flow_list[i], flow_list[j]) > eps:
                    mask[row + j] = 1
                    mask[j * n + i] = 1
        return mask

    np = numpy
    x1, y1, x2, y2 = _endpoint_coordinates(network, flow_list)
    ax = np.array([x1, x2], dtype=np.float64)  # (2, n): endpoint, flow
    ay = np.array([y1, y2], dtype=np.float64)

    # Squared distance between endpoint p of flow i and endpoint q of
    # flow j, minimized over the four (p, q) combinations — the squared
    # form of the scalar min-of-four hypot.
    dx = ax[:, None, :, None] - ax[None, :, None, :]  # (2, 2, n, n)
    dy = ay[:, None, :, None] - ay[None, :, None, :]
    min_sq = np.min(dx * dx + dy * dy, axis=(0, 1))   # (n, n)

    eps_sq = eps * eps
    far = min_sq > eps_sq * (1.0 + GUARD_BAND)
    uncertain = ~far & (min_sq > eps_sq * (1.0 - GUARD_BAND))
    np.fill_diagonal(far, False)
    np.fill_diagonal(uncertain, False)
    for i, j in zip(*np.nonzero(np.triu(uncertain))):
        # In-band: settle with the exact scalar expression.
        exact_far = (
            euclidean_lower_bound(network, flow_list[int(i)], flow_list[int(j)])
            > eps
        )
        far[i, j] = far[j, i] = exact_far
    return bytearray(far.astype(np.uint8).tobytes())


def llb_far_mask(
    oracle,
    flow_list: Sequence,
    eps: float,
    backend: str = "python",
) -> bytearray:
    """Symmetric mask of flow pairs the landmark lower bound prunes.

    ``mask[i * n + j] == 1`` iff
    ``landmark_lower_bound(oracle, flow_list[i], flow_list[j]) > eps``.
    The numpy path is *bit-identical* (not merely decision-identical):
    the bound composes only exact IEEE operations.
    """
    from .refinement import landmark_lower_bound

    n = len(flow_list)
    mask = bytearray(n * n)
    if n == 0:
        return mask
    numpy = get_numpy() if backend == "numpy" else None
    if numpy is None:
        for i in range(n):
            row = i * n
            for j in range(i + 1, n):
                if landmark_lower_bound(oracle, flow_list[i], flow_list[j]) > eps:
                    mask[row + j] = 1
                    mask[j * n + i] = 1
        return mask

    np = numpy
    endpoints: list[int] = []
    for flow in flow_list:
        endpoints.extend(flow.endpoints)
    # (2n, L) landmark-distance rows; nan marks uncovered nodes.
    rows = np.array(oracle.landmark_table_rows(endpoints), dtype=np.float64)
    rows = rows.reshape(n, 2, -1)  # (flow, endpoint, landmark)

    # |d(L, t) - d(L, s)| per endpoint pair per landmark; nan wherever
    # either side is uncovered.  fmax folds from 0.0 exactly as the
    # scalar loop starts at best = 0.0 and skips uncovered landmarks
    # (fmax(x, nan) == x).
    diff = np.abs(
        rows[:, :, None, None, :] - rows[None, None, :, :, :]
    )  # (n, 2, n, 2, L)
    pair_bound = np.full(diff.shape[:4], 0.0)
    for k in range(diff.shape[4]):
        pair_bound = np.fmax(pair_bound, diff[..., k])
    l11 = pair_bound[:, 0, :, 0]
    l12 = pair_bound[:, 0, :, 1]
    l21 = pair_bound[:, 1, :, 0]
    l22 = pair_bound[:, 1, :, 1]
    forward = np.maximum(np.minimum(l11, l12), np.minimum(l21, l22))
    backward = np.maximum(np.minimum(l11, l21), np.minimum(l12, l22))
    bound = np.maximum(forward, backward)

    far = bound > eps
    np.fill_diagonal(far, False)
    return bytearray(far.astype(np.uint8).tobytes())
