"""JSON (de)serialization of NEAT clustering results.

The paper's system sketch (Section II-C) has clients requesting
"trajectory clustering results for a particular road network" from a NEAT
server — which needs a wire format.  This module round-trips a
:class:`~repro.core.result.NEATResult` through a JSON-compatible dict:
base clusters with their fragments, flows as ordered member references,
final clusters as flow references.

Schema (version 1)::

    {
      "format": "repro-clustering", "version": 1,
      "mode": "opt", "min_card_used": 5, "network_name": "...",
      "stale": false,
      "dropped_shards": [],
      "base_clusters": [
        {"sid": 3, "fragments": [
            {"trid": 0, "locations": [[sid, x, y, t, node_id|null], ...]},
        ]},
      ],
      "flows": [{"member_sids": [3, 5, 8]}],
      "noise_flows": [{"member_sids": [9]}],
      "clusters": [{"cluster_id": 0, "flow_indices": [0, 2]}]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..errors import ClusteringError
from ..roadnet.network import RoadNetwork
from .base_cluster import BaseCluster
from .flow_cluster import FlowCluster
from .model import Location, TFragment
from .refinement import TrajectoryCluster
from .result import NEATResult

FORMAT_TAG = "repro-clustering"
FORMAT_VERSION = 1


def _fragment_to_list(fragment: TFragment) -> dict[str, Any]:
    return {
        "trid": fragment.trid,
        "locations": [
            [l.sid, l.x, l.y, l.t, l.node_id] for l in fragment.locations
        ],
    }


def _fragment_from_dict(data: dict[str, Any]) -> TFragment:
    locations = tuple(
        Location(int(sid), float(x), float(y), float(t),
                 None if node_id is None else int(node_id))
        for sid, x, y, t, node_id in data["locations"]
    )
    return TFragment(int(data["trid"]), locations[0].sid, locations)


def result_to_dict(
    result: NEATResult, network_name: str = "", stale: bool = False
) -> dict[str, Any]:
    """Serialize a NEAT result to a JSON-compatible dictionary.

    Args:
        result: The result to serialize.
        network_name: Name recorded in the document.
        stale: Degraded-mode marker — ``True`` when a NEAT server is
            serving a previously validated snapshot because the fresh
            refresh failed (see ``docs/robustness.md``).
    """
    flow_index = {id(flow): i for i, flow in enumerate(result.flows)}
    return {
        "format": FORMAT_TAG,
        "version": FORMAT_VERSION,
        "mode": result.mode,
        "min_card_used": result.min_card_used,
        "network_name": network_name,
        "stale": bool(stale),
        "dropped_shards": list(result.dropped_shards),
        "base_clusters": [
            {
                "sid": cluster.sid,
                "fragments": [_fragment_to_list(f) for f in cluster.fragments],
            }
            for cluster in result.base_clusters
        ],
        # Flows reference their member base clusters by *index* into the
        # base_clusters list (the redundant member_sids are kept for human
        # readability): incremental/service snapshots can hold several
        # base clusters for the same segment, so sids alone are ambiguous.
        "flows": [
            _flow_to_dict(flow, result.base_clusters) for flow in result.flows
        ],
        "noise_flows": [
            _flow_to_dict(flow, result.base_clusters)
            for flow in result.noise_flows
        ],
        "clusters": [
            {
                "cluster_id": cluster.cluster_id,
                "flow_indices": [flow_index[id(flow)] for flow in cluster.flows],
            }
            for cluster in result.clusters
        ],
    }


def _flow_to_dict(flow: FlowCluster, base_clusters: list[BaseCluster]) -> dict:
    index_of = {id(cluster): i for i, cluster in enumerate(base_clusters)}
    return {
        "members": [index_of[id(member)] for member in flow.members],
        "member_sids": list(flow.sids),
    }


def result_from_dict(data: dict[str, Any], network: RoadNetwork) -> NEATResult:
    """Rebuild a NEAT result against its road network.

    The network must contain every referenced segment (i.e. be the same
    network, or a superset, of the one the result was computed on).
    """
    if data.get("format") != FORMAT_TAG:
        raise ClusteringError(f"not a clustering document: {data.get('format')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise ClusteringError(f"unsupported version: {data.get('version')!r}")

    base_by_sid: dict[int, BaseCluster] = {}
    base_clusters: list[BaseCluster] = []
    for entry in data["base_clusters"]:
        cluster = BaseCluster(int(entry["sid"]))
        for fragment in entry["fragments"]:
            cluster.add(_fragment_from_dict(fragment))
        base_by_sid[cluster.sid] = cluster
        base_clusters.append(cluster)

    def rebuild_flow(entry: dict[str, Any]) -> FlowCluster:
        if "members" in entry:
            members = [base_clusters[int(i)] for i in entry["members"]]
        else:  # legacy sid-keyed documents
            members = [base_by_sid[int(sid)] for sid in entry["member_sids"]]
        return FlowCluster.from_members(network, members)

    flows = [rebuild_flow(entry) for entry in data["flows"]]
    noise_flows = [rebuild_flow(entry) for entry in data["noise_flows"]]
    clusters = [
        TrajectoryCluster(
            int(entry["cluster_id"]),
            [flows[i] for i in entry["flow_indices"]],
        )
        for entry in data["clusters"]
    ]
    result = NEATResult(mode=data.get("mode", "opt"))
    result.base_clusters = base_clusters
    result.flows = flows
    result.noise_flows = noise_flows
    result.clusters = clusters
    result.min_card_used = int(data.get("min_card_used", 0))
    result.dropped_shards = [int(s) for s in data.get("dropped_shards", [])]
    return result


def save_result(
    result: NEATResult, path: str | Path, network_name: str = ""
) -> None:
    """Write a clustering result to a JSON file."""
    Path(path).write_text(json.dumps(result_to_dict(result, network_name)))


def load_result(path: str | Path, network: RoadNetwork) -> NEATResult:
    """Read a clustering result from a JSON file."""
    return result_from_dict(json.loads(Path(path).read_text()), network)
