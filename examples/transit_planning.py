#!/usr/bin/env python3
"""Public transit planning: find the routes worth a bus line.

The paper's first motivating application (Section I): "Knowing which
routes in a road network with highly dense and continuous traffic helps
optimize rail/bus line and terminal arrangement."

This example simulates a commuter workload, extracts NEAT flow clusters,
ranks candidate bus corridors by ridership x route length, and proposes
terminal locations at the corridor endpoints.  It also renders the
proposal to an SVG map.

Run:  python examples/transit_planning.py
"""

from pathlib import Path

from repro.analysis import SvgScene, flow_continuity
from repro.core import NEAT, NEATConfig
from repro.mobisim import SimulationConfig, simulate_dataset
from repro.roadnet import san_jose_like

OUT = Path(__file__).parent / "output"

network = san_jose_like(scale=0.1)
dataset = simulate_dataset(
    network,
    SimulationConfig(
        object_count=400,
        sample_interval=5.0,
        hotspot_count=3,       # three residential areas
        destination_count=2,   # two employment centers
        name="commute",
    ),
)
print(f"Simulated {len(dataset)} commuter trips ({dataset.total_points} samples)")

# Transit planning cares about flow volume and continuity; weight the
# merging selectivity toward the flow factor, with density as tiebreaker
# (the paper's traffic-monitoring preset).
config = NEATConfig(wq=0.5, wk=0.5, wv=0.0, eps=800.0)
result = NEAT(network, config).run_flow(dataset)
print(f"{result.flow_count} candidate corridors (minCard={result.min_card_used})\n")

# Rank corridors: ridership x length, discounted by discontinuity.
def corridor_score(flow) -> float:
    return flow.trajectory_cardinality * flow.route_length * flow_continuity(flow)

ranked = sorted(result.flows, key=corridor_score, reverse=True)

print("Proposed bus lines (best first):")
print(f"{'line':>4}  {'riders':>6}  {'length':>8}  {'continuity':>10}  terminals")
for line_number, flow in enumerate(ranked[:8], start=1):
    terminal_a, terminal_b = flow.endpoints
    print(
        f"{line_number:>4}  {flow.trajectory_cardinality:>6}  "
        f"{flow.route_length / 1000:>6.1f}km  "
        f"{flow_continuity(flow):>10.2f}  "
        f"junction {terminal_a} <-> junction {terminal_b}"
    )

# Coverage check: what share of commuters does the top-3 network serve?
served = set()
for flow in ranked[:3]:
    served.update(flow.participants)
print(
    f"\nTop-3 lines would serve {len(served)}/{len(dataset)} commuters "
    f"({100.0 * len(served) / len(dataset):.0f}%)"
)

# Terminal placement: flow endpoints concentrate in hotspot areas (the
# Figure 3 observation); the busiest areas are the terminal candidates.
from repro.analysis import detect_hotspots

areas = detect_hotspots(network, ranked[:8], radius=600.0)
print("\nTerminal candidates (endpoint hotspot areas):")
for rank, area in enumerate(areas[:4], start=1):
    sample_nodes = sorted(area.nodes)[:4]
    print(
        f"  area {rank}: {area.flow_count} line end(s), "
        f"{area.terminating_cardinality} riders/day, "
        f"junctions {sample_nodes}"
    )

# Render the proposal.
OUT.mkdir(exist_ok=True)
scene = SvgScene(network)
scene.draw_network()
scene.draw_trajectories(list(dataset), opacity=0.15)
scene.draw_flows(ranked[:3])
scene.draw_markers(
    [node for flow in ranked[:3] for node in flow.endpoints], color="#1f6f8b"
)
path = scene.save(OUT / "transit_plan.svg")
print(f"Wrote map to {path}")
