"""Unit tests for road-network JSON serialization."""

from __future__ import annotations

import json

import pytest

from repro.errors import RoadNetworkError
from repro.roadnet.generators import GridConfig, generate_grid_network
from repro.roadnet.io import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)


class TestRoundTrip:
    def test_roundtrip_preserves_structure(self, grid3x3):
        restored = network_from_dict(network_to_dict(grid3x3))
        assert restored.junction_count == grid3x3.junction_count
        assert restored.segment_count == grid3x3.segment_count
        for sid in grid3x3.segment_ids():
            original = grid3x3.segment(sid)
            copy = restored.segment(sid)
            assert copy.endpoints == original.endpoints
            assert copy.length == pytest.approx(original.length)
            assert copy.speed_limit == original.speed_limit
            assert copy.bidirectional == original.bidirectional
            assert copy.road_class == original.road_class

    def test_roundtrip_preserves_positions(self, grid3x3):
        restored = network_from_dict(network_to_dict(grid3x3))
        for node_id in grid3x3.node_ids():
            assert restored.node_point(node_id) == grid3x3.node_point(node_id)

    def test_roundtrip_generated_network(self):
        net = generate_grid_network(GridConfig(rows=6, cols=6, seed=9))
        restored = network_from_dict(network_to_dict(net))
        assert restored.total_length() == pytest.approx(net.total_length())

    def test_file_roundtrip(self, grid3x3, tmp_path):
        path = tmp_path / "net.json"
        save_network(grid3x3, path)
        restored = load_network(path)
        assert restored.segment_count == grid3x3.segment_count
        # File content is valid JSON with the format tag.
        data = json.loads(path.read_text())
        assert data["format"] == "repro-roadnet"


class TestValidation:
    def test_rejects_wrong_format(self):
        with pytest.raises(RoadNetworkError):
            network_from_dict({"format": "something-else", "version": 1})

    def test_rejects_wrong_version(self, grid3x3):
        data = network_to_dict(grid3x3)
        data["version"] = 99
        with pytest.raises(RoadNetworkError):
            network_from_dict(data)

    def test_name_preserved(self, grid3x3):
        assert network_from_dict(network_to_dict(grid3x3)).name == "grid3x3"
