"""Process-level tests for the distributed tier.

Real worker processes, real sockets, real signals: spawning local
shard-node workers, a shard process SIGKILLed mid-run recovering to a
byte-identical result, the ``repro serve --shards`` CLI end to end
(including chaos double-run determinism and quorum loss), and the
graceful SIGTERM shutdown of ``repro serve``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT
from repro.core.serialize import result_to_dict
from repro.distributed import (
    NeatCoordinator,
    RegionShardMap,
    RemoteDataNode,
    TransportClient,
    spawn_local_shards,
    stop_shards,
)
from repro.errors import TransportError
from repro.mobisim.io import save_dataset
from repro.mobisim.simulator import SimulationConfig, simulate_dataset
from repro.roadnet.generators import atlanta_like
from repro.roadnet.io import save_network

SRC_ROOT = str(Path(__file__).resolve().parent.parent / "src")


def subprocess_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        SRC_ROOT + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else SRC_ROOT
    )
    return env


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """A saved network + traces pair and its serial reference document."""
    base = tmp_path_factory.mktemp("distributed-proc")
    network = atlanta_like(scale=0.04, seed=11)
    dataset = simulate_dataset(
        network, SimulationConfig(object_count=25, seed=11, name="proc25")
    )
    network_path = base / "network.json"
    traces_path = base / "traces.json"
    save_network(network, network_path)
    save_dataset(dataset, traces_path)
    serial = NEAT(network, NEATConfig()).run(list(dataset), mode="opt")
    reference = json.dumps(
        result_to_dict(serial, network_name=network.name), sort_keys=True
    )
    return {
        "network": network,
        "trajectories": list(dataset),
        "network_path": network_path,
        "traces_path": traces_path,
        "reference": reference,
    }


# ----------------------------------------------------------------------
# Spawning local shard workers
# ----------------------------------------------------------------------
class TestSpawnLocalShards:
    def test_spawn_ping_stop(self, workload, tmp_path):
        shards = spawn_local_shards(
            workload["network_path"], 2, work_dir=tmp_path, log_dir=tmp_path
        )
        try:
            assert [s.node_id for s in shards] == [0, 1]
            for shard in shards:
                assert shard.alive
                assert (tmp_path / f"shard-{shard.node_id}.pid").exists()
                assert (tmp_path / f"shard-{shard.node_id}.port").exists()
                client = TransportClient(shard.host, shard.port)
                assert client.call("ping") == {"node_id": shard.node_id}
        finally:
            stop_shards(shards)
        for shard in shards:
            assert not shard.alive
        # Worker stdout went to the per-shard log (the CI artifact).
        log = (tmp_path / "shard-0.log").read_text()
        assert "listening" in log

    def test_spawn_bad_network_fails_without_orphans(self, tmp_path):
        with pytest.raises(TransportError) as excinfo:
            spawn_local_shards(
                tmp_path / "missing.json", 1,
                work_dir=tmp_path, startup_timeout_s=30.0,
            )
        assert excinfo.value.kind == "refused"

    def test_rejects_zero_count(self, workload, tmp_path):
        with pytest.raises(ValueError):
            spawn_local_shards(workload["network_path"], 0, work_dir=tmp_path)


# ----------------------------------------------------------------------
# A shard process SIGKILLed mid-run
# ----------------------------------------------------------------------
class TestKilledShardMidRun:
    def test_sigkill_recovers_byte_identical(self, workload, tmp_path):
        shards = spawn_local_shards(
            workload["network_path"], 3, work_dir=tmp_path, log_dir=tmp_path
        )
        try:
            nodes = [
                RemoteDataNode(s.node_id, TransportClient(
                    s.host, s.port, timeout_s=5.0,
                ))
                for s in shards
            ]
            victim = nodes[1]
            victim_process = shards[1].process
            # The pipelined coordinator opens with start_preprocess, so
            # the kill hook rides the request half of the first call.
            original = victim.start_preprocess
            kills = {"count": 0}

            def kill_then_call(*args, **kwargs):
                # A real SIGKILL the moment the coordinator first talks
                # to this node: the failure the client sees is organic.
                if kills["count"] == 0:
                    kills["count"] += 1
                    victim_process.kill()
                    victim_process.wait(timeout=10)
                return original(*args, **kwargs)

            victim.start_preprocess = kill_then_call

            network = workload["network"]
            shardmap = RegionShardMap(network, [0, 1, 2])
            coordinator = NeatCoordinator(
                network, NEATConfig(), nodes=nodes, shardmap=shardmap,
            )
            result = coordinator.run(workload["trajectories"], mode="opt")
            document = json.dumps(
                result_to_dict(result, network_name=network.name),
                sort_keys=True,
            )
            assert kills["count"] == 1
            assert not shards[1].alive
            assert document == workload["reference"]
            assert result.dropped_shards == []
            assert not nodes[1].healthy       # marked dead
            assert 1 not in shardmap.ring     # ring rebalanced
            assert shardmap.rebalances == 1
        finally:
            stop_shards(shards)


# ----------------------------------------------------------------------
# The serve --shards CLI
# ----------------------------------------------------------------------
class TestServeShardsCLI:
    def run_serve(self, workload, tmp_path, *extra: str) -> int:
        return main([
            "serve",
            "--network", str(workload["network_path"]),
            "--traces", str(workload["traces_path"]),
            "--duration", "0",
            "--obs-port", "0",
            *extra,
        ])

    def test_result_matches_serial(self, workload, tmp_path):
        result_path = tmp_path / "result.json"
        code = self.run_serve(
            workload, tmp_path,
            "--shards", "2",
            "--shard-dir", str(tmp_path / "shards"),
            "--result-out", str(result_path),
        )
        assert code == 0
        assert result_path.read_text().strip() == workload["reference"]

    def test_chaos_double_run_is_deterministic(self, workload, tmp_path):
        fault_spec = json.dumps({
            "transport.node0": {"refuse_nth": 1},
            "transport.node1": {"garble_nth": 1},
        })
        outputs = []
        for run in ("a", "b"):
            result_path = tmp_path / f"result-{run}.json"
            counters_path = tmp_path / f"counters-{run}.json"
            code = self.run_serve(
                workload, tmp_path,
                "--shards", "2",
                "--shard-dir", str(tmp_path / f"shards-{run}"),
                "--fault-spec", fault_spec,
                "--result-out", str(result_path),
                "--counters-out", str(counters_path),
            )
            assert code == 0
            outputs.append(
                (result_path.read_bytes(), counters_path.read_bytes())
            )
        assert outputs[0][0] == outputs[1][0]  # byte-identical clusters
        assert outputs[0][1] == outputs[1][1]  # byte-identical counters
        assert outputs[0][0].decode().strip() == workload["reference"]
        counters = json.loads(outputs[0][1])
        assert counters["transport.refused"] == 1
        assert counters["transport.garbled"] == 1
        assert counters["resilience.retries"] >= 2

    def test_quorum_lost_exits_3(self, workload, tmp_path):
        fault_spec = json.dumps({
            "transport.node0": {"refuse_nth": list(range(1, 21))},
        })
        code = self.run_serve(
            workload, tmp_path,
            "--shards", "1",
            "--shard-dir", str(tmp_path / "shards"),
            "--fault-spec", fault_spec,
            "--min-quorum", "1.0",
        )
        assert code == 3

    def test_shard_process_sigkilled_mid_run(self, workload, tmp_path):
        """The acceptance drill: serve --shards survives a real SIGKILL.

        A stall fault on shard 0's first call (3 s, under the 15 s rpc
        timeout so the call still succeeds) opens a deterministic window
        during which shard 1's worker process is SIGKILLed.  The
        coordinator must recover through retry -> ring rebalance ->
        re-dispatch and exit 0 with clusters byte-identical to serial.
        """
        shard_dir = tmp_path / "shards"
        result_path = tmp_path / "result.json"
        fault_spec = json.dumps({
            "transport.node0": {"stall_nth": 1, "stall_s": 3.0},
        })
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--network", str(workload["network_path"]),
                "--traces", str(workload["traces_path"]),
                "--shards", "3",
                "--shard-dir", str(shard_dir),
                "--fault-spec", fault_spec,
                "--rpc-timeout", "15",
                "--duration", "0",
                "--obs-port", "0",
                "--result-out", str(result_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=subprocess_env(),
            text=True,
        )
        try:
            pid_file = shard_dir / "shard-1.pid"
            deadline = time.monotonic() + 60
            while not pid_file.exists():
                assert process.poll() is None, process.stdout.read()
                assert time.monotonic() < deadline, "shards never spawned"
                time.sleep(0.05)
            victim_pid = int(pid_file.read_text().strip())
            os.kill(victim_pid, signal.SIGKILL)
            stdout, _ = process.communicate(timeout=180)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, stdout
        assert result_path.read_text().strip() == workload["reference"]


# ----------------------------------------------------------------------
# Graceful SIGTERM shutdown of repro serve
# ----------------------------------------------------------------------
class TestServeGracefulShutdown:
    def test_sigterm_drains_and_exits_zero(self, workload, tmp_path):
        state_dir = tmp_path / "state"
        port_file = tmp_path / "obs.port"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--network", str(workload["network_path"]),
                "--traces", str(workload["traces_path"]),
                "--state-dir", str(state_dir),
                "--port-file", str(port_file),
                "--obs-port", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=subprocess_env(),
            text=True,
        )
        try:
            deadline = time.monotonic() + 60
            while not port_file.exists():
                assert process.poll() is None, process.stdout.read()
                assert time.monotonic() < deadline, "serve never came up"
                time.sleep(0.05)
            process.send_signal(signal.SIGTERM)
            stdout, _ = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, stdout
        assert "shut down gracefully" in stdout
        # The final checkpoint made the state durable.
        assert state_dir.exists() and any(state_dir.rglob("*"))
