"""Zero-copy process-parallel compute core.

One shared layer behind every pipeline stage that fans work out: Phase 1
fragments trajectory chunks in parallel, Phase 3 batches shortest-path
work against read-only CSR snapshots, and the landmark oracle
bulk-computes distance tables.  Three design rules replace the old
pool-per-call/pickle-per-worker fan-out (which BENCH_sp_core showed was
*slower* than serial):

* **Persistent pool** — one :class:`WorkerPool` per process lifetime
  (module singleton via :func:`get_pool`), started on first parallel
  batch and reused across batches, phases and pipeline runs.  Pool
  reuse, restarts and bytes shipped are tracked in the ``pool.*``
  counters (:func:`pool_counters`).
* **Shared resources instead of per-task pickles** — large read-only
  inputs (the road network, CSR snapshots) are registered once per
  network version.  CSR snapshots are published to
  :mod:`multiprocessing.shared_memory` and workers attach them zero-copy
  in their initializer (:class:`~repro.roadnet.sharedcsr.SharedCSR`);
  other objects are broadcast once at worker start.  Tasks then carry
  only a resource *key*.
* **(offset, length) descriptors for flat batches** — array-native
  batch payloads (endpoint pairs, grouped-search plans, sweep sources)
  go into one transient shared segment per batch; each task ships just
  its span into that segment (:func:`map_flat`).

The determinism contract is unchanged: items are split into contiguous,
order-preserving chunks and results concatenate in submission order, so
output is byte-identical to a serial run at any worker count.  Serial
fallback (``workers <= 1`` or too few items) runs inline with no pool
and no shared segments; a pool whose workers die mid-batch is restarted
and the batch retried once, then the batch falls back to inline serial
execution (``pool.crash_recoveries`` / ``pool.serial_fallbacks``).

Chunk functions must be picklable (module-level functions or
``functools.partial`` over one), as must their arguments and results.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
from array import array
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, NamedTuple, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Default floor of items per worker before a pool is worth using.
DEFAULT_MIN_ITEMS_PER_WORKER = 32

#: Counters describing the pool's whole-process behaviour, exported to
#: the metrics registry as ``pool.*`` deltas by the pipeline.
POOL_COUNTER_NAMES = (
    "pool.starts",
    "pool.restarts",
    "pool.batches",
    "pool.reuses",
    "pool.tasks",
    "pool.bytes_shipped",
    "pool.broadcast_bytes",
    "pool.shm_segments",
    "pool.shm_bytes",
    "pool.crash_recoveries",
    "pool.serial_fallbacks",
)

_counter_lock = threading.Lock()
_counters: dict[str, int] = {name: 0 for name in POOL_COUNTER_NAMES}


def _bump(name: str, amount: int = 1) -> None:
    with _counter_lock:
        _counters[name] += amount


def pool_counters() -> dict[str, int]:
    """A point-in-time copy of the ``pool.*`` counters."""
    with _counter_lock:
        return dict(_counters)


# ----------------------------------------------------------------------
# Worker resolution
# ----------------------------------------------------------------------
def available_cpus() -> int:
    """CPUs this process may actually run on.

    Containers and CI runners routinely pin processes to a subset of the
    machine; :func:`os.cpu_count` reports the machine and over-subscribes.
    Prefers :func:`os.process_cpu_count` (3.13+), then the scheduling
    affinity mask, then the raw count.
    """
    getter = getattr(os, "process_cpu_count", None)
    if getter is not None:
        count = getter()
        if count:
            return count
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # non-Linux
        return os.cpu_count() or 1


def resolve_workers(workers: int | None) -> int:
    """Turn a ``workers`` setting into a concrete count.

    ``None`` and ``0`` mean "auto": one per *available* CPU
    (:func:`available_cpus`, affinity-aware).  Positive ints pass
    through; negative counts are rejected.
    """
    if workers is None or workers == 0:
        return available_cpus()
    if workers < 0:
        raise ValueError(f"workers must be >= 0 (0 = auto), got {workers}")
    return workers


def effective_workers(
    workers: int | None,
    item_count: int,
    min_items_per_worker: int = DEFAULT_MIN_ITEMS_PER_WORKER,
) -> int:
    """Workers actually worth using for ``item_count`` items.

    Resolves ``workers`` (:func:`resolve_workers`), then degrades to 1
    when the batch is too small for the fan-out to pay for itself, and
    caps the count so every worker gets at least ``min_items_per_worker``
    items.
    """
    resolved = resolve_workers(workers)
    if resolved <= 1 or item_count < 2 * max(1, min_items_per_worker):
        return 1
    return max(1, min(resolved, item_count // max(1, min_items_per_worker)))


def split_chunks(items: Sequence[T], chunk_count: int) -> list[list[T]]:
    """Split into ``chunk_count`` contiguous, near-even, non-empty chunks.

    Concatenating the chunks reproduces ``items`` exactly; at most
    ``len(items)`` chunks are produced.
    """
    item_list = list(items)
    count = max(1, min(chunk_count, len(item_list)))
    base, extra = divmod(len(item_list), count)
    chunks: list[list[T]] = []
    start = 0
    for i in range(count):
        size = base + (1 if i < extra else 0)
        chunks.append(item_list[start:start + size])
        start += size
    return chunks


def split_spans(item_count: int, chunk_count: int) -> list[tuple[int, int]]:
    """``(first_item, item_count)`` descriptors of :func:`split_chunks`.

    The descriptor form of chunking: contiguous, near-even, covering
    ``range(item_count)`` exactly, at most ``item_count`` spans.
    """
    count = max(1, min(chunk_count, item_count))
    base, extra = divmod(item_count, count)
    spans: list[tuple[int, int]] = []
    start = 0
    for i in range(count):
        size = base + (1 if i < extra else 0)
        spans.append((start, size))
        start += size
    return spans if spans else [(0, 0)]


# ----------------------------------------------------------------------
# Shared resources
# ----------------------------------------------------------------------
class Resource(NamedTuple):
    """A large read-only input workers should receive once, not per task.

    Attributes:
        kind: ``"object"`` (pickled once into each worker at start) or
            ``"csr"`` (a :class:`~repro.roadnet.csr.CSRGraph` published
            to shared memory and attached zero-copy).
        ident: Stable identity *excluding* version — e.g. ``(network
            name, id(network), directed)``.  Registering a new version
            under the same ident evicts the old one.
        version: Mutation version of the value.
        value: The parent-side object itself (also the serial-path value).
    """

    kind: str
    ident: tuple
    version: int
    value: object

    @property
    def key(self) -> tuple:
        return (self.kind, *self.ident, self.version)


def shared_object(ident: tuple, version: int, value: object) -> Resource:
    """Declare a broadcast-once picklable resource (e.g. a RoadNetwork)."""
    return Resource("object", ident, version, value)


def shared_csr(ident: tuple, version: int, graph) -> Resource:
    """Declare a CSR snapshot to publish via shared memory."""
    return Resource("csr", ident, version, graph)


def network_resource(network) -> Resource:
    """The broadcast resource for a road network instance."""
    return shared_object(
        ("net", network.name, id(network)), network.version, network
    )


def csr_resource(network, directed: bool) -> Resource:
    """The shared-memory resource for a network's CSR snapshot."""
    return shared_csr(
        ("csr", network.name, id(network), directed),
        network.version,
        network.csr(directed),
    )


# ----------------------------------------------------------------------
# Worker-side state
# ----------------------------------------------------------------------
# Populated by _worker_init from the bootstrap specs; maps resource key
# to the materialized value (unpickled object or attached CSRGraph).
_WORKER_RESOURCES: dict = {}
# Attached handles (SharedCSR) kept so atexit can release them cleanly.
_WORKER_HANDLES: list = []
# name -> (SharedMemory, typed memoryview) cache of transient batch
# segments, bounded so long-lived workers do not accumulate mappings.
_WORKER_BATCHES: dict = {}
_WORKER_BATCH_LIMIT = 4


def _release_worker_state() -> None:  # pragma: no cover - worker teardown
    for _name, (shm, view) in list(_WORKER_BATCHES.items()):
        view.release()
        shm.close()
    _WORKER_BATCHES.clear()
    for handle in _WORKER_HANDLES:
        handle.close()
    _WORKER_HANDLES.clear()
    _WORKER_RESOURCES.clear()


def _worker_init(specs: list[tuple[tuple, str, object]]) -> None:
    """Materialize every registered resource inside a fresh worker."""
    from .roadnet.sharedcsr import SharedCSR

    _release_worker_state()
    for key, kind, payload in specs:
        if kind == "object":
            _WORKER_RESOURCES[key] = pickle.loads(payload)
        else:  # "csr"
            handle = SharedCSR.attach(payload)
            _WORKER_HANDLES.append(handle)
            _WORKER_RESOURCES[key] = handle.graph
    atexit.register(_release_worker_state)


def _attach_batch(name: str, typecode: str) -> memoryview:
    """Attach (and cache) a transient flat-batch segment in a worker."""
    cached = _WORKER_BATCHES.get(name)
    if cached is not None:
        return cached[1]
    from .roadnet.sharedcsr import _attach_segment

    while len(_WORKER_BATCHES) >= _WORKER_BATCH_LIMIT:
        old_name = next(iter(_WORKER_BATCHES))
        old_shm, old_view = _WORKER_BATCHES.pop(old_name)
        old_view.release()
        old_shm.close()
    shm = _attach_segment(name)
    view = shm.buf.cast(typecode)
    _WORKER_BATCHES[name] = (shm, view)
    return view


def _run_task(payload: bytes):
    """Execute one pre-pickled task inside a worker.

    The payload is pickled in the parent (so ``pool.bytes_shipped`` is
    exact) and decodes to either::

        ("chunk", fn, resource_key | None, chunk)
        ("span", fn, resource_key | None, segment_name, typecode, lo, hi)

    ``fn`` receives the resolved resource value first (when a key is
    given), then the chunk — or, for spans, the whole typed view of the
    batch segment plus its ``[lo, hi)`` element range.
    """
    task = pickle.loads(payload)
    if task[0] == "chunk":
        _tag, fn, key, chunk = task
        if key is None:
            return fn(chunk)
        return fn(_WORKER_RESOURCES[key], chunk)
    _tag, fn, key, name, typecode, lo, hi = task
    view = _attach_batch(name, typecode)
    value = None if key is None else _WORKER_RESOURCES[key]
    return fn(value, view, lo, hi)


# ----------------------------------------------------------------------
# The persistent pool
# ----------------------------------------------------------------------
class WorkerPool:
    """A resumable, resource-aware :class:`ProcessPoolExecutor` wrapper.

    Workers are started lazily on the first batch and reused for every
    later one.  Registered resources are shipped in the worker
    *initializer* — broadcast objects as one pickle per worker per
    (re)start, CSR snapshots as shared-memory attaches — so steady-state
    tasks carry only chunk payloads or span descriptors.  Registering a
    genuinely new resource after startup restarts the workers once
    (``pool.restarts``); re-registering a known one is free.
    """

    def __init__(self, max_workers: int) -> None:
        self.max_workers = max(1, max_workers)
        self._executor: ProcessPoolExecutor | None = None
        self._resources: dict[tuple, Resource] = {}
        self._published: dict[tuple, object] = {}  # key -> SharedCSR owner
        self._payloads: dict[tuple, object] = {}   # key -> init payload
        self._lock = threading.RLock()
        self._batch_serial = 0

    # -- resources -----------------------------------------------------
    def ensure_resource(self, resource: Resource) -> tuple:
        """Register (or reuse) a resource; returns its worker-side key."""
        with self._lock:
            key = resource.key
            if key in self._resources:
                return key
            # Evict any stale version living under the same identity.
            for old_key in [
                k for k, r in self._resources.items()
                if (r.kind, r.ident) == (resource.kind, resource.ident)
            ]:
                self._drop_resource(old_key)
            if resource.kind == "csr":
                from .roadnet.sharedcsr import SharedCSR

                handle = SharedCSR.publish(resource.value)
                self._published[key] = handle
                self._payloads[key] = handle.name
                _bump("pool.shm_segments")
                _bump("pool.shm_bytes", handle.nbytes)
            else:
                payload = pickle.dumps(
                    resource.value, protocol=pickle.HIGHEST_PROTOCOL
                )
                self._payloads[key] = payload
                _bump("pool.broadcast_bytes", len(payload))
            self._resources[key] = resource
            if self._executor is not None:
                # Live workers lack the new resource: restart so their
                # initializer picks it up.
                self._restart()
            return key

    def _drop_resource(self, key: tuple) -> None:
        self._resources.pop(key, None)
        self._payloads.pop(key, None)
        handle = self._published.pop(key, None)
        if handle is not None:
            handle.unlink()

    def resource_value(self, key: tuple):
        """Parent-side value of a registered resource (serial fallback)."""
        with self._lock:
            return self._resources[key].value

    def _specs(self) -> list[tuple[tuple, str, object]]:
        return [
            (key, resource.kind, self._payloads[key])
            for key, resource in self._resources.items()
        ]

    # -- lifecycle -----------------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_worker_init,
                initargs=(self._specs(),),
            )
            _bump("pool.starts")
        return self._executor

    def _restart(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            _bump("pool.restarts")
        self._ensure_executor()

    def grow(self, max_workers: int) -> None:
        """Raise the worker count (restarts live workers if needed)."""
        with self._lock:
            if max_workers <= self.max_workers:
                return
            self.max_workers = max_workers
            if self._executor is not None:
                self._restart()

    def shutdown(self) -> None:
        """Stop workers and unlink every owned shared segment (idempotent)."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True, cancel_futures=True)
                self._executor = None
            for key in list(self._resources):
                self._drop_resource(key)

    # -- batches -------------------------------------------------------
    def run_batch(self, payloads: list[bytes]) -> list:
        """Run pre-pickled tasks, in order, with crash recovery.

        A :class:`BrokenProcessPool` (a worker died mid-batch) restarts
        the pool and retries the whole batch once
        (``pool.crash_recoveries``); a second failure falls back to
        executing the tasks inline in this process
        (``pool.serial_fallbacks``) — resource keys resolve against the
        parent-side values, so the fallback needs no worker state.
        """
        with self._lock:
            executor = self._ensure_executor()
            if self._batch_serial > 0:
                _bump("pool.reuses")
            self._batch_serial += 1
        _bump("pool.batches")
        _bump("pool.tasks", len(payloads))
        _bump("pool.bytes_shipped", sum(len(p) for p in payloads))
        for attempt in (0, 1):
            try:
                futures = [executor.submit(_run_task, p) for p in payloads]
                return [future.result() for future in futures]
            except BrokenProcessPool:
                _bump("pool.crash_recoveries")
                with self._lock:
                    self._restart()
                    executor = self._executor
        _bump("pool.serial_fallbacks")
        return [self._run_inline(p) for p in payloads]

    def _run_inline(self, payload: bytes):
        """Serial fallback: execute one task payload in the parent."""
        task = pickle.loads(payload)
        if task[0] == "chunk":
            _tag, fn, key, chunk = task
            if key is None:
                return fn(chunk)
            return fn(self.resource_value(key), chunk)
        _tag, fn, key, name, typecode, lo, hi = task
        from .roadnet.sharedcsr import _attach_segment

        shm = _attach_segment(name)
        try:
            view = shm.buf.cast(typecode)
            try:
                value = None if key is None else self.resource_value(key)
                return fn(value, view, lo, hi)
            finally:
                view.release()
        finally:
            shm.close()


_pool: WorkerPool | None = None
_pool_lock = threading.Lock()


def get_pool(workers: int | None = None) -> WorkerPool:
    """The process-wide persistent pool (created on first use).

    ``workers`` raises the pool size when it exceeds the current one;
    the pool never shrinks — per-batch chunk counts already bound how
    many workers a small batch occupies.
    """
    global _pool
    with _pool_lock:
        if _pool is None:
            _pool = WorkerPool(resolve_workers(workers))
            atexit.register(shutdown_pool)
        elif workers is not None:
            _pool.grow(resolve_workers(workers))
        return _pool


def shutdown_pool() -> None:
    """Shut the process-wide pool down and reclaim its shared segments."""
    global _pool
    with _pool_lock:
        pool = _pool
        _pool = None
    if pool is not None:
        pool.shutdown()


# ----------------------------------------------------------------------
# Fan-out entry points
# ----------------------------------------------------------------------
def map_chunked(
    fn: Callable,
    items: Sequence[T],
    workers: int | None = None,
    min_items_per_worker: int = DEFAULT_MIN_ITEMS_PER_WORKER,
    resource: Resource | None = None,
) -> list[R]:
    """Apply a chunk function over ``items``, fanned out across processes.

    ``fn`` receives a contiguous chunk (a list of items) — preceded by
    the resolved ``resource`` value when one is given — and returns a
    list of results; per-chunk results are concatenated in input order.
    With an effective worker count of 1 the single chunk is processed
    inline: identical results, no pool, no pickling.

    Args:
        fn: Picklable ``chunk -> results`` (or ``(value, chunk) ->
            results``) function.
        items: The work items, in order.
        workers: Worker setting (``None``/``0`` = auto, ``<=1`` serial).
        min_items_per_worker: Pool-worthiness floor per worker.
        resource: Optional shared input registered with the persistent
            pool instead of being pickled into every task.

    Returns:
        The concatenated results, ordered as ``items``.
    """
    item_list = list(items)
    if not item_list:
        return []
    count = effective_workers(workers, len(item_list), min_items_per_worker)
    if count <= 1:
        if resource is None:
            return list(fn(item_list))
        return list(fn(resource.value, item_list))
    pool = get_pool(resolve_workers(workers))
    key = None if resource is None else pool.ensure_resource(resource)
    payloads = [
        pickle.dumps(
            ("chunk", fn, key, chunk), protocol=pickle.HIGHEST_PROTOCOL
        )
        for chunk in split_chunks(item_list, count)
    ]
    parts = pool.run_batch(payloads)
    return [result for part in parts for result in part]


def map_flat(
    fn: Callable,
    typecode: str,
    flat,
    boundaries: Sequence[int],
    workers: int | None = None,
    min_items_per_worker: int = DEFAULT_MIN_ITEMS_PER_WORKER,
    resource: Resource | None = None,
) -> list:
    """Fan a *flat-encoded* batch out by (offset, length) descriptors.

    ``flat`` is one typed :class:`array.array` encoding every item
    back-to-back; ``boundaries[i]`` is the element offset where item
    ``i`` starts (``len(boundaries) == item_count + 1``, and the encoding
    must be self-delimiting so ``fn`` can walk its span).  In parallel
    mode the flat payload is copied once into a transient shared-memory
    segment and each task ships only ``(segment, lo, hi)`` — workers
    read the items straight out of shared pages.

    ``fn(value, view, lo, hi)`` receives the resolved resource value
    (``None`` without one), a typed view of the whole batch, and its
    element range; it returns one result list for the span.  The serial
    path calls ``fn`` once over the full range on a local view — byte
    identical, no segment.
    """
    item_count = len(boundaries) - 1
    if item_count <= 0:
        return []
    if not isinstance(flat, array) or flat.typecode != typecode:
        flat = array(typecode, flat)
    count = effective_workers(workers, item_count, min_items_per_worker)
    if count <= 1:
        view = memoryview(flat)
        try:
            value = None if resource is None else resource.value
            return list(fn(value, view, boundaries[0], boundaries[-1]))
        finally:
            view.release()
    from multiprocessing import shared_memory

    pool = get_pool(resolve_workers(workers))
    key = None if resource is None else pool.ensure_resource(resource)
    raw = flat.tobytes()
    segment = shared_memory.SharedMemory(create=True, size=max(1, len(raw)))
    try:
        segment.buf[:len(raw)] = raw
        _bump("pool.shm_segments")
        _bump("pool.shm_bytes", segment.size)
        payloads = []
        for first, span in split_spans(item_count, count):
            lo = boundaries[first]
            hi = boundaries[first + span]
            payloads.append(pickle.dumps(
                ("span", fn, key, segment.name, typecode, lo, hi),
                protocol=pickle.HIGHEST_PROTOCOL,
            ))
        parts = pool.run_batch(payloads)
        return [result for part in parts for result in part]
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass
