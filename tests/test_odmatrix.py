"""Tests for OD-matrix extraction."""

from __future__ import annotations


from repro.analysis.odmatrix import format_od_matrix, od_matrix

from conftest import trajectory_through


class TestODMatrix:
    def test_single_corridor(self, line3):
        trs = [trajectory_through(line3, i, [0, 1, 2]) for i in range(4)]
        matrix = od_matrix(line3, trs, radius=50.0)
        assert matrix.trip_count == 4
        # One origin area (around node 0/segment 0 start) and one
        # destination area; all four trips in one cell.
        (origin, destination, trips), = matrix.top_pairs(1)
        assert trips == 4
        assert origin != destination

    def test_opposite_directions_are_distinct_cells(self, line3):
        eastbound = [trajectory_through(line3, i, [0, 1, 2]) for i in range(3)]
        westbound = [trajectory_through(line3, 10 + i, [2, 1, 0]) for i in range(2)]
        matrix = od_matrix(line3, eastbound + westbound, radius=50.0)
        pairs = matrix.top_pairs(10)
        assert [n for _o, _d, n in pairs] == [3, 2]
        # Eastbound trips originate at the west end, westbound at the
        # east end: the directions land in different, non-diagonal cells.
        (east_o, east_d, _), (west_o, west_d, _) = pairs
        assert 0 in matrix.areas[east_o]
        assert east_o != east_d
        assert any(node >= 2 for node in matrix.areas[west_o])
        assert west_o != west_d
        assert (east_o, east_d) != (west_o, west_d)

    def test_radius_merges_areas(self, line3):
        trs = [trajectory_through(line3, i, [0, 1, 2]) for i in range(2)]
        fine = od_matrix(line3, trs, radius=50.0)
        coarse = od_matrix(line3, trs, radius=10_000.0)
        assert len(coarse.areas) <= len(fine.areas)
        # With everything in one area, the single cell is diagonal.
        if len(coarse.areas) == 1:
            assert coarse.demand_between(0, 0) == 2

    def test_area_of(self, line3):
        trs = [trajectory_through(line3, 0, [0, 1, 2])]
        matrix = od_matrix(line3, trs, radius=50.0)
        for area_id, area in enumerate(matrix.areas):
            for node in area:
                assert matrix.area_of(node) == area_id
        assert matrix.area_of(999999) is None

    def test_empty(self, line3):
        matrix = od_matrix(line3, [])
        assert matrix.trip_count == 0
        assert format_od_matrix(matrix) == "(no trips)"

    def test_format(self, line3):
        trs = [trajectory_through(line3, i, [0, 1, 2]) for i in range(3)]
        text = format_od_matrix(od_matrix(line3, trs, radius=50.0))
        assert "trips" in text
        assert "3" in text

    def test_recovers_simulator_demand_structure(self, small_workload):
        """Hotspot-to-destination demand shows up as the dominant cells."""
        network, dataset = small_workload
        matrix = od_matrix(network, list(dataset), radius=600.0)
        assert matrix.trip_count == len(dataset)
        top = matrix.top_pairs(5)
        # The busiest OD pair should carry a meaningful share of trips
        # (2 hotspots x 3 destinations = at most 6 real cells).
        assert top[0][2] >= len(dataset) / 10
