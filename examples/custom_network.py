#!/usr/bin/env python3
"""Bring your own map: cluster trajectories on a CSV road network.

Real deployments rarely start from a generator — they have a node table
and an edge table exported from a GIS.  This example writes a small
hand-made downtown (two parallel avenues, cross streets, one bridge
whose network distance wildly exceeds its Euclidean distance), loads it
back through the CSV importer, and shows why NEAT's *network* proximity
matters: the two bridgeheads are 80 m apart in Euclidean space but far
apart on the road network, so flows on opposite banks only merge when the
refinement threshold accounts for the true travel distance.

Run:  python examples/custom_network.py
"""

from pathlib import Path

from repro.core import NEAT, NEATConfig, Location, Trajectory
from repro.roadnet import load_network_csv
from repro.roadnet.shortest_path import dijkstra_distance

OUT = Path(__file__).parent / "output"
OUT.mkdir(exist_ok=True)

# --- 1. Author the map as CSV (a GIS export would produce the same). ---
# Two banks of a river (y=0 and y=80), one bridge at the far east end.
nodes_csv = OUT / "downtown_nodes.csv"
edges_csv = OUT / "downtown_edges.csv"
nodes = ["node_id,x,y"]
for i in range(6):  # south bank: nodes 0..5 along y=0
    nodes.append(f"{i},{i * 200},0")
for i in range(6):  # north bank: nodes 6..11 along y=80
    nodes.append(f"{6 + i},{i * 200},80")
nodes_csv.write_text("\n".join(nodes) + "\n")

edges = ["sid,node_u,node_v,speed_limit,road_class"]
sid = 0
for i in range(5):  # south avenue
    edges.append(f"{sid},{i},{i + 1},13.9,local"); sid += 1
for i in range(5):  # north avenue
    edges.append(f"{sid},{6 + i},{7 + i},13.9,local"); sid += 1
edges.append(f"{sid},5,11,8.3,bridge")  # the only river crossing
bridge_sid = sid
edges_csv.write_text("\n".join(edges) + "\n")

network = load_network_csv(nodes_csv, edges_csv, name="downtown")
print(f"Loaded {network}")

# The Euclidean vs network gap at the west bridgeheads (nodes 0 and 6):
euclid = network.node_point(0).distance_to(network.node_point(6))
net = dijkstra_distance(network, 0, 6)
print(
    f"West bridgeheads: Euclidean {euclid:.0f} m, network {net:.0f} m "
    f"({net / euclid:.0f}x further by road)"
)

# --- 2. Hand-authored trajectories: one commuter stream per bank. ---
def stream(trid0, sids, count):
    trips = []
    for k in range(count):
        locations = []
        t = 10.0 * k
        for s in sids:
            seg = network.segment(s)
            a = network.point_on_segment(s, seg.length / 3)
            b = network.point_on_segment(s, 2 * seg.length / 3)
            locations += [
                Location(s, a.x, a.y, t), Location(s, b.x, b.y, t + 5.0)
            ]
            t += 10.0
        trips.append(Trajectory(trid0 + k, tuple(locations)))
    return trips

south = stream(0, [0, 1, 2, 3, 4], 6)
north = stream(100, [5, 6, 7, 8, 9], 6)

# --- 3. Cluster at two refinement radii. ---
for eps in (100.0, 1500.0):
    result = NEAT(network, NEATConfig(eps=eps, min_card=0)).run_opt(south + north)
    print(
        f"eps={eps:>6.0f} m -> {result.flow_count} flows, "
        f"{result.cluster_count} final clusters"
    )

print(
    "\nAt eps=100 m the banks stay separate even though they are 80 m "
    "apart in Euclidean space: NEAT measures the route over the bridge. "
    "A Euclidean method would have merged them immediately — the paper's "
    "'trajectories on and under a bridge' argument (Section I)."
)
