"""The shard-node wire protocol: framed JSON RPC over localhost TCP.

This is the real transport behind the distributed tier — shard nodes
run as separate OS processes (``repro shard-node``) and the coordinator
talks to them through :class:`TransportClient`, so node loss is a
killed process and a refused connect, not a simulated exception.

**Framing** follows :mod:`repro.persist.store`: every message is one
frame of ``magic | payload-length u32 BE | crc32 u32 BE | payload``
with its own magic (``RPW1``).  A frame that ends early is *torn* (the
peer died mid-send — the connection is closed); a complete frame whose
CRC fails is *garbled* (the server answers with a typed error so the
client can tell corruption from loss).

**Handshake**: the first exchange on every connection is a versioned
hello — the client sends ``{"op": "hello", "proto": N}``, the server
accepts or rejects with its own version.  A mismatch raises
:class:`~repro.errors.HandshakeFailed` before any payload moves.

**RPCs** are JSON objects (``sort_keys=True`` end to end, so two
identical runs put byte-identical frames on the wire): ``ping``,
``preprocess`` (Phase 1 over shipped trajectories), ``distances``
(eps-bounded shortest-path distances against the shard's local engine —
the shard-side half of Phase 3), ``batch`` (several requests in one
frame), ``stats``, ``reset`` (server closes the connection after
replying) and ``shutdown``.  Trajectories and base clusters travel
either in the location-row schema of :mod:`repro.core.serialize` or —
the hot path — as packed columnar arrays
(:func:`trajectories_to_packed` / :func:`clusters_to_packed`: flat
little-endian typed columns, base64-wrapped in the JSON envelope;
exact, deterministic, and several times cheaper to encode than nested
number lists).

**Connections are persistent**: a :class:`TransportClient` keeps its
socket open across calls behind a small per-node
:class:`ConnectionPool` (handshake once per connection, idle timeout,
LIFO reuse).  A stale pooled socket — the server closed it between
calls — triggers exactly one transparent reconnect-and-resend, counted
in ``transport.reconnects``; injected faults never retry transparently,
so chaos schedules land at the same deterministic 1-based call indexes
they did with one-connection-per-call.  :meth:`TransportClient.start` /
:meth:`TransportClient.finish` split a call into its request and
response halves so a coordinator can *pipeline* — write requests to
every node before reading any response.

**Fault injection** is scheduled by the ordinary
:class:`~repro.resilience.FaultPlan` connection-fault fields and
*performed* here, at the socket layer, so the observed errors are
organic:

* ``refuse`` — the client never connects (as if the process is gone);
* ``drop``   — the client sends half the request frame and closes; the
  server sees a torn frame, the client reads EOF;
* ``stall``  — the request carries a ``_stall_s`` chaos field the server
  honors before replying, so the client's real socket timeout fires;
* ``garble`` — one payload bit of the outgoing frame is flipped; the
  server's CRC check rejects it.

Every wire call and failure is counted in the ``transport.*`` family
(requests, bytes, handshakes, errors and one counter per fault kind).
"""

from __future__ import annotations

import base64
import json
import os
import socket
import socketserver
import struct
import subprocess
import sys
import tempfile
import threading
import time
import zlib
import contextlib
import gc
from array import array
from dataclasses import dataclass
from itertools import repeat
from pathlib import Path
from typing import Any, Iterable, Sequence

from ..core.base_cluster import BaseCluster, form_base_clusters
from ..core.model import Location, TFragment, Trajectory
from ..errors import HandshakeFailed, NodeDown, TransportError
from ..obs import get_logger
from ..resilience import FaultInjector
from ..roadnet.network import RoadNetwork

__all__ = [
    "PROTOCOL_VERSION",
    "ConnectionPool",
    "RemoteDataNode",
    "ShardNodeServer",
    "ShardProcess",
    "TransportClient",
    "clusters_from_packed",
    "clusters_from_wire",
    "clusters_to_packed",
    "clusters_to_wire",
    "decode_frame",
    "encode_frame",
    "spawn_local_shards",
    "stop_shards",
    "trajectories_from_packed",
    "trajectories_from_wire",
    "trajectories_to_packed",
    "trajectories_to_wire",
]

_log = get_logger("distributed.transport")

#: Wire protocol version; bumped on any frame- or message-schema change.
#: v2 added ``batch``, ``distances`` and ``reset`` plus persistent
#: connections (the framing itself is unchanged).
PROTOCOL_VERSION = 2

#: Frame header: magic (4) | payload length u32 BE (4) | crc32 u32 BE (4).
FRAME_MAGIC = b"RPW1"
FRAME_HEADER = struct.Struct(">4sII")

#: Upper bound on a single frame payload (a shard of trajectories is
#: megabytes, not gigabytes; anything larger is a corrupt length field).
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Ceiling on the honored chaos stall (a runaway plan must not wedge a
#: server thread forever).
MAX_STALL_S = 30.0


class FrameError(Exception):
    """A complete-but-wrong frame (bad magic, bad CRC, absurd length)."""


class TornFrame(Exception):
    """The stream ended mid-frame (peer died or dropped mid-send)."""


# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------
def encode_frame(payload: bytes) -> bytes:
    """One wire frame around ``payload``."""
    return FRAME_HEADER.pack(
        FRAME_MAGIC, len(payload), zlib.crc32(payload) & 0xFFFFFFFF
    ) + payload


def decode_frame(data: bytes) -> bytes:
    """The payload of a complete frame in ``data`` (exact length).

    Raises:
        TornFrame: ``data`` is shorter than the frame declares.
        FrameError: Bad magic, oversized length, or CRC mismatch.
    """
    if len(data) < FRAME_HEADER.size:
        raise TornFrame(f"{len(data)} byte(s), header needs {FRAME_HEADER.size}")
    magic, length, crc = FRAME_HEADER.unpack_from(data)
    if magic != FRAME_MAGIC:
        raise FrameError(f"bad magic {magic!r}")
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    payload = data[FRAME_HEADER.size : FRAME_HEADER.size + length]
    if len(payload) < length:
        raise TornFrame(f"payload {len(payload)}/{length} byte(s)")
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise FrameError("crc mismatch")
    return payload


def _read_exact(rfile: Any, count: int) -> bytes:
    """Exactly ``count`` bytes from a socket file, or what EOF left."""
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = rfile.read(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(rfile: Any) -> bytes | None:
    """The next frame payload from a socket file.

    Returns ``None`` on a clean EOF at a frame boundary (the peer closed
    the connection between messages — the normal end of a session).

    Raises:
        TornFrame: EOF inside a frame.
        FrameError: A complete frame that fails validation.
    """
    header = _read_exact(rfile, FRAME_HEADER.size)
    if not header:
        return None
    if len(header) < FRAME_HEADER.size:
        raise TornFrame(f"header {len(header)}/{FRAME_HEADER.size} byte(s)")
    magic, length, crc = FRAME_HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise FrameError(f"bad magic {magic!r}")
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    payload = _read_exact(rfile, length)
    if len(payload) < length:
        raise TornFrame(f"payload {len(payload)}/{length} byte(s)")
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise FrameError("crc mismatch")
    return payload


def _encode_message(message: dict[str, Any]) -> bytes:
    return encode_frame(
        json.dumps(
            message, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    )


# ----------------------------------------------------------------------
# Payload schemas (the location-row format of repro.core.serialize)
# ----------------------------------------------------------------------
def _pack_array(values: array, byteswap: bool = sys.byteorder == "big") -> str:
    """A typed array as base64 of its little-endian bytes.

    Fixed little-endian layout keeps the wire bytes identical across
    hosts; IEEE-754 doubles round-trip exactly, so packed floats are
    bit-identical on arrival — stronger than the shortest-repr JSON
    round trip, and an order of magnitude cheaper to produce.
    """
    if byteswap:
        values = array(values.typecode, values)
        values.byteswap()
    return base64.b64encode(values.tobytes()).decode("ascii")


def _unpack_array(typecode: str, data: str) -> array:
    values = array(typecode)
    values.frombytes(base64.b64decode(data.encode("ascii")))
    if sys.byteorder == "big":
        values.byteswap()
    return values


class _LocationColumns:
    """Flat per-location columns shared by the packed payload schemas."""

    __slots__ = ("sids", "nodes", "xs", "ys", "ts")

    def __init__(self) -> None:
        self.sids = array("q")
        self.nodes = array("q")
        self.xs = array("d")
        self.ys = array("d")
        self.ts = array("d")

    def add(self, locations: Sequence[Location]) -> None:
        # Five C-level extends instead of one Python-level loop doing
        # five appends per location: the encode half of the wire cost.
        self.sids.extend(location.sid for location in locations)
        self.nodes.extend(
            -1 if location.node_id is None else location.node_id
            for location in locations
        )
        self.xs.extend(location.x for location in locations)
        self.ys.extend(location.y for location in locations)
        self.ts.extend(location.t for location in locations)

    def to_payload(self) -> dict[str, str]:
        return {
            "sids": _pack_array(self.sids),
            "nodes": _pack_array(self.nodes),
            "xs": _pack_array(self.xs),
            "ys": _pack_array(self.ys),
            "ts": _pack_array(self.ts),
        }


@contextlib.contextmanager
def _gc_paused():
    """Cyclic GC paused for a bounded bulk-allocation region.

    Decoding a dataset-sized packed payload allocates hundreds of
    thousands of small immutable objects in a tight loop; with a large
    live heap (the road network, the coordinator's own state) the
    generational collector triggers every ~700 allocations and scans
    that heap each time — measured at half the decode wall time.  None
    of the freshly built tuples can be cyclic garbage, so collection is
    deferred until the region ends.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _node_ids(nodes: array) -> list[int | None]:
    """The packed node column back to ``node_id`` values (-1 -> None)."""
    # dict.get(n, n) at map() speed: -1 -> None, anything else unchanged.
    sentinel: dict[int, None] = {-1: None}
    return list(map(sentinel.get, nodes, nodes))


def _trusted_fragment(
    trid: int, sid: int, locations: tuple[Location, ...]
) -> TFragment:
    """A t-fragment without the per-location ``__post_init__`` sid scan.

    Only for wire decoding: the CRC-framed payload was encoded from real
    :class:`TFragment` objects, so the every-location-on-this-segment
    invariant holds by construction (the packed cluster schema doesn't
    even carry per-location sids — they are re-derived from the cluster
    sid).  Re-validating ~4 locations x ~30k fragments per reply was a
    measurable slice of coordinator decode time.
    """
    fragment = object.__new__(TFragment)
    object.__setattr__(fragment, "trid", trid)
    object.__setattr__(fragment, "sid", sid)
    object.__setattr__(fragment, "locations", locations)
    return fragment


def trajectories_to_packed(
    trajectories: Iterable[Trajectory],
) -> dict[str, str]:
    """Trajectories as packed columnar arrays (the hot-path schema).

    The row schema of :func:`trajectories_to_wire` spends most of a
    dispatch inside ``json.dumps``/``json.loads`` walking nested lists
    of numbers; at bench scale that serialization alone outweighed the
    Phase 1 compute being distributed.  This packs the same values into
    five flat typed columns (sid / node / x / y / t) plus per-trajectory
    offsets, base64-wrapped into an ordinary JSON envelope — exact,
    deterministic, and ~6x faster to encode.
    """
    trids = array("q")
    counts = array("I")
    columns = _LocationColumns()
    for trajectory in trajectories:
        trids.append(trajectory.trid)
        counts.append(len(trajectory.locations))
        columns.add(trajectory.locations)
    payload = columns.to_payload()
    payload["trids"] = _pack_array(trids)
    payload["counts"] = _pack_array(counts)
    return payload


def trajectories_from_packed(payload: dict[str, Any]) -> list[Trajectory]:
    """Trajectories rebuilt from :func:`trajectories_to_packed` output."""
    trids = _unpack_array("q", payload["trids"])
    counts = _unpack_array("I", payload["counts"])
    with _gc_paused():
        # One C-speed map over the whole column set, then cheap list
        # slices per trajectory — not a Python loop with per-index
        # array access.
        locations = list(map(
            Location,
            _unpack_array("q", payload["sids"]),
            _unpack_array("d", payload["xs"]),
            _unpack_array("d", payload["ys"]),
            _unpack_array("d", payload["ts"]),
            _node_ids(_unpack_array("q", payload["nodes"])),
        ))
        trajectories: list[Trajectory] = []
        offset = 0
        for trid, count in zip(trids, counts):
            end = offset + count
            trajectories.append(
                Trajectory(trid, tuple(locations[offset:end]))
            )
            offset = end
    return trajectories


def clusters_to_packed(clusters: Iterable[BaseCluster]) -> dict[str, str]:
    """Base clusters as packed columnar arrays (hot-path reply schema).

    Leaner than the trajectory schema: every fragment in a base cluster
    shares the cluster's sid, and every location in a fragment shares the
    fragment's sid — so the reply carries *no* sid columns at all beyond
    one sid per cluster.  The decoder re-derives the rest, which both
    shrinks the reply (8 bytes per location + 8 per fragment) and makes
    decode-side re-validation unnecessary.
    """
    cluster_sids = array("q")
    fragment_counts = array("I")
    fragment_trids = array("q")
    location_counts = array("I")
    nodes = array("q")
    xs = array("d")
    ys = array("d")
    ts = array("d")
    for cluster in clusters:
        cluster_sids.append(cluster.sid)
        fragment_counts.append(len(cluster.fragments))
        for fragment in cluster.fragments:
            locations = fragment.locations
            fragment_trids.append(fragment.trid)
            location_counts.append(len(locations))
            nodes.extend(
                -1 if location.node_id is None else location.node_id
                for location in locations
            )
            xs.extend(location.x for location in locations)
            ys.extend(location.y for location in locations)
            ts.extend(location.t for location in locations)
    return {
        "cluster_sids": _pack_array(cluster_sids),
        "fragment_counts": _pack_array(fragment_counts),
        "fragment_trids": _pack_array(fragment_trids),
        "location_counts": _pack_array(location_counts),
        "nodes": _pack_array(nodes),
        "xs": _pack_array(xs),
        "ys": _pack_array(ys),
        "ts": _pack_array(ts),
    }


def clusters_from_packed(payload: dict[str, Any]) -> list[BaseCluster]:
    """Base clusters rebuilt from :func:`clusters_to_packed` output.

    The coordinator decodes one of these per shard per run, each roughly
    dataset-sized — this is the hottest deserialization path in the
    distributed tier, so everything bulk happens at C speed: sids are
    expanded per cluster with ``repeat``, the full location list is built
    by a single ``map`` over the flat columns, and fragments take cheap
    list slices of it (see :func:`_trusted_fragment` for why the
    per-fragment sid scan is skipped).
    """
    cluster_sids = _unpack_array("q", payload["cluster_sids"])
    fragment_counts = _unpack_array("I", payload["fragment_counts"])
    fragment_trids = _unpack_array("q", payload["fragment_trids"])
    location_counts = _unpack_array("I", payload["location_counts"])
    with _gc_paused():
        sids: list[int] = []
        fragment_index = 0
        for sid, count in zip(cluster_sids, fragment_counts):
            total = 0
            for _ in range(count):
                total += location_counts[fragment_index]
                fragment_index += 1
            sids.extend(repeat(sid, total))
        locations = list(map(
            Location,
            sids,
            _unpack_array("d", payload["xs"]),
            _unpack_array("d", payload["ys"]),
            _unpack_array("d", payload["ts"]),
            _node_ids(_unpack_array("q", payload["nodes"])),
        ))
        clusters: list[BaseCluster] = []
        fragment_index = 0
        offset = 0
        for sid, count in zip(cluster_sids, fragment_counts):
            fragments: list[TFragment] = []
            for _ in range(count):
                end = offset + location_counts[fragment_index]
                fragments.append(_trusted_fragment(
                    fragment_trids[fragment_index],
                    sid,
                    tuple(locations[offset:end]),
                ))
                offset = end
                fragment_index += 1
            clusters.append(BaseCluster(sid, fragments))
    return clusters
def trajectories_to_wire(
    trajectories: Iterable[Trajectory],
) -> list[dict[str, Any]]:
    """Trajectories as JSON-compatible rows."""
    return [
        {
            "trid": tr.trid,
            "locations": [
                [l.sid, l.x, l.y, l.t, l.node_id] for l in tr.locations
            ],
        }
        for tr in trajectories
    ]


def trajectories_from_wire(rows: Iterable[dict[str, Any]]) -> list[Trajectory]:
    """Trajectories rebuilt from :func:`trajectories_to_wire` output."""
    return [
        Trajectory(
            int(row["trid"]),
            tuple(
                Location(
                    int(sid), float(x), float(y), float(t),
                    None if node_id is None else int(node_id),
                )
                for sid, x, y, t, node_id in row["locations"]
            ),
        )
        for row in rows
    ]


def clusters_to_wire(clusters: Iterable[BaseCluster]) -> list[dict[str, Any]]:
    """Base clusters as JSON-compatible rows (serialize schema)."""
    return [
        {
            "sid": cluster.sid,
            "fragments": [
                {
                    "trid": fragment.trid,
                    "locations": [
                        [l.sid, l.x, l.y, l.t, l.node_id]
                        for l in fragment.locations
                    ],
                }
                for fragment in cluster.fragments
            ],
        }
        for cluster in clusters
    ]


def clusters_from_wire(rows: Iterable[dict[str, Any]]) -> list[BaseCluster]:
    """Base clusters rebuilt from :func:`clusters_to_wire` output."""
    clusters: list[BaseCluster] = []
    for row in rows:
        cluster = BaseCluster(int(row["sid"]))
        for fragment in row["fragments"]:
            locations = tuple(
                Location(
                    int(sid), float(x), float(y), float(t),
                    None if node_id is None else int(node_id),
                )
                for sid, x, y, t, node_id in fragment["locations"]
            )
            cluster.add(
                TFragment(int(fragment["trid"]), locations[0].sid, locations)
            )
        clusters.append(cluster)
    return clusters


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------
class _ShardTCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    # Bound by ShardNodeServer before serving starts.
    shard: "ShardNodeServer"


class _ShardHandler(socketserver.StreamRequestHandler):
    """One connection: hello handshake, then request frames until EOF.

    Connections are long-lived — a well-behaved client sends many
    request frames over one handshake.  The loop only ends on EOF, a
    torn/garbled frame, a rejected hello, or a ``reset``/``shutdown``
    op.
    """

    def handle(self) -> None:  # noqa: D102 - socketserver contract
        shard = self.server.shard  # type: ignore[attr-defined]
        shard.connections += 1
        greeted = False
        while True:
            try:
                payload = read_frame(self.rfile)
            except TornFrame as error:
                shard.torn_frames += 1
                _log.debug("torn frame", peer=self.client_address, error=str(error))
                return
            except FrameError as error:
                shard.bad_frames += 1
                self._reply({
                    "ok": False, "kind": "garbled",
                    "error": f"rejected frame: {error}",
                })
                return
            if payload is None:
                return
            try:
                message = json.loads(payload.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as error:
                shard.bad_frames += 1
                self._reply({
                    "ok": False, "kind": "protocol",
                    "error": f"payload is not JSON: {error}",
                })
                return
            if not greeted:
                if not self._handshake(shard, message):
                    return
                greeted = True
                continue
            if not self._serve_request(shard, message):
                return

    # -- steps ----------------------------------------------------------
    def _handshake(self, shard: "ShardNodeServer", message: dict) -> bool:
        if message.get("op") != "hello":
            shard.bad_frames += 1
            self._reply({
                "ok": False, "kind": "handshake",
                "error": "first message must be a hello",
            })
            return False
        proto = message.get("proto")
        if proto != PROTOCOL_VERSION:
            self._reply({
                "ok": False, "kind": "handshake",
                "error": (
                    f"unsupported protocol version {proto!r} "
                    f"(server speaks {PROTOCOL_VERSION})"
                ),
            })
            return False
        self._reply({
            "ok": True,
            "proto": PROTOCOL_VERSION,
            "node_id": shard.node_id,
            "network": shard.network.name,
        })
        return True

    def _serve_request(self, shard: "ShardNodeServer", message: dict) -> bool:
        stall_s = message.get("_stall_s")
        if stall_s:
            # The chaos hook behind FaultPlan.stall_nth: hold the reply
            # past the client's read deadline so its timeout fires for
            # real.  Bounded so a bad plan cannot wedge the thread.
            time.sleep(min(float(stall_s), MAX_STALL_S))
        response, action = self._execute(shard, message, allow_batch=True)
        self._reply(response)
        if action == "shutdown":
            shard.request_shutdown()
            return False
        return action != "close"

    def _execute(
        self, shard: "ShardNodeServer", message: dict, allow_batch: bool
    ) -> tuple[dict[str, Any], str]:
        """One op's response plus the connection action it implies.

        The action is ``"keep"`` (serve the next frame), ``"close"``
        (reply, then end the connection — ``reset``) or ``"shutdown"``
        (reply, then stop the whole server).  ``batch`` executes its
        sub-requests in order through this same method and aggregates
        the strongest action.
        """
        op = message.get("op")
        try:
            if op == "batch":
                if not allow_batch:
                    return {
                        "ok": False, "kind": "protocol",
                        "error": "batch ops cannot nest",
                    }, "keep"
                shard.batched_requests += 1
                payload = message.get("payload") or {}
                responses: list[dict[str, Any]] = []
                action = "keep"
                for request in payload.get("requests", []):
                    response, sub_action = self._execute(
                        shard, request, allow_batch=False
                    )
                    responses.append(response)
                    if sub_action == "shutdown":
                        action = "shutdown"
                    elif sub_action == "close" and action == "keep":
                        action = "close"
                return {"ok": True, "result": {"responses": responses}}, action
            shard.requests += 1
            if op == "ping":
                return {"ok": True, "result": {"node_id": shard.node_id}}, "keep"
            if op == "preprocess":
                payload = message.get("payload") or {}
                # Hot path: the packed columnar schema.  The row schema
                # stays accepted (and answered in kind) for hand-rolled
                # clients and the protocol tests.
                packed = payload.get("trajectories_packed")
                if packed is not None:
                    trajectories = trajectories_from_packed(packed)
                else:
                    trajectories = trajectories_from_wire(
                        payload.get("trajectories", [])
                    )
                clusters = form_base_clusters(
                    shard.network,
                    trajectories,
                    keep_interior_points=bool(
                        payload.get("keep_interior_points", False)
                    ),
                )
                shard.preprocess_calls += 1
                shard.trajectories_processed += len(trajectories)
                result = (
                    {"clusters_packed": clusters_to_packed(clusters)}
                    if packed is not None
                    else {"clusters": clusters_to_wire(clusters)}
                )
                return {"ok": True, "result": result}, "keep"
            if op == "distances":
                payload = message.get("payload") or {}
                return {
                    "ok": True,
                    "result": shard.compute_distances(
                        [
                            (int(source), int(target))
                            for source, target in payload.get("pairs", [])
                        ],
                        payload.get("cutoff"),
                    ),
                }, "keep"
            if op == "stats":
                return {"ok": True, "result": shard.stats()}, "keep"
            if op == "reset":
                # Drop warm per-run state (the lazily-built distance
                # engine), then a server-initiated connection close: the
                # reply goes out, then the connection ends.  A pooled
                # client discovers the close on its next reuse and
                # reconnects.  Benches use this between rounds so every
                # round is cold on both sides of the wire.
                with shard._engine_lock:
                    shard._engine = None
                return {"ok": True, "result": {"closing": True}}, "close"
            if op == "shutdown":
                return {"ok": True, "result": {"stopping": True}}, "shutdown"
            return {
                "ok": False, "kind": "protocol",
                "error": f"unknown op {op!r}",
            }, "keep"
        except Exception as error:  # surface, never kill the connection loop
            _log.error("request failed", op=op, error=repr(error))
            return {
                "ok": False, "kind": "protocol",
                "error": f"{type(error).__name__}: {error}",
            }, "keep"

    def _reply(self, message: dict[str, Any]) -> None:
        try:
            self.wfile.write(_encode_message(message))
            self.wfile.flush()
        except OSError:  # peer vanished mid-reply; nothing to salvage
            pass


class ShardNodeServer:
    """One shard node: serves Phase 1 over its road network on TCP.

    Args:
        network: The (replicated) road network this node preprocesses on.
        node_id: Identifier reported in handshakes and stats.
        host: Bind address (loopback by default).
        port: TCP port; 0 picks an ephemeral one.
    """

    def __init__(
        self,
        network: RoadNetwork,
        node_id: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.network = network
        self.node_id = node_id
        self.requests = 0
        self.preprocess_calls = 0
        self.trajectories_processed = 0
        self.distance_calls = 0
        self.distance_pairs = 0
        self.batched_requests = 0
        self.connections = 0
        self.bad_frames = 0
        self.torn_frames = 0
        self._server = _ShardTCPServer((host, port), _ShardHandler)
        self._server.shard = self
        self._thread: threading.Thread | None = None
        self._shutdown_requested = threading.Event()
        self._engine = None
        self._engine_lock = threading.Lock()

    # -- address --------------------------------------------------------
    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- lifecycle ------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "ShardNodeServer":
        """Serve on a daemon thread (idempotent while running)."""
        if self.running:
            return self
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"repro-shard-node:{self.port}",
            daemon=True,
        )
        self._thread.start()
        _log.info("shard node listening", node=self.node_id, address=self.address)
        return self

    def serve_until_shutdown(self, poll_s: float = 0.2) -> None:
        """Serve on the calling thread until a ``shutdown`` op or signal.

        The blocking mode ``repro shard-node`` uses: :meth:`stop` (e.g.
        from a signal handler) and the wire ``shutdown`` op both return
        control here.
        """
        self.start()
        while self.running and not self._shutdown_requested.wait(poll_s):
            pass
        self.stop()

    def request_shutdown(self) -> None:
        """Ask the serving loop to stop (safe from handler threads)."""
        self._shutdown_requested.set()

    def stop(self) -> None:
        """Shut down and join the serving thread (idempotent)."""
        self._shutdown_requested.set()
        thread = self._thread
        if thread is None:
            return
        self._server.shutdown()
        thread.join(timeout=5.0)
        self._server.server_close()
        self._thread = None

    def __enter__(self) -> "ShardNodeServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def stats(self) -> dict[str, Any]:
        """Served-request counters (the ``stats`` RPC body)."""
        return {
            "node_id": self.node_id,
            "requests": self.requests,
            "preprocess_calls": self.preprocess_calls,
            "trajectories_processed": self.trajectories_processed,
            "distance_calls": self.distance_calls,
            "distance_pairs": self.distance_pairs,
            "batched_requests": self.batched_requests,
            "connections": self.connections,
            "bad_frames": self.bad_frames,
            "torn_frames": self.torn_frames,
        }

    # -- shard-side Phase 3 ---------------------------------------------
    def compute_distances(
        self,
        pairs: Sequence[tuple[int, int]],
        cutoff: float | None = None,
    ) -> dict[str, Any]:
        """Eps-bounded shortest-path distances over the local network.

        The shard-side half of Phase 3: the coordinator ships the
        endpoint pairs that survived its lower-bound tiers and this node
        answers them against its *own* replicated network through the
        same batched multi-target kernels a serial run uses — so every
        value is bit-identical to what the coordinator would have
        computed itself.  A distance beyond ``cutoff`` is reported as
        ``None`` ("farther than cutoff", the only verdict an eps region
        query needs).

        The per-node engine memoizes across calls, so repeated
        benchmarks rounds hit the warm cache.  ``computations`` in the
        reply is this call's fresh-search delta, letting the coordinator
        keep honest Figure-7 accounting for work done remotely.
        """
        from ..roadnet.shortest_path import INFINITY, ShortestPathEngine

        with self._engine_lock:
            if self._engine is None:
                self._engine = ShortestPathEngine(self.network, directed=False)
            engine = self._engine
            limit = None if cutoff is None else float(cutoff)
            before = engine.computations
            engine.prefetch_grouped(pairs, cutoff=limit)
            values: list[float | None] = []
            for source, target in pairs:
                distance = engine.distance(source, target, cutoff=limit)
                values.append(None if distance == INFINITY else distance)
            computations = engine.computations - before
        self.distance_calls += 1
        self.distance_pairs += len(pairs)
        return {"distances": values, "computations": computations}


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class _Connection:
    """One established, handshaken socket to a shard node."""

    __slots__ = ("sock", "rfile", "last_used")

    def __init__(self, sock: socket.socket, rfile: Any) -> None:
        self.sock = sock
        self.rfile = rfile
        self.last_used = time.monotonic()

    def close(self) -> None:
        try:
            self.rfile.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class ConnectionPool:
    """Idle handshaken connections for one shard node (LIFO reuse).

    Args:
        size: Maximum idle connections kept (``0`` disables pooling —
            every call pays a fresh connect + handshake, the pre-pool
            behavior).
        idle_timeout_s: A connection idle longer than this is closed on
            checkout instead of reused (servers and middleboxes reap
            quiet sockets; reusing one would surface as a spurious
            error).
    """

    def __init__(self, size: int = 1, idle_timeout_s: float = 30.0) -> None:
        if size < 0:
            raise ValueError(f"pool size must be >= 0, got {size}")
        if idle_timeout_s <= 0:
            raise ValueError(
                f"idle_timeout_s must be > 0, got {idle_timeout_s}"
            )
        self.size = size
        self.idle_timeout_s = idle_timeout_s
        self._idle: list[_Connection] = []

    def __len__(self) -> int:
        return len(self._idle)

    def checkout(self) -> tuple[_Connection | None, int]:
        """The most recently used live idle connection, if any.

        Returns ``(connection, expired)`` where ``expired`` counts idle
        connections discarded for outliving the idle timeout.
        """
        now = time.monotonic()
        expired = 0
        while self._idle:
            connection = self._idle.pop()
            if now - connection.last_used > self.idle_timeout_s:
                connection.close()
                expired += 1
                continue
            return connection, expired
        return None, expired

    def checkin(self, connection: _Connection) -> bool:
        """Return a healthy connection; False when the pool is full."""
        if len(self._idle) >= self.size:
            connection.close()
            return False
        connection.last_used = time.monotonic()
        self._idle.append(connection)
        return True

    def close_all(self) -> None:
        """Close every idle connection (idempotent)."""
        while self._idle:
            self._idle.pop().close()


class _PendingCall:
    """An in-flight pipelined RPC: request written, response unread."""

    __slots__ = ("op", "connection", "reused", "fault", "frame", "batched")

    def __init__(
        self,
        op: str,
        connection: _Connection,
        reused: bool,
        fault: str | None,
        frame: bytes,
        batched: bool = False,
    ) -> None:
        self.op = op
        self.connection = connection
        self.reused = reused
        self.fault = fault
        self.frame = frame
        self.batched = batched


class TransportClient:
    """A wire client for one shard node, with persistent connections.

    The client keeps its socket open across calls behind a small
    :class:`ConnectionPool` — the versioned handshake runs once per
    *connection*, not once per call.  When a pooled socket turns out to
    be dead (the server closed it between calls) the client reconnects
    exactly once and resends, counting the event in
    ``transport.reconnects``; a call carrying an injected fault never
    retries transparently, so chaos schedules stay deterministic.

    :meth:`start` / :meth:`finish` split a call into its write and read
    halves for pipelined dispatch; :meth:`call` is the blocking
    composition of the two.

    Args:
        host: Shard node address.
        port: Shard node port.
        timeout_s: Socket timeout for connect and reads — the *real*
            deadline a stalled peer runs into.
        faults: Optional injector; when armed against
            ``fault_operation``, connection faults fire at their
            scheduled 1-based call indexes.
        fault_operation: The injection-point name for this client
            (convention: ``transport.node{id}``).
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`
            receiving the ``transport.*`` and ``pool.connections_*``
            counters.
        proto: Protocol version offered in the handshake (overridable
            only to test mismatch handling).
        pool_size: Idle connections kept per node (``0`` disables
            reuse: one connection per call, the pre-pool behavior).
        idle_timeout_s: Idle expiry for pooled connections.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 5.0,
        faults: FaultInjector | None = None,
        fault_operation: str | None = None,
        metrics: Any = None,
        proto: int = PROTOCOL_VERSION,
        pool_size: int = 1,
        idle_timeout_s: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.faults = faults
        self.fault_operation = fault_operation
        self.metrics = metrics
        self.proto = proto
        self.calls = 0
        self.pool = ConnectionPool(pool_size, idle_timeout_s=idle_timeout_s)
        # True when an established connection has been discarded since
        # the last connect — the next connect is then a *reconnect*.
        self._dirty = False

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def close(self) -> None:
        """Close every pooled connection (the client stays usable)."""
        self.pool.close_all()

    def __enter__(self) -> "TransportClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _inc(self, name: str, description: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, amount=amount, description=description)

    def _fail(self, kind: str, detail: str) -> TransportError:
        self._inc("transport.errors", "Wire calls that failed")
        counter = {
            "refused": "transport.refused",
            "dropped": "transport.dropped",
            "stalled": "transport.stalled",
            "garbled": "transport.garbled",
        }.get(kind)
        if counter is not None:
            self._inc(counter, f"Wire calls that failed as {kind!r}")
        return TransportError(self.address, kind, detail)

    # -- connection management ------------------------------------------
    def _connect(self) -> _Connection:
        """A fresh handshaken connection (counted, reconnect-aware)."""
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
        except OSError as error:
            raise self._fail("refused", str(error)) from error
        rfile = sock.makefile("rb")
        try:
            self._handshake(sock, rfile)
        except BaseException:
            try:
                rfile.close()
                sock.close()
            except OSError:
                pass
            raise
        self._inc(
            "pool.connections_opened",
            "Shard connections established (one handshake each)",
        )
        if self._dirty:
            self._dirty = False
            self._inc(
                "transport.reconnects",
                "Connections re-established after a pooled one was lost",
            )
        return _Connection(sock, rfile)

    def _acquire(self) -> tuple[_Connection, bool]:
        """A connection to run one call on: pooled when possible."""
        connection, expired = self.pool.checkout()
        if expired:
            self._inc(
                "pool.idle_closed",
                "Pooled connections closed for outliving the idle timeout",
                amount=expired,
            )
            self._dirty = True
        if connection is not None:
            self._inc(
                "pool.connections_reused",
                "Wire calls served over an already-open connection",
            )
            return connection, True
        return self._connect(), False

    def _discard(self, connection: _Connection) -> None:
        """Drop a connection that failed or that the server closed."""
        connection.close()
        self._dirty = True

    def _release(self, connection: _Connection) -> None:
        """Give a healthy connection back to the pool."""
        if not self.pool.checkin(connection):
            # Pool full (or pooling disabled): closing a *healthy*
            # surplus connection is not a loss, so no dirty flag.
            pass

    # -- calls ----------------------------------------------------------
    def call(self, op: str, payload: dict[str, Any] | None = None) -> Any:
        """One RPC: request then response (handshake only on connect).

        Returns the response's ``result`` value.

        Raises:
            HandshakeFailed: Version mismatch or a rejected hello.
            TransportError: Any socket-level or protocol failure, with
                ``kind`` naming the failure mode.
        """
        return self.finish(self.start(op, payload))

    def call_batch(
        self, requests: Sequence[tuple[str, dict[str, Any] | None]]
    ) -> list[Any]:
        """Several RPCs in one ``batch`` frame (one call index, one RTT).

        Returns the ``result`` values in request order.  Raises on the
        first sub-request the server rejected.
        """
        return self.finish_batch(self.start_batch(requests))

    def start(
        self, op: str, payload: dict[str, Any] | None = None
    ) -> _PendingCall:
        """Write one request and return without reading the response.

        The pipelining half-call: a coordinator starts a call on every
        node, then :meth:`finish` es them in order — requests overlap
        with remote compute instead of serializing call-and-wait.
        Connection faults are scheduled here (the 1-based call index
        advances per started call, exactly as it did per blocking call).
        """
        self.calls += 1
        fault = None
        plan = None
        if self.faults is not None and self.fault_operation is not None:
            fault, plan = self.faults.connection_fault(self.fault_operation)
        if fault is not None:
            self.faults.record_injected(self.fault_operation)
        self._inc("transport.requests", "Wire calls issued")

        if fault == "refuse":
            # Never reaches the peer — indistinguishable from a dead
            # process as far as the caller can tell.  The pooled
            # connection (if any) is untouched.
            raise self._fail(
                "refused", f"connection refused (injected, call #{self.calls})"
            )
        connection, reused = self._acquire()
        request: dict[str, Any] = {"op": op}
        if payload is not None:
            request["payload"] = payload
        if fault == "stall":
            request["_stall_s"] = plan.stall_s
        frame = _encode_message(request)
        wire = frame
        if fault == "garble":
            # Flip one payload bit: the header stays parseable, the CRC
            # check fails server-side.
            damaged = bytearray(frame)
            damaged[FRAME_HEADER.size] ^= 0x01
            wire = bytes(damaged)
        pending = _PendingCall(op, connection, reused, fault, frame)
        try:
            if fault == "drop":
                # Half a frame, then a close: the server reads a torn
                # frame, this client reads EOF where the response
                # should be.
                half = max(1, len(wire) // 2)
                connection.sock.sendall(wire[:half])
                self._inc(
                    "transport.bytes_sent",
                    "Payload bytes written to the wire",
                    amount=half,
                )
                connection.sock.shutdown(socket.SHUT_WR)
            else:
                connection.sock.sendall(wire)
                self._inc(
                    "transport.bytes_sent",
                    "Payload bytes written to the wire",
                    amount=len(wire),
                )
        except OSError as error:
            self._discard(connection)
            if reused and fault is None:
                # The pooled socket died between calls; one transparent
                # reconnect-and-resend (the request never reached the
                # peer, so the retry is safe and exact).
                connection = self._connect()
                pending.connection = connection
                pending.reused = False
                try:
                    connection.sock.sendall(frame)
                    self._inc(
                        "transport.bytes_sent",
                        "Payload bytes written to the wire",
                        amount=len(frame),
                    )
                except OSError as retry_error:
                    self._discard(connection)
                    raise self._fail(
                        "dropped", str(retry_error)
                    ) from retry_error
            else:
                raise self._fail("dropped", str(error)) from error
        return pending

    def start_batch(
        self, requests: Sequence[tuple[str, dict[str, Any] | None]]
    ) -> _PendingCall:
        """Write one ``batch`` frame carrying several requests."""
        wrapped = []
        for op, payload in requests:
            request: dict[str, Any] = {"op": op}
            if payload is not None:
                request["payload"] = payload
            wrapped.append(request)
        self._inc(
            "transport.batched_calls",
            "Batch frames carrying multiple requests",
        )
        pending = self.start("batch", {"requests": wrapped})
        pending.batched = True
        return pending

    def finish(self, pending: _PendingCall) -> Any:
        """Read one started call's response; recycle the connection."""
        connection = pending.connection
        try:
            payload = read_frame(connection.rfile)
        except socket.timeout as error:
            self._discard(connection)
            raise self._fail(
                "stalled", f"no response within {self.timeout_s}s"
            ) from error
        except FrameError as error:
            self._discard(connection)
            raise self._fail("garbled", str(error)) from error
        except (TornFrame, OSError) as error:
            self._discard(connection)
            if pending.reused and pending.fault is None:
                return self._finish_retry(pending)
            raise self._fail("dropped", str(error)) from error
        if payload is None:
            self._discard(connection)
            if pending.reused and pending.fault is None:
                return self._finish_retry(pending)
            raise self._fail("dropped", "connection closed before the response")
        self._inc(
            "transport.bytes_received", "Payload bytes read from the wire",
            amount=len(payload),
        )
        message = json.loads(payload.decode("utf-8"))
        if message.get("ok"):
            self._release(connection)
            return message.get("result")
        kind = str(message.get("kind", "protocol"))
        detail = str(message.get("error", "request rejected"))
        if kind not in ("refused", "dropped", "stalled", "garbled"):
            kind = "protocol"
        if kind == "garbled":
            # The server closes the connection after rejecting a frame;
            # reusing it would read EOF on the next call.
            self._discard(connection)
        else:
            self._release(connection)
        raise self._fail(kind, detail)

    def finish_batch(self, pending: _PendingCall) -> list[Any]:
        """Unwrap a ``batch`` response into per-request results."""
        result = self.finish(pending)
        results: list[Any] = []
        for index, message in enumerate(result.get("responses", [])):
            if not message.get("ok"):
                kind = str(message.get("kind", "protocol"))
                if kind not in ("refused", "dropped", "stalled", "garbled"):
                    kind = "protocol"
                raise self._fail(
                    kind,
                    f"batch item {index}: "
                    f"{message.get('error', 'request rejected')}",
                )
            results.append(message.get("result"))
        return results

    def _finish_retry(self, pending: _PendingCall) -> Any:
        """Resend a clean call whose reused connection turned out dead."""
        connection = self._connect()
        try:
            connection.sock.sendall(pending.frame)
            self._inc(
                "transport.bytes_sent", "Payload bytes written to the wire",
                amount=len(pending.frame),
            )
        except OSError as error:
            self._discard(connection)
            raise self._fail("dropped", str(error)) from error
        pending.connection = connection
        pending.reused = False
        return self.finish(pending)

    # ------------------------------------------------------------------
    def _handshake(self, sock: socket.socket, rfile: Any) -> None:
        hello = _encode_message({"op": "hello", "proto": self.proto})
        sock.sendall(hello)
        self._inc(
            "transport.bytes_sent", "Payload bytes written to the wire",
            amount=len(hello),
        )
        try:
            payload = read_frame(rfile)
        except socket.timeout as error:
            raise self._fail(
                "stalled", f"no handshake within {self.timeout_s}s"
            ) from error
        except (TornFrame, OSError) as error:
            raise self._fail("dropped", f"handshake: {error}") from error
        except FrameError as error:
            raise self._fail("garbled", f"handshake: {error}") from error
        if payload is None:
            raise self._fail("dropped", "connection closed during handshake")
        self._inc(
            "transport.bytes_received", "Payload bytes read from the wire",
            amount=len(payload),
        )
        message = json.loads(payload.decode("utf-8"))
        if not message.get("ok"):
            self._inc("transport.errors", "Wire calls that failed")
            raise HandshakeFailed(
                self.address, str(message.get("error", "rejected"))
            )
        self._inc("transport.handshakes", "Versioned handshakes completed")


# ----------------------------------------------------------------------
# Remote data node (the coordinator-facing adapter)
# ----------------------------------------------------------------------
class RemoteDataNode:
    """A :class:`~repro.distributed.nodes.DataNode` twin over the wire.

    Duck-types the coordinator's node contract (``node_id`` /
    ``healthy`` / ``trajectories`` / ``ingest`` / ``kill`` / ``revive``
    / ``preprocess_batch``) while the actual Phase 1 runs in a shard
    process reached through ``client``.  ``kill`` marks this *stub* dead
    (the coordinator's view); the process itself lives and dies on its
    own.
    """

    def __init__(self, node_id: int, client: TransportClient) -> None:
        self.node_id = node_id
        self.client = client
        self.healthy = True
        self.trajectories: list[Trajectory] = []

    def ingest(self, trajectories: Iterable[Trajectory]) -> None:
        self.trajectories.extend(trajectories)

    def kill(self) -> None:
        self.healthy = False

    def revive(self) -> None:
        self.healthy = True

    def ping(self) -> bool:
        """Whether the shard process answers (never raises)."""
        try:
            self.client.call("ping")
            return True
        except Exception:
            return False

    def preprocess_batch(
        self,
        trajectories: Sequence[Trajectory],
        keep_interior_points: bool = False,
    ) -> list[BaseCluster]:
        """Phase 1 over ``trajectories``, executed in the shard process."""
        return self.finish_preprocess(
            self.start_preprocess(trajectories, keep_interior_points)
        )

    def start_preprocess(
        self,
        trajectories: Sequence[Trajectory],
        keep_interior_points: bool = False,
    ) -> _PendingCall:
        """Write a ``preprocess`` request without waiting for the reply.

        The pipelining half of :meth:`preprocess_batch`: the coordinator
        starts Phase 1 on every shard, then collects with
        :meth:`finish_preprocess` — shards compute concurrently instead
        of one-at-a-time behind a blocking call.
        """
        if not self.healthy:
            raise NodeDown(self.node_id)
        return self.client.start(
            "preprocess",
            {
                "trajectories_packed": trajectories_to_packed(trajectories),
                "keep_interior_points": bool(keep_interior_points),
            },
        )

    def finish_preprocess(self, pending: _PendingCall) -> list[BaseCluster]:
        """Collect a started ``preprocess`` call's base clusters."""
        result = self.client.finish(pending)
        return clusters_from_packed(result["clusters_packed"])

    #: Pairs per ``distances`` sub-request inside one batch frame.  Small
    #: enough that a single reply frame stays in the low megabytes, large
    #: enough that the per-message overhead is noise.
    DISTANCE_CHUNK = 2048

    def distances(
        self,
        pairs: Sequence[tuple[str, str]],
        cutoff: float | None = None,
    ) -> tuple[list[float | None], int]:
        """Eps-bounded distances computed against the shard's engine."""
        return self.finish_distances(self.start_distances(pairs, cutoff))

    def start_distances(
        self,
        pairs: Sequence[tuple[str, str]],
        cutoff: float | None = None,
    ) -> _PendingCall:
        """Write a ``distances`` request (chunked through ``batch``).

        A slice small enough to fit one chunk goes out as a plain
        ``distances`` call; larger slices ride one ``batch`` frame of
        chunk-sized sub-requests — still a single wire call (one fault
        index, one round trip).
        """
        if not self.healthy:
            raise NodeDown(self.node_id)
        chunks = [
            [[s, t] for s, t in pairs[i:i + self.DISTANCE_CHUNK]]
            for i in range(0, len(pairs), self.DISTANCE_CHUNK)
        ] or [[]]
        if len(chunks) == 1:
            return self.client.start(
                "distances", {"pairs": chunks[0], "cutoff": cutoff}
            )
        return self.client.start_batch([
            ("distances", {"pairs": chunk, "cutoff": cutoff})
            for chunk in chunks
        ])

    def finish_distances(
        self, pending: _PendingCall
    ) -> tuple[list[float | None], int]:
        """Collect ``(distances, computations)`` from a started call.

        Unreachable pairs come back as ``None`` (infinity does not
        survive JSON); ``computations`` is the shard-side search count,
        folded into the coordinator's Phase 3 stats.
        """
        if pending.batched:
            results = self.client.finish_batch(pending)
        else:
            results = [self.client.finish(pending)]
        values: list[float | None] = []
        computations = 0
        for result in results:
            values.extend(result["distances"])
            computations += int(result.get("computations", 0))
        return values, computations


# ----------------------------------------------------------------------
# Local shard processes
# ----------------------------------------------------------------------
@dataclass
class ShardProcess:
    """One spawned ``repro shard-node`` worker."""

    node_id: int
    process: subprocess.Popen
    host: str
    port: int
    log_path: Path | None = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def alive(self) -> bool:
        return self.process.poll() is None


def spawn_local_shards(
    network_path: str | Path,
    count: int,
    work_dir: str | Path | None = None,
    log_dir: str | Path | None = None,
    host: str = "127.0.0.1",
    python: str = sys.executable,
    startup_timeout_s: float = 30.0,
) -> list[ShardProcess]:
    """Start ``count`` shard-node worker processes on ephemeral ports.

    Each worker is ``python -m repro shard-node`` over the saved network
    at ``network_path``; its bound port is read back through a
    ``--port-file`` rendezvous.  On any startup failure every spawned
    process is killed before raising — no orphans.

    Args:
        network_path: A saved road-network JSON (``repro.roadnet.io``).
        count: Worker count.
        work_dir: Directory for port files (a temp dir when omitted).
        log_dir: When given, each worker's stdout+stderr goes to
            ``shard-{i}.log`` there (the CI failure artifact).
        host: Bind address for the workers.
        python: Interpreter to launch (defaults to this one).
        startup_timeout_s: Budget for all workers to report their port.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    base = Path(work_dir) if work_dir is not None else Path(
        tempfile.mkdtemp(prefix="repro-shards-")
    )
    base.mkdir(parents=True, exist_ok=True)
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parent.parent.parent)
    env["PYTHONPATH"] = (
        src_root + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src_root
    )

    shards: list[ShardProcess] = []
    handles: list[Any] = []
    try:
        for node_id in range(count):
            port_file = base / f"shard-{node_id}.port"
            port_file.unlink(missing_ok=True)
            log_path = None
            stdout: Any = subprocess.DEVNULL
            if log_dir is not None:
                log_path = Path(log_dir) / f"shard-{node_id}.log"
                log_path.parent.mkdir(parents=True, exist_ok=True)
                stdout = open(log_path, "wb")
                handles.append(stdout)
            process = subprocess.Popen(
                [
                    python, "-m", "repro", "shard-node",
                    "--network", str(network_path),
                    "--node-id", str(node_id),
                    "--host", host,
                    "--port", "0",
                    "--port-file", str(port_file),
                ],
                stdout=stdout,
                stderr=subprocess.STDOUT if log_dir is not None else subprocess.DEVNULL,
                env=env,
            )
            shards.append(ShardProcess(node_id, process, host, 0, log_path))

        deadline = time.monotonic() + startup_timeout_s
        for node_id, shard in enumerate(shards):
            port_file = base / f"shard-{node_id}.port"
            while True:
                text = ""
                if port_file.exists():
                    text = port_file.read_text(encoding="utf-8").strip()
                if text:
                    shard.port = int(text)
                    break
                if shard.process.poll() is not None:
                    raise TransportError(
                        f"{host}:?", "refused",
                        f"shard {node_id} exited with "
                        f"{shard.process.returncode} before binding",
                    )
                if time.monotonic() > deadline:
                    log_hint = (
                        f"; its log is {shard.log_path}"
                        if shard.log_path is not None
                        else ""
                    )
                    raise TransportError(
                        f"{host}:?", "stalled",
                        f"shard {node_id} (pid {shard.process.pid}, still "
                        f"running) never wrote its port file {port_file} "
                        f"within startup_timeout_s={startup_timeout_s}s"
                        f"{log_hint}",
                    )
                time.sleep(0.05)
        # Write pid files after the rendezvous so a supervisor (or a
        # chaos test) can deliver real signals to a specific shard.
        for shard in shards:
            (base / f"shard-{shard.node_id}.pid").write_text(
                f"{shard.process.pid}\n", encoding="utf-8"
            )
    except BaseException:
        stop_shards(shards)
        for handle in handles:
            handle.close()
        raise
    for handle in handles:
        handle.close()
    return shards


def stop_shards(shards: Iterable[ShardProcess], grace_s: float = 5.0) -> None:
    """Terminate shard processes: polite shutdown op, then SIGKILL."""
    shards = list(shards)
    for shard in shards:
        if not shard.alive:
            continue
        try:
            TransportClient(shard.host, shard.port, timeout_s=1.0).call("shutdown")
        except Exception:
            pass
    deadline = time.monotonic() + grace_s
    for shard in shards:
        if not shard.alive:
            continue
        shard.process.terminate()
    for shard in shards:
        try:
            shard.process.wait(timeout=max(0.1, deadline - time.monotonic()))
        except subprocess.TimeoutExpired:
            shard.process.kill()
            shard.process.wait()
