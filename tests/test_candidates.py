"""Unit tests for map-matching candidate search."""

from __future__ import annotations

import pytest

from repro.mapmatch.candidates import CandidateFinder
from repro.roadnet.geometry import Point


class TestCandidates:
    def test_on_segment_candidate_first(self, grid3x3):
        finder = CandidateFinder(grid3x3)
        candidates = finder.candidates(Point(50.0, 2.0))
        assert candidates
        best = candidates[0]
        assert best.distance == pytest.approx(2.0)
        a, b = grid3x3.segment_endpoints(best.sid)
        assert {a, b} == {Point(0, 0), Point(100, 0)}

    def test_sorted_by_distance(self, grid3x3):
        finder = CandidateFinder(grid3x3)
        candidates = finder.candidates(Point(50.0, 50.0))
        distances = [c.distance for c in candidates]
        assert distances == sorted(distances)

    def test_limit_respected(self, grid3x3):
        finder = CandidateFinder(grid3x3, search_radius=500.0)
        assert len(finder.candidates(Point(100.0, 100.0), limit=3)) <= 3

    def test_expands_radius_until_hit(self, grid3x3):
        finder = CandidateFinder(grid3x3, search_radius=1.0, max_radius=1000.0)
        # 150 m off the grid: the initial 1 m radius finds nothing, the
        # doubling search eventually does.
        candidates = finder.candidates(Point(-150.0, 50.0))
        assert candidates

    def test_gives_up_beyond_max_radius(self, grid3x3):
        finder = CandidateFinder(grid3x3, search_radius=1.0, max_radius=8.0)
        assert finder.candidates(Point(-500.0, -500.0)) == []

    def test_snapped_point_on_chord(self, grid3x3):
        finder = CandidateFinder(grid3x3)
        for candidate in finder.candidates(Point(42.0, 13.0)):
            a, b = grid3x3.segment_endpoints(candidate.sid)
            from repro.roadnet.geometry import point_segment_distance

            assert point_segment_distance(candidate.snapped, a, b) < 1e-9

    def test_fraction_in_unit_range(self, grid3x3):
        finder = CandidateFinder(grid3x3)
        for candidate in finder.candidates(Point(77.0, 33.0)):
            assert 0.0 <= candidate.fraction <= 1.0
