"""The Figure 1(b) worked example: the paper's own stated quantities.

The paper gives exact densities, netflows, the f-neighborhood of S1 at n2
and its maxFlow-neighbor for a five-trajectory example over a star
junction.  These tests assert our Phase 1 operators reproduce every one of
those numbers.
"""

from __future__ import annotations

from repro.core.base_cluster import densecore, form_base_clusters, netflow
from repro.core.neighborhood import BaseClusterPool, maxflow_neighbor


def _clusters_by_sid(paper_example):
    clusters = form_base_clusters(paper_example.network, paper_example.trajectories)
    return {cluster.sid: cluster for cluster in clusters}, clusters


def test_densities_match_paper(paper_example):
    by_sid, _ = _clusters_by_sid(paper_example)
    for sid, expected in paper_example.expected_densities.items():
        assert by_sid[sid].density == expected, f"d(S for sid {sid})"


def test_s1_has_four_fragments_from_three_trajectories(paper_example):
    by_sid, _ = _clusters_by_sid(paper_example)
    s1 = by_sid[paper_example.s1]
    assert s1.density == 4
    assert s1.trajectory_cardinality == 3
    assert s1.participants == frozenset({1, 2, 3})


def test_densecore_is_s1(paper_example):
    _, clusters = _clusters_by_sid(paper_example)
    assert densecore(clusters).sid == paper_example.s1
    # Phase 1 output is density-sorted, head = dense-core.
    assert clusters[0].sid == paper_example.s1


def test_netflows_match_paper(paper_example):
    by_sid, _ = _clusters_by_sid(paper_example)
    for (sid_a, sid_b), expected in paper_example.expected_netflows.items():
        assert netflow(by_sid[sid_a], by_sid[sid_b]) == expected, (sid_a, sid_b)


def test_netflow_is_symmetric(paper_example):
    by_sid, _ = _clusters_by_sid(paper_example)
    for (sid_a, sid_b) in paper_example.expected_netflows:
        assert netflow(by_sid[sid_a], by_sid[sid_b]) == netflow(
            by_sid[sid_b], by_sid[sid_a]
        )


def test_f_neighborhood_of_s1_at_center(paper_example):
    by_sid, clusters = _clusters_by_sid(paper_example)
    pool = BaseClusterPool(paper_example.network, clusters)
    neighborhood = pool.f_neighbors_at(by_sid[paper_example.s1], paper_example.center)
    assert {s.sid for s in neighborhood} == {
        paper_example.s2, paper_example.s3, paper_example.s4
    }


def test_maxflow_neighbor_of_s1_is_s2(paper_example):
    by_sid, clusters = _clusters_by_sid(paper_example)
    pool = BaseClusterPool(paper_example.network, clusters)
    neighborhood = pool.f_neighbors_at(by_sid[paper_example.s1], paper_example.center)
    best, flow = maxflow_neighbor(by_sid[paper_example.s1], neighborhood)
    assert best is not None
    assert best.sid == paper_example.s2
    assert flow == 2


def test_trajectory_cardinalities(paper_example):
    by_sid, _ = _clusters_by_sid(paper_example)
    assert by_sid[paper_example.s2].participants == frozenset({1, 3, 4})
    assert by_sid[paper_example.s3].participants == frozenset({2})
    assert by_sid[paper_example.s4].participants == frozenset({3, 5})
