"""Unit tests for the GPS degradation model."""

from __future__ import annotations

import math
import random

import pytest

from repro.mobisim.noise import degrade_dataset, degrade_trajectory
from repro.core.model import TrajectoryDataset

from conftest import trajectory_through


class TestDegradeTrajectory:
    def test_preserves_count_and_times(self, line3):
        tr = trajectory_through(line3, 4, [0, 1, 2])
        raw = degrade_trajectory(tr, sigma=5.0, rng=random.Random(1))
        assert raw.trid == 4
        assert len(raw) == len(tr)
        assert [f.t for f in raw.fixes] == [l.t for l in tr.locations]

    def test_zero_sigma_identity(self, line3):
        tr = trajectory_through(line3, 0, [0, 1])
        raw = degrade_trajectory(tr, sigma=0.0, rng=random.Random(2))
        for fix, location in zip(raw.fixes, tr.locations):
            assert fix.x == location.x
            assert fix.y == location.y

    def test_noise_magnitude_reasonable(self, line3):
        sigma = 5.0
        tr = trajectory_through(line3, 0, [0, 1, 2])
        rng = random.Random(3)
        offsets = []
        for _ in range(200):
            raw = degrade_trajectory(tr, sigma, rng)
            offsets.extend(
                math.hypot(f.x - l.x, f.y - l.y)
                for f, l in zip(raw.fixes, tr.locations)
            )
        mean_offset = sum(offsets) / len(offsets)
        # Rayleigh mean = sigma * sqrt(pi/2) ~ 6.27 for sigma = 5.
        assert mean_offset == pytest.approx(sigma * math.sqrt(math.pi / 2), rel=0.15)


class TestDegradeDataset:
    def test_one_trace_per_trajectory(self, line3):
        trs = tuple(trajectory_through(line3, i, [0, 1]) for i in range(4))
        dataset = TrajectoryDataset("d", trs)
        raws = degrade_dataset(dataset, sigma=3.0, seed=7)
        assert [r.trid for r in raws] == [0, 1, 2, 3]

    def test_deterministic_by_seed(self, line3):
        trs = tuple(trajectory_through(line3, i, [0, 1]) for i in range(2))
        dataset = TrajectoryDataset("d", trs)
        a = degrade_dataset(dataset, seed=9)
        b = degrade_dataset(dataset, seed=9)
        assert a == b
        c = degrade_dataset(dataset, seed=10)
        assert a != c
