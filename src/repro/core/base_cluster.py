"""Phase 1, step 2: grouping t-fragments into base clusters.

Implements Definitions 2-4 of the paper: a *base cluster* collects the
t-fragments lying on one road segment (its *representative*), its *density*
is its fragment count, its *trajectory cardinality* the number of distinct
participating trajectories.  Phase 1's output is the density-descending
list of base clusters, whose head is the *dense-core*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..roadnet.network import RoadNetwork
from .fragmentation import fragment_all
from .model import TFragment, Trajectory


@dataclass
class BaseCluster:
    """All t-fragments associated with one road segment (Definition 2).

    Attributes:
        sid: The representative road segment ``e_S``.
        fragments: The member t-fragments.
    """

    sid: int
    fragments: list[TFragment] = field(default_factory=list)
    _participants: frozenset[int] | None = field(
        default=None, repr=False, compare=False
    )

    def add(self, fragment: TFragment) -> None:
        """Add a fragment (must lie on this cluster's segment)."""
        if fragment.sid != self.sid:
            raise ValueError(
                f"fragment on segment {fragment.sid} cannot join base cluster "
                f"of segment {self.sid}"
            )
        self.fragments.append(fragment)
        self._participants = None

    @property
    def density(self) -> int:
        """``d(S)``: number of member t-fragments (Definition 4)."""
        return len(self.fragments)

    @property
    def participants(self) -> frozenset[int]:
        """``PTr(S)``: ids of the participating trajectories (Definition 3)."""
        if self._participants is None:
            self._participants = frozenset(f.trid for f in self.fragments)
        return self._participants

    @property
    def trajectory_cardinality(self) -> int:
        """``|PTr(S)|`` (Definition 3)."""
        return len(self.participants)

    def __len__(self) -> int:
        return len(self.fragments)


def netflow(a: BaseCluster, b: BaseCluster) -> int:
    """``f(S_i, S_j)``: trajectories participating in both (Definition 5)."""
    smaller, larger = (
        (a.participants, b.participants)
        if len(a.participants) <= len(b.participants)
        else (b.participants, a.participants)
    )
    return sum(1 for trid in smaller if trid in larger)


def group_fragments(fragments: Iterable[TFragment]) -> list[BaseCluster]:
    """Group fragments by road segment into base clusters.

    Returns the clusters sorted by descending density, ties broken by
    ascending sid so Phase 2's merge order is deterministic (Section
    III-B1).  The first element is the dense-core.
    """
    by_sid: dict[int, BaseCluster] = {}
    for fragment in fragments:
        cluster = by_sid.get(fragment.sid)
        if cluster is None:
            cluster = BaseCluster(fragment.sid)
            by_sid[fragment.sid] = cluster
        cluster.add(fragment)
    return sorted(by_sid.values(), key=lambda s: (-s.density, s.sid))


def form_base_clusters(
    network: RoadNetwork,
    trajectories: Sequence[Trajectory],
    keep_interior_points: bool = False,
    metrics=None,
    workers: int | None = 1,
) -> list[BaseCluster]:
    """Phase 1 end-to-end: fragment trajectories and group into base clusters.

    Args:
        network: The road network.
        trajectories: The trajectories to fragment.
        keep_interior_points: Keep non-junction samples inside fragments.
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when given, the ``neat.phase1.*`` counters are published.
        workers: Fragment trajectory chunks across a process pool (see
            :func:`~repro.core.fragmentation.fragment_all`); the grouped
            output is identical to a serial run.

    Returns the density-descending base cluster list (head = dense-core).
    """
    fragments = fragment_all(
        network, trajectories, keep_interior_points, workers=workers
    )
    clusters = group_fragments(fragments)
    if metrics is not None:
        metrics.counter(
            "neat.phase1.trajectories", "Trajectories fragmented in Phase 1"
        ).inc(len(trajectories))
        metrics.counter(
            "neat.phase1.t_fragments", "T-fragments extracted in Phase 1"
        ).inc(len(fragments))
        metrics.counter(
            "neat.phase1.base_clusters", "Base clusters formed in Phase 1"
        ).inc(len(clusters))
    return clusters


def densecore(clusters: Sequence[BaseCluster]) -> BaseCluster:
    """The highest-density cluster of a set (Definition 4).

    For an unsorted sequence this scans; for Phase 1 output it is the head.
    """
    if not clusters:
        raise ValueError("densecore of empty base cluster set")
    return min(clusters, key=lambda s: (-s.density, s.sid))
