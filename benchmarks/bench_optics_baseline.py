"""Related-work baseline: Trajectory-OPTICS (Nanni & Pedreschi [24]).

Section V of the paper positions NEAT against whole-trajectory density
clustering.  This bench runs Trajectory-OPTICS next to flow-NEAT on the
same workload and reports the structural difference: whole-trajectory
clusters can only say "these trips are globally similar" — partial
co-movement on shared corridors is invisible — while costing all-pairs
synchronized-distance computations.
"""

from __future__ import annotations

from conftest import TRACLUS_COUNTS

from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT
from repro.experiments.figures import DEFAULT_EPS
from repro.experiments.harness import format_seconds, format_table, timed
from repro.experiments.workloads import build_suite
from repro.optics import TrajectoryOptics


def bench_optics_vs_neat(benchmark, emit):
    """Trajectory-OPTICS vs flow-NEAT across ATL sizes."""
    network, datasets = build_suite("ATL", TRACLUS_COUNTS)
    rows = []
    for dataset in datasets:
        trajectories = list(dataset)
        neat = NEAT(network, NEATConfig(eps=DEFAULT_EPS["ATL"]))
        neat_result, neat_seconds = timed(lambda: neat.run_flow(trajectories))
        optics = TrajectoryOptics(eps=150.0, min_pts=3)
        optics_result, optics_seconds = timed(lambda: optics.run(trajectories))
        rows.append(
            (
                dataset.name,
                dataset.total_points,
                neat_result.flow_count,
                optics_result.cluster_count,
                optics_result.noise_count,
                neat_seconds,
                optics_seconds,
                optics_result.distance_evaluations,
            )
        )

    result = benchmark.pedantic(
        lambda: TrajectoryOptics(eps=150.0, min_pts=3).run(list(datasets[0])),
        rounds=1,
        iterations=1,
    )
    assert result.labels

    emit(
        "optics_baseline",
        "Trajectory-OPTICS [24] vs flow-NEAT (whole trips vs t-fragments)\n"
        + format_table(
            ("dataset", "points", "NEAT flows", "OPTICS clusters",
             "OPTICS noise", "NEAT time", "OPTICS time", "distance evals"),
            [
                row[:5] + (format_seconds(row[5]), format_seconds(row[6]), row[7])
                for row in rows
            ],
        )
        + "\n(OPTICS clusters whole trips under a synchronized Euclidean "
        "distance: trips that share a corridor but not a departure time or "
        "endpoints never co-cluster — note the noise column — and cost "
        "grows with the all-pairs distance evaluations.)",
    )
    # The paper's shape: NEAT is faster on every size and the gap widens.
    for row in rows:
        assert row[5] < row[6], f"NEAT slower than OPTICS on {row[0]}"
