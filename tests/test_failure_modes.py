"""Failure injection: malformed inputs and hostile topologies.

Verifies the library fails loudly (typed exceptions) on broken input and
degrades gracefully (no crash, sensible output) on hostile-but-legal
input: disconnected networks, unknown segment references, degenerate
trajectories, off-network GPS.
"""

from __future__ import annotations


import pytest

from repro.core.config import NEATConfig
from repro.core.model import Location, Trajectory
from repro.core.pipeline import NEAT
from repro.errors import NoPathError, UnknownSegmentError
from repro.roadnet.geometry import Point
from repro.roadnet.network import RoadNetwork

from conftest import trajectory_through


@pytest.fixture
def two_islands():
    """Two disconnected road components."""
    net = RoadNetwork(name="islands")
    for x, y in [(0, 0), (100, 0), (200, 0)]:
        net.add_junction(Point(x, y))
    for x, y in [(0, 9000), (100, 9000), (200, 9000)]:
        net.add_junction(Point(x, y))
    net.add_segment(0, 1)
    net.add_segment(1, 2)
    net.add_segment(3, 4)
    net.add_segment(4, 5)
    return net


class TestUnknownSegments:
    def test_fragmentation_rejects_unknown_sid(self, line3):
        ghost = Trajectory(
            0, (Location(77, 0.0, 0.0, 0.0), Location(77, 1.0, 0.0, 1.0))
        )
        with pytest.raises(UnknownSegmentError):
            NEAT(line3).run_base([ghost])

    def test_mixed_known_unknown_rejected(self, line3):
        mixed = Trajectory(
            0, (Location(0, 0.0, 0.0, 0.0), Location(77, 1.0, 0.0, 1.0))
        )
        with pytest.raises(UnknownSegmentError):
            NEAT(line3).run_base([mixed])


class TestDisconnectedNetworks:
    def test_cross_island_trajectory_rejected(self, two_islands):
        # Samples hopping between disconnected components: the junction
        # path between their segments does not exist.
        impossible = Trajectory(
            0, (Location(0, 50.0, 0.0, 0.0), Location(2, 50.0, 9000.0, 10.0))
        )
        with pytest.raises(NoPathError):
            NEAT(two_islands).run_base([impossible])

    def test_per_island_clustering_works(self, two_islands):
        trs = [
            trajectory_through(two_islands, 0, [0, 1]),
            trajectory_through(two_islands, 1, [2, 3]),
        ]
        result = NEAT(two_islands, NEATConfig(min_card=0, eps=500.0)).run_opt(trs)
        # Flows on different islands can never merge: network distance is
        # infinite, so two clusters remain even with ELB disabled.
        assert result.cluster_count == 2

    def test_elb_with_infinite_distances(self, two_islands):
        trs = [
            trajectory_through(two_islands, 0, [0, 1]),
            trajectory_through(two_islands, 1, [2, 3]),
        ]
        with_elb = NEAT(
            two_islands, NEATConfig(min_card=0, eps=500.0, use_elb=True)
        ).run_opt(trs)
        without_elb = NEAT(
            two_islands, NEATConfig(min_card=0, eps=500.0, use_elb=False)
        ).run_opt(trs)
        assert with_elb.cluster_count == without_elb.cluster_count == 2


class TestDegenerateTrajectories:
    def test_zero_duration_trajectory(self, line3):
        frozen = Trajectory(
            0, (Location(0, 10.0, 0.0, 5.0), Location(0, 10.0, 0.0, 5.0))
        )
        result = NEAT(line3, NEATConfig(min_card=0)).run_flow([frozen])
        assert result.flows  # one single-segment flow, no crash

    def test_stationary_object_many_samples(self, line3):
        parked = Trajectory(
            0,
            tuple(Location(1, 150.0, 0.0, float(t)) for t in range(20)),
        )
        result = NEAT(line3, NEATConfig(min_card=0)).run_flow([parked])
        assert result.flows[0].sids == (1,)

    def test_backtracking_object(self, line3):
        # Drives out and straight back: both directions on segments 0 and
        # 1 give two fragments each; the turnaround on segment 2 has no
        # sid change, so it stays one (longer) fragment.
        there_and_back = trajectory_through(line3, 0, [0, 1, 2, 2, 1, 0])
        result = NEAT(line3, NEATConfig(min_card=0)).run_base([there_and_back])
        by_sid = {c.sid: c.density for c in result.base_clusters}
        assert by_sid == {0: 2, 1: 2, 2: 1}


class TestMapMatchFailures:
    def test_trace_far_from_network(self, grid3x3):
        from repro.errors import MapMatchError
        from repro.mapmatch import SlammMatcher

        matcher = SlammMatcher(grid3x3)
        with pytest.raises(MapMatchError):
            matcher.match_fixes(0, [(1e6, 1e6, 0.0), (1e6 + 10, 1e6, 5.0)])

    def test_hmm_no_feasible_path(self, two_islands):
        # Candidate layers exist on both islands but no transition can
        # connect them within the route-factor bound.
        from repro.errors import MapMatchError
        from repro.mapmatch import HmmConfig, HmmMatcher

        matcher = HmmMatcher(two_islands, HmmConfig(max_route_factor=2.0))
        with pytest.raises(MapMatchError):
            matcher.match_fixes(
                0, [(50.0, 0.0, 0.0), (50.0, 9000.0, 5.0)]
            )


class TestExtremeConfigurations:
    def test_huge_min_card_filters_everything(self, line3):
        trs = [trajectory_through(line3, i, [0, 1]) for i in range(3)]
        result = NEAT(line3, NEATConfig(min_card=1000, eps=100.0)).run_opt(trs)
        assert result.flows == []
        assert result.clusters == []
        assert result.noise_flows  # nothing lost, everything is noise

    def test_zero_eps_never_merges(self, line3):
        trs = [trajectory_through(line3, i, [0, 1]) for i in range(3)]
        result = NEAT(line3, NEATConfig(min_card=0, eps=0.0)).run_opt(trs)
        # Each flow becomes its own cluster (identical flows still merge
        # at distance 0, so count equals distinct flow locations).
        assert result.cluster_count == len(result.flows)

    def test_infinite_eps_merges_everything(self, line3):
        trs = [trajectory_through(line3, 0, [0]), trajectory_through(line3, 1, [2])]
        result = NEAT(line3, NEATConfig(min_card=0, eps=1e12)).run_opt(trs)
        assert result.cluster_count == 1
