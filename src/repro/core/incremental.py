"""Incremental (online) NEAT clustering.

Section III-C of the paper motivates the Phase 3 design with exactly this
deployment: "the first two phases of NEAT can be performed on each newly
arrived set of trajectories.  The new flow clusters are then merged with
the available flow clusters to produce compact clustering results."

:class:`IncrementalNEAT` implements that loop.  Each ``add_batch`` runs
Phases 1-2 on the newly arrived trajectories only, appends the resulting
flows to the retained flow pool, and re-refines the pool with the adapted
DBSCAN — reusing one memoized shortest-path engine across batches, so the
network distances Phase 3 needs are increasingly cache hits (the warm
server behaviour the paper's NEAT service assumes).

Trajectory ids must be unique across batches; the class offsets them
automatically when asked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

from ..errors import PersistenceError, RecoveryError
from ..obs import Telemetry, get_logger
from ..persist.checkpoint import (
    CheckpointManager,
    open_state_document,
    seal_state_document,
)
from ..persist.distcache import load_distance_cache, save_distance_cache
from ..roadnet.network import RoadNetwork
from ..roadnet.shortest_path import ShortestPathEngine
from .base_cluster import form_base_clusters
from .config import NEATConfig
from .flow_cluster import FlowCluster
from .flow_formation import form_flow_clusters
from .model import Trajectory
from .refinement import RefinementStats, TrajectoryCluster, refine_flow_clusters
from .result import NEATResult
from .serialize import (
    FORMAT_TAG,
    FORMAT_VERSION,
    _cluster_to_dict,
    _flow_to_dict,
    result_from_dict,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience import FaultInjector

_log = get_logger("core.incremental")


@dataclass
class BatchResult:
    """Outcome of one ``add_batch`` call.

    Attributes:
        batch_index: 0-based index of the batch.
        new_flows: Flows formed from this batch alone (post-``minCard``).
        new_noise_flows: This batch's flows filtered by ``minCard``.
        clusters: The refreshed global clustering over all retained flows.
        refinement_stats: Phase 3 instrumentation for this refresh.
    """

    batch_index: int
    new_flows: list[FlowCluster] = field(default_factory=list)
    new_noise_flows: list[FlowCluster] = field(default_factory=list)
    clusters: list[TrajectoryCluster] = field(default_factory=list)
    refinement_stats: RefinementStats = field(default_factory=RefinementStats)


class IncrementalNEAT:
    """Online NEAT over a stream of trajectory batches.

    Args:
        network: The road network.
        config: NEAT parameters.  ``min_card`` applies per batch; the
            Phase 3 ``eps``/``min_pts``/``use_elb`` settings apply to every
            refresh of the global clustering.
        telemetry: Optional :class:`~repro.obs.Telemetry` bundle.  Unlike
            the batch pipeline, the incremental clusterer is long-lived,
            so one bundle accumulates across every ``add_batch`` — its
            ``incremental.*`` counters and latency histogram describe the
            whole stream.  Defaults to a fresh enabled bundle.

    Example:
        >>> from repro.roadnet import line_network
        >>> from repro.core import NEATConfig
        >>> inc = IncrementalNEAT(line_network(3), NEATConfig(min_card=0))
    """

    def __init__(
        self,
        network: RoadNetwork,
        config: NEATConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.network = network
        self.config = config if config is not None else NEATConfig()
        self.engine = ShortestPathEngine(network, directed=False)
        self.telemetry = telemetry if telemetry is not None else Telemetry.create()
        if self.telemetry.enabled:
            self.engine.bind_metrics(self.telemetry.metrics)
        self._flows: list[FlowCluster] = []
        self._noise_flows: list[FlowCluster] = []
        self._clusters: list[TrajectoryCluster] = []
        self._batches = 0
        self._seen_trids: set[int] = set()
        self._persist: CheckpointManager | None = None
        self._checkpoint_every = max(0, self.config.checkpoint_every)
        self._replaying = False
        self._persist_fsync = True
        self._persist_faults: "FaultInjector | None" = None
        # (exact, bounded) memo-table sizes at the last distance-cache
        # save; an unchanged cache is not rewritten.
        self._distcache_saved: tuple[int, int] | None = None
        # Serialization memos for repeated checkpoints; base clusters and
        # flows are immutable once committed, so only state new since the
        # last snapshot costs anything (entry-dict memo for the document,
        # rendered-bytes memo for the payload, and an incremental document
        # builder that only absorbs flows appended since the last call).
        self._fragment_cache: dict[int, Any] = {}
        self._fragment_text_cache: dict[int, Any] = {}
        self._doc_memo: dict[str, Any] | None = None

    # ------------------------------------------------------------------
    @property
    def flows(self) -> list[FlowCluster]:
        """All retained flows across batches, in arrival order."""
        return list(self._flows)

    @property
    def noise_flows(self) -> list[FlowCluster]:
        """Sub-``minCard`` flows across batches, in arrival order."""
        return list(self._noise_flows)

    @property
    def clusters(self) -> list[TrajectoryCluster]:
        """The current global clustering."""
        return list(self._clusters)

    @property
    def batch_count(self) -> int:
        """Number of batches ingested."""
        return self._batches

    # ------------------------------------------------------------------
    def add_batch(
        self,
        trajectories: Sequence[Trajectory],
        auto_offset_ids: bool = False,
    ) -> BatchResult:
        """Ingest a batch, update the global clustering, return the delta.

        Args:
            trajectories: Newly arrived trajectories.
            auto_offset_ids: Re-id the batch's trajectories past every id
                seen so far.  Without it, a duplicate id raises
                ``ValueError`` — cross-batch netflow would silently merge
                unrelated objects otherwise.
        """
        batch = list(trajectories)
        if auto_offset_ids:
            batch = self._offset_ids(batch)
        else:
            duplicate = {tr.trid for tr in batch} & self._seen_trids
            if duplicate:
                raise ValueError(
                    f"trajectory ids seen in earlier batches: {sorted(duplicate)[:5]}"
                    " (pass auto_offset_ids=True to re-id)"
                )

        # Snapshot mutable state so a mid-batch failure (bad input deep in
        # a phase, injected fault in a chaos drill) leaves the clusterer
        # exactly as it was: ingestion is all-or-nothing per batch, which
        # is what lets the service tier retry or queue a failed batch.
        rollback = (
            list(self._flows),
            list(self._noise_flows),
            list(self._clusters),
            set(self._seen_trids),
            self._batches,
        )
        self._seen_trids.update(tr.trid for tr in batch)

        result = BatchResult(batch_index=self._batches)
        self._batches += 1

        telemetry = self.telemetry
        metrics = telemetry.metrics if telemetry.enabled else None
        try:
            with telemetry.tracer.span("incremental.add_batch") as batch_span:
                if batch:
                    base = form_base_clusters(
                        self.network, batch,
                        keep_interior_points=self.config.keep_interior_points,
                        metrics=metrics,
                    )
                    formation = form_flow_clusters(
                        self.network, base, self.config, metrics=metrics
                    )
                    result.new_flows = formation.flows
                    result.new_noise_flows = formation.noise_flows
                    self._flows.extend(formation.flows)
                    self._noise_flows.extend(formation.noise_flows)

                stats = RefinementStats()
                with telemetry.tracer.span("incremental.refresh"):
                    self._clusters = refine_flow_clusters(
                        self.network, self._flows, self.config,
                        engine=self.engine, stats=stats, metrics=metrics,
                    )

                # Journal the batch *inside* the rollback scope: if the
                # append fails (disk fault, injected crash) the batch is
                # undone in memory too, so acknowledged == durable.
                # Replayed batches are already in the journal.
                if self._persist is not None and not self._replaying:
                    with telemetry.tracer.span("incremental.journal"):
                        self._persist.record_batch(result.batch_index, batch)
        except BaseException:
            (
                self._flows,
                self._noise_flows,
                self._clusters,
                self._seen_trids,
                self._batches,
            ) = rollback
            if metrics is not None:
                metrics.inc(
                    "incremental.rolled_back_batches",
                    description="Batches undone after a mid-ingest failure",
                )
            _log.warning("batch rolled back", batch=result.batch_index)
            raise
        result.clusters = list(self._clusters)
        result.refinement_stats = stats

        if metrics is not None:
            metrics.counter(
                "incremental.batches", "Trajectory batches ingested"
            ).inc()
            metrics.counter(
                "incremental.trajectories", "Trajectories ingested across batches"
            ).inc(len(batch))
            metrics.gauge(
                "incremental.retained_flows", "Flows in the retained pool"
            ).set(len(self._flows))
            metrics.histogram(
                "incremental.batch_seconds",
                "End-to-end add_batch latency (Phases 1-2 plus refresh)",
            ).observe(batch_span.duration)
        _log.debug(
            "batch ingested",
            batch=result.batch_index,
            trajectories=len(batch),
            new_flows=len(result.new_flows),
            clusters=len(result.clusters),
            seconds=round(batch_span.duration, 6),
        )
        # Auto-checkpoint *after* the batch committed (journal fsynced):
        # a failed snapshot write must never undo a journaled batch — the
        # journal alone already makes it durable.
        if (
            self._persist is not None
            and not self._replaying
            and self._checkpoint_every > 0
            and self._batches % self._checkpoint_every == 0
        ):
            self.checkpoint()
        # Spill the engine's memo table so a restart warm-starts Phase 3.
        # Best-effort and outside the rollback scope: the journal is the
        # durable source of truth, the distance cache only saves work.
        if self._persist is not None and not self._replaying:
            self.save_distance_cache()
        return result

    def _offset_ids(self, batch: list[Trajectory]) -> list[Trajectory]:
        offset = (max(self._seen_trids) + 1) if self._seen_trids else 0
        reindexed = []
        for index, trajectory in enumerate(batch):
            reindexed.append(
                Trajectory(offset + index, trajectory.locations)
            )
        return reindexed

    # ------------------------------------------------------------------
    # Durability: checkpoint / journal / recover (docs/robustness.md)
    # ------------------------------------------------------------------
    @property
    def state_dir(self) -> Path | None:
        """The configured state directory (None: persistence disabled)."""
        return self._persist.state_dir if self._persist is not None else None

    @property
    def distcache_path(self) -> Path | None:
        """Where the persistent distance cache lives (None: disabled)."""
        if self._persist is None:
            return None
        return self._persist.state_dir / "distcache.snap"

    def save_distance_cache(self) -> int | None:
        """Persist the shortest-path memo table, best-effort.

        Returns the entry count written, ``None`` when persistence is
        disabled, the cache is unchanged since the last save, or the
        write failed (failure is logged and counted, never raised — the
        cache only ever saves work, durability comes from the journal).
        """
        path = self.distcache_path
        if path is None:
            return None
        exact, bounded = self.engine.export_cache()
        sizes = (len(exact), len(bounded))
        if sizes == self._distcache_saved:
            return None
        metrics = self.telemetry.metrics if self.telemetry.enabled else None
        try:
            with self.telemetry.tracer.span("incremental.distcache"):
                entries = save_distance_cache(
                    path,
                    self.engine,
                    fsync=self._persist_fsync,
                    metrics=metrics,
                    faults=self._persist_faults,
                )
        except Exception as error:
            if metrics is not None:
                metrics.inc(
                    "sp.cache.save_failures",
                    description="Distance-cache writes that failed",
                )
            _log.warning("distance-cache save failed", error=repr(error))
            return None
        self._distcache_saved = sizes
        return entries

    def enable_persistence(
        self,
        state_dir: str | Path,
        checkpoint_every: int | None = None,
        *,
        keep: int = 3,
        fsync: bool = True,
        faults: "FaultInjector | None" = None,
    ) -> CheckpointManager:
        """Attach a state directory: journal every batch, checkpoint on cadence.

        From this call on, every successful ``add_batch`` is journaled
        before it is acknowledged (a journal failure rolls the batch
        back), and a snapshot generation is written every
        ``checkpoint_every`` batches (0 = only on explicit
        :meth:`checkpoint` calls; default comes from
        ``config.checkpoint_every``).  Each committed batch also spills
        the shortest-path memo table to ``distcache.snap`` (best-effort,
        skipped when unchanged), so :meth:`recover` warm-starts Phase 3
        instead of recomputing distances.

        Args:
            state_dir: Directory holding ``snapshots/`` and ``journal.wal``.
            checkpoint_every: Override the config's snapshot cadence.
            keep: Snapshot generations retained for fallback.
            fsync: Durability barrier on every journal append / snapshot.
            faults: Optional injector driving the ``snapshot.*`` /
                ``journal.*`` fault points (recovery gauntlet).
        """
        metrics = self.telemetry.metrics if self.telemetry.enabled else None
        self._persist = CheckpointManager(
            state_dir, keep=keep, fsync=fsync, faults=faults, metrics=metrics,
        )
        self._persist_fsync = fsync
        self._persist_faults = faults
        if checkpoint_every is not None:
            self._checkpoint_every = max(0, int(checkpoint_every))
        _log.info(
            "persistence enabled",
            state_dir=str(self._persist.state_dir),
            checkpoint_every=self._checkpoint_every,
        )
        return self._persist

    def checkpoint(self, state_dir: str | Path | None = None) -> int:
        """Write a snapshot of the full state; returns the generation number.

        Args:
            state_dir: One-shot target; when given and different from the
                configured directory, persistence is (re)attached to it.

        Raises:
            PersistenceError: No state directory is configured, or the
                write failed in a way that left no new generation.
        """
        if state_dir is not None and (
            self._persist is None
            or Path(state_dir) != self._persist.state_dir
        ):
            self.enable_persistence(state_dir)
        if self._persist is None:
            raise PersistenceError(
                "no state directory configured: call enable_persistence() "
                "or pass state_dir"
            )
        with self.telemetry.tracer.span("incremental.checkpoint"):
            generation = self._persist.write_checkpoint(
                self._state_document(),
                text_cache=self._fragment_text_cache,
            )
        # A checkpoint captures the distance cache too, so a recovery
        # that replays nothing still warm-starts later refreshes.
        self.save_distance_cache()
        _log.info(
            "checkpoint written", generation=generation, watermark=self._batches
        )
        return generation

    @classmethod
    def recover(
        cls,
        state_dir: str | Path,
        network: RoadNetwork,
        config: NEATConfig | None = None,
        telemetry: Telemetry | None = None,
        *,
        keep: int = 3,
        fsync: bool = True,
        faults: "FaultInjector | None" = None,
        checkpoint_every: int | None = None,
    ) -> "IncrementalNEAT":
        """Rebuild a clusterer from a state directory: snapshot + replay.

        Recovery restores the newest verified snapshot generation (falling
        back to an older one when the newest is torn or corrupt), then
        re-applies the journaled batches past its watermark through the
        normal ``add_batch`` path — so a replay failure rolls back like
        any other ingest failure and surfaces as :class:`RecoveryError`.
        The recovered instance keeps persisting to the same directory.

        Raises:
            CorruptSnapshot: No snapshot generation verifies, or a journal
                record is undecodable / out of sequence.
            RecoveryError: The on-disk state decodes but cannot be
                re-applied (wrong network, replay failure).
        """
        clusterer = cls(network, config, telemetry)
        metrics = (
            clusterer.telemetry.metrics if clusterer.telemetry.enabled else None
        )
        manager = CheckpointManager(
            state_dir, keep=keep, fsync=fsync, faults=faults, metrics=metrics,
        )
        # Warm the shortest-path engine *before* journal replay: with an
        # unchanged network (same CSR mutation version) every distance
        # the replayed refreshes need is already cached, so recovery
        # performs zero shortest-path computations.  Best-effort — a
        # missing or stale cache just means a cold engine.
        warm_entries = load_distance_cache(
            manager.state_dir / "distcache.snap",
            clusterer.engine,
            metrics=metrics,
            faults=faults,
        )
        if warm_entries is not None:
            # Baseline the dirty check at the file's content: if replay
            # computes nothing new, the post-recovery save below no-ops.
            exact, bounded = clusterer.engine.export_cache()
            clusterer._distcache_saved = (len(exact), len(bounded))
        try:
            recovered = manager.load()
            if recovered.state is not None:
                clusterer._restore_state(recovered.state, manager.state_dir)
            for seq, trajectories in recovered.batches:
                clusterer._replaying = True
                try:
                    applied = clusterer.add_batch(
                        trajectories, auto_offset_ids=False
                    )
                finally:
                    clusterer._replaying = False
                if applied.batch_index != seq:
                    raise RecoveryError(
                        state_dir,
                        f"replayed batch landed at index {applied.batch_index}"
                        f", journal says {seq}",
                    )
                if metrics is not None:
                    metrics.inc(
                        "persist.journal_replayed_batches",
                        description=(
                            "Journaled batches re-applied during recovery"
                        ),
                    )
        except PersistenceError:
            if metrics is not None:
                metrics.inc(
                    "persist.recovery_failures",
                    description="Recoveries aborted with a typed error",
                )
            raise
        except Exception as error:
            if metrics is not None:
                metrics.inc(
                    "persist.recovery_failures",
                    description="Recoveries aborted with a typed error",
                )
            raise RecoveryError(
                state_dir, f"journal replay failed: {error!r}"
            ) from error
        clusterer._persist = manager
        clusterer._persist_fsync = fsync
        clusterer._persist_faults = faults
        # Capture whatever replay had to compute (no-op when the warm
        # cache already covered it).
        clusterer.save_distance_cache()
        if checkpoint_every is not None:
            clusterer._checkpoint_every = max(0, int(checkpoint_every))
        if metrics is not None:
            metrics.inc(
                "persist.recoveries",
                description="Successful state recoveries from a state dir",
            )
        _log.info(
            "state recovered",
            state_dir=str(manager.state_dir),
            generation=recovered.generation,
            snapshot_batches=recovered.watermark,
            replayed_batches=len(recovered.batches),
            torn_tail=recovered.torn_tail,
        )
        return clusterer

    # ------------------------------------------------------------------
    def snapshot_result(self) -> NEATResult:
        """A :class:`NEATResult` view of the current *served* state.

        Covers the retained flows only: noise flows were filtered per
        batch (possibly under different auto thresholds), so including
        them could not satisfy a single global ``minCard`` — the served
        clustering is the kept-flow world, self-consistent by
        construction.  (The durable state document, by contrast, carries
        the noise flows too — see :meth:`checkpoint`.)
        """
        result = NEATResult(mode="opt")
        members = [member for flow in self._flows for member in flow.members]
        result.base_clusters = sorted(
            members, key=lambda cluster: (-cluster.density, cluster.sid)
        )
        result.flows = list(self._flows)
        result.clusters = list(self._clusters)
        cards = [flow.trajectory_cardinality for flow in result.flows]
        result.min_card_used = min(cards) if cards else 0
        return result

    def _state_document(self) -> dict[str, Any]:
        """The full durable state (flows, noise flows, clusters, id space).

        The document is built *incrementally*: flow pools only ever
        append (a rollback or recovery replaces the list object, which
        resets the memo), so each call serializes just the flows added
        since the last one and re-emits the already-built entries.  The
        schema is ``result_to_dict``'s — the entry builders are shared.
        """
        memo = self._doc_memo
        flows, noise_flows = self._flows, self._noise_flows
        if (
            memo is None
            or memo["flows"] is not flows
            or memo["flows_done"] > len(flows)
            or memo["noise"] is not noise_flows
            or memo["noise_done"] > len(noise_flows)
        ):
            memo = self._doc_memo = {
                "flows": flows, "flows_done": 0,
                "noise": noise_flows, "noise_done": 0,
                "base_entries": [], "base_index": {},
                "flow_entries": [], "noise_entries": [], "flow_index": {},
            }
        base_entries = memo["base_entries"]
        base_index = memo["base_index"]

        def absorb(pool: list[FlowCluster], done: int, entries: list[Any]) -> None:
            for flow in pool[done:]:
                for member in flow.members:
                    # Members are pinned by the fragment cache, so a live
                    # id() here always means this exact cluster.
                    if id(member) not in base_index:
                        base_index[id(member)] = len(base_entries)
                        base_entries.append(
                            _cluster_to_dict(member, self._fragment_cache)
                        )
                entries.append(_flow_to_dict(flow, base_index))

        flow_index = memo["flow_index"]
        for i in range(memo["flows_done"], len(flows)):
            flow_index[id(flows[i])] = i
        absorb(flows, memo["flows_done"], memo["flow_entries"])
        absorb(noise_flows, memo["noise_done"], memo["noise_entries"])
        memo["flows_done"] = len(flows)
        memo["noise_done"] = len(noise_flows)

        cards = [flow.trajectory_cardinality for flow in flows]
        result_document = {
            "format": FORMAT_TAG,
            "version": FORMAT_VERSION,
            "mode": "opt",
            "min_card_used": min(cards) if cards else 0,
            "network_name": self.network.name,
            "stale": False,
            "dropped_shards": [],
            "base_clusters": list(base_entries),
            "flows": list(memo["flow_entries"]),
            "noise_flows": list(memo["noise_entries"]),
            "clusters": [
                {
                    "cluster_id": cluster.cluster_id,
                    "flow_indices": [
                        flow_index[id(flow)] for flow in cluster.flows
                    ],
                }
                for cluster in self._clusters
            ],
        }
        return seal_state_document(
            watermark=self._batches,
            seen_trids=self._seen_trids,
            network_name=self.network.name,
            result_document=result_document,
        )

    def _restore_state(self, document: dict[str, Any], source: object) -> None:
        """Load a state envelope into this (empty) instance."""
        watermark, seen_trids, network_name, result_document = (
            open_state_document(document, str(source))
        )
        if network_name and network_name != self.network.name:
            raise RecoveryError(
                source,
                f"snapshot was written for network {network_name!r}, "
                f"not {self.network.name!r}",
            )
        result = result_from_dict(result_document, self.network)
        self._flows = list(result.flows)
        self._noise_flows = list(result.noise_flows)
        self._clusters = list(result.clusters)
        self._seen_trids = set(seen_trids)
        self._batches = watermark
