"""Unit tests for trajectory dataset serialization and summaries."""

from __future__ import annotations

import pytest

from repro.core.model import TrajectoryDataset
from repro.errors import TrajectoryError
from repro.mobisim.dataset import dataset_summary, format_table2
from repro.mobisim.io import (
    dataset_from_dict,
    dataset_to_dict,
    load_dataset,
    save_dataset,
)

from conftest import trajectory_through


@pytest.fixture
def dataset(line3):
    trs = tuple(trajectory_through(line3, i, [0, 1, 2]) for i in range(3))
    return TrajectoryDataset(
        "T3", trs, network_name="line", metadata={"seed": 5}
    )


class TestRoundTrip:
    def test_dict_roundtrip(self, dataset):
        restored = dataset_from_dict(dataset_to_dict(dataset))
        assert restored.name == dataset.name
        assert restored.network_name == dataset.network_name
        assert restored.metadata == dataset.metadata
        assert restored.total_points == dataset.total_points
        for a, b in zip(restored, dataset):
            assert a == b

    def test_file_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "traces.json"
        save_dataset(dataset, path)
        restored = load_dataset(path)
        assert restored.total_points == dataset.total_points

    def test_junction_marks_survive(self, line3, tmp_path):
        from repro.core.fragmentation import insert_junction_points
        from repro.core.model import Trajectory

        tr = trajectory_through(line3, 0, [0, 1])
        augmented = Trajectory(0, tuple(insert_junction_points(line3, tr)))
        dataset = TrajectoryDataset("j", (augmented,))
        restored = dataset_from_dict(dataset_to_dict(dataset))
        marks = [l.node_id for l in restored.trajectories[0].locations]
        assert marks == [l.node_id for l in augmented.locations]


class TestValidation:
    def test_rejects_wrong_format(self):
        with pytest.raises(TrajectoryError):
            dataset_from_dict({"format": "nope", "version": 1})

    def test_rejects_wrong_version(self, dataset):
        data = dataset_to_dict(dataset)
        data["version"] = 42
        with pytest.raises(TrajectoryError):
            dataset_from_dict(data)


class TestSummaries:
    def test_dataset_summary(self, dataset):
        summary = dataset_summary(dataset)
        assert summary["name"] == "T3"
        assert summary["trajectories"] == 3
        assert summary["total_points"] == dataset.total_points
        assert summary["min_points"] <= summary["avg_points"] <= summary["max_points"]

    def test_format_table2(self, dataset):
        text = format_table2({"ATL": [dataset], "SJ": [dataset]})
        assert "Datasets" in text
        assert "ATL" in text and "SJ" in text
        assert str(dataset.total_points) in text

    def test_format_table2_empty(self):
        assert format_table2({}) == "(no datasets)"
