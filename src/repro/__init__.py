"""repro — reproduction of "NEAT: Road Network Aware Trajectory Clustering".

A full implementation of the NEAT three-phase clustering framework
(Han, Liu, Omiecinski; ICDCS 2012) plus every substrate its evaluation
needs: a road-network graph model with routing and spatial indexing,
synthetic map generators calibrated to the paper's Table I, a
GTMobiSIM-style mobility-trace simulator, a SLAMM-style map matcher, the
TraClus baseline, and experiment drivers regenerating every table and
figure of the paper.

Quickstart::

    from repro.roadnet import atlanta_like
    from repro.mobisim import SimulationConfig, simulate_dataset
    from repro.core import NEAT, NEATConfig

    network = atlanta_like(scale=0.1)
    dataset = simulate_dataset(network, SimulationConfig(object_count=500))
    result = NEAT(network, NEATConfig(eps=2000.0)).run_opt(dataset)
    print(result.summary())
"""

from .core import (
    NEAT,
    NEATConfig,
    NEATResult,
    Location,
    TFragment,
    Trajectory,
    TrajectoryCluster,
    TrajectoryDataset,
)
from .errors import ReproError
from .obs import Telemetry, configure_logging, get_logger
from .parallel import effective_workers, map_chunked, resolve_workers
from .roadnet import Point, RoadNetwork

__version__ = "1.0.0"

__all__ = [
    "Location",
    "NEAT",
    "NEATConfig",
    "NEATResult",
    "Point",
    "ReproError",
    "RoadNetwork",
    "TFragment",
    "Telemetry",
    "Trajectory",
    "TrajectoryCluster",
    "TrajectoryDataset",
    "__version__",
    "configure_logging",
    "effective_workers",
    "get_logger",
    "map_chunked",
    "resolve_workers",
]
