"""Tests for the persistent-connection layer of the distributed tier.

Covers the :class:`ConnectionPool` itself (LIFO reuse, the size cap,
idle expiry), the handshake-once guarantee of pooled
:class:`TransportClient` s, the exactly-one-reconnect recovery when the
server closes a pooled socket between calls, the determinism of
injected refuse/drop/stall/garble faults on pooled connections (same
1-based indexes as an unpooled client, no transparent retry of a
faulted call), the ``batch`` op (ordered replies, one call index per
frame), the packed columnar wire schema, the shard-side ``distances``
op against a local engine, byte-identity of a pooled remote-Phase-3
coordinator run, and the spawn rendezvous timeout error.
"""

from __future__ import annotations

import io
import json
import time

import pytest

from repro.core.base_cluster import form_base_clusters
from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT
from repro.core.serialize import result_to_dict
from repro.distributed import (
    ConnectionPool,
    NeatCoordinator,
    RegionShardMap,
    RemoteDataNode,
    ShardNodeServer,
    TransportClient,
    spawn_local_shards,
)
from repro.distributed.transport import (
    _Connection,
    clusters_from_packed,
    clusters_to_packed,
    trajectories_from_packed,
    trajectories_to_packed,
)
from repro.errors import TransportError
from repro.obs import Telemetry
from repro.resilience import FaultInjector, FaultPlan
from repro.roadnet.io import save_network
from repro.roadnet.shortest_path import INFINITY, ShortestPathEngine

from conftest import trajectory_through


@pytest.fixture
def shard(line3):
    server = ShardNodeServer(line3, node_id=0).start()
    yield server
    server.stop()


class _FakeSock:
    """Just enough socket for :class:`_Connection` unit tests."""

    def __init__(self) -> None:
        self.closed = False

    def close(self) -> None:
        self.closed = True


def _fake_connection() -> _Connection:
    return _Connection(_FakeSock(), io.BytesIO())


# ----------------------------------------------------------------------
# ConnectionPool (unit)
# ----------------------------------------------------------------------
class TestConnectionPool:
    def test_empty_checkout(self):
        assert ConnectionPool(size=2).checkout() == (None, 0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ConnectionPool(size=-1)
        with pytest.raises(ValueError):
            ConnectionPool(size=1, idle_timeout_s=0.0)

    def test_lifo_reuse(self):
        pool = ConnectionPool(size=2)
        first, second = _fake_connection(), _fake_connection()
        assert pool.checkin(first)
        assert pool.checkin(second)
        # Most recently used first: its socket is the least likely to
        # have been reaped while idle.
        assert pool.checkout() == (second, 0)
        assert pool.checkout() == (first, 0)
        assert pool.checkout() == (None, 0)

    def test_size_cap_closes_surplus(self):
        pool = ConnectionPool(size=1)
        kept, surplus = _fake_connection(), _fake_connection()
        assert pool.checkin(kept)
        assert not pool.checkin(surplus)
        assert surplus.sock.closed
        assert not kept.sock.closed
        assert len(pool) == 1

    def test_size_zero_disables_pooling(self):
        pool = ConnectionPool(size=0)
        connection = _fake_connection()
        assert not pool.checkin(connection)
        assert connection.sock.closed

    def test_idle_expiry_counted(self):
        pool = ConnectionPool(size=2, idle_timeout_s=0.05)
        stale = _fake_connection()
        pool.checkin(stale)
        time.sleep(0.08)
        assert pool.checkout() == (None, 1)
        assert stale.sock.closed

    def test_close_all(self):
        pool = ConnectionPool(size=2)
        connections = [_fake_connection(), _fake_connection()]
        for connection in connections:
            pool.checkin(connection)
        pool.close_all()
        assert len(pool) == 0
        assert all(c.sock.closed for c in connections)


# ----------------------------------------------------------------------
# Persistent connections
# ----------------------------------------------------------------------
class TestPersistentConnections:
    def test_handshake_once_across_calls(self, shard):
        telemetry = Telemetry()
        client = TransportClient(
            shard.host, shard.port, metrics=telemetry.metrics, pool_size=1
        )
        for _ in range(5):
            assert client.call("ping") == {"node_id": 0}
        stats = client.call("stats")
        client.close()
        metrics = telemetry.metrics
        assert metrics.value("transport.handshakes") == 1
        assert metrics.value("pool.connections_opened") == 1
        assert metrics.value("pool.connections_reused") == 5
        assert metrics.value("transport.reconnects") == 0
        # The server agrees: six calls, one TCP connection.
        assert stats["connections"] == 1

    def test_pool_size_zero_is_pre_pool_behavior(self, shard):
        telemetry = Telemetry()
        client = TransportClient(
            shard.host, shard.port, metrics=telemetry.metrics, pool_size=0
        )
        for _ in range(3):
            client.call("ping")
        client.close()
        metrics = telemetry.metrics
        assert metrics.value("transport.handshakes") == 3
        assert metrics.value("pool.connections_opened") == 3
        assert metrics.value("pool.connections_reused") == 0

    def test_server_close_mid_pool_reconnects_exactly_once(self, shard):
        telemetry = Telemetry()
        client = TransportClient(
            shard.host, shard.port, metrics=telemetry.metrics, pool_size=1
        )
        client.call("ping")
        # ``reset`` replies, then the *server* closes the connection;
        # the pooled socket is now dead without the client knowing.
        assert client.call("reset") == {"closing": True}
        # The next reuse discovers the close and recovers with exactly
        # one reconnect — transparently, because the request never
        # reached the peer.
        assert client.call("ping") == {"node_id": 0}
        assert telemetry.metrics.value("transport.reconnects") == 1
        # The replacement connection is healthy: further calls reuse it
        # without another reconnect.
        for _ in range(3):
            client.call("ping")
        client.close()
        assert telemetry.metrics.value("transport.reconnects") == 1
        assert telemetry.metrics.value("transport.errors") == 0

    def test_idle_timeout_discards_quiet_sockets(self, shard):
        telemetry = Telemetry()
        client = TransportClient(
            shard.host, shard.port, metrics=telemetry.metrics,
            pool_size=1, idle_timeout_s=0.05,
        )
        client.call("ping")
        time.sleep(0.08)
        client.call("ping")
        client.close()
        metrics = telemetry.metrics
        assert metrics.value("pool.idle_closed") == 1
        assert metrics.value("pool.connections_opened") == 2
        assert metrics.value("pool.connections_reused") == 0


# ----------------------------------------------------------------------
# Fault determinism on pooled connections
# ----------------------------------------------------------------------
def _run_chaos_schedule(shard, pool_size: int) -> tuple[list[str], dict]:
    """Eight pings under refuse@2 / drop@4 / stall@6 / garble@8.

    Returns the per-call outcome list (``"ok"`` or the error kind) and
    the final ``transport.*`` counter values.
    """
    faults = FaultInjector()
    faults.arm(
        "transport.node0",
        FaultPlan(refuse_nth=2, drop_nth=4, stall_nth=6, garble_nth=8),
    )
    telemetry = Telemetry()
    client = TransportClient(
        shard.host, shard.port, timeout_s=0.1,
        faults=faults, fault_operation="transport.node0",
        metrics=telemetry.metrics, pool_size=pool_size,
    )
    outcomes = []
    for _ in range(8):
        try:
            client.call("ping")
            outcomes.append("ok")
        except TransportError as error:
            outcomes.append(error.kind)
    client.close()
    metrics = telemetry.metrics
    counters = {
        name: metrics.value(f"transport.{name}")
        for name in ("requests", "refused", "dropped", "stalled", "garbled")
    }
    return outcomes, counters


class TestPooledFaultDeterminism:
    def test_faults_land_at_same_indexes_pooled_and_unpooled(self, line3):
        # Separate servers so the stall sleep of one run cannot delay
        # the other run's clean calls.
        expected = ["ok", "refused", "ok", "dropped", "ok", "stalled", "ok", "garbled"]
        results = {}
        for pool_size in (0, 2):
            server = ShardNodeServer(line3, node_id=0).start()
            try:
                results[pool_size] = _run_chaos_schedule(server, pool_size)
            finally:
                server.stop()
        for pool_size, (outcomes, counters) in results.items():
            assert outcomes == expected, f"pool_size={pool_size}"
            assert counters["requests"] == 8
            for kind in ("refused", "dropped", "stalled", "garbled"):
                assert counters[kind] == 1, f"pool_size={pool_size} {kind}"
        # Identical chaos schedule, identical wire outcome — pooling
        # changes socket lifetimes, never the fault indexes.
        assert results[0] == results[2]

    def test_faulted_call_never_retries_transparently(self, shard):
        faults = FaultInjector()
        faults.arm("transport.node0", FaultPlan(drop_nth=2))
        client = TransportClient(
            shard.host, shard.port, faults=faults,
            fault_operation="transport.node0", pool_size=1,
        )
        client.call("ping")
        # The dropped call raises instead of silently reconnecting and
        # resending: an injected fault must surface to the retry layer
        # above (which owns the redispatch decision), not vanish.
        with pytest.raises(TransportError) as excinfo:
            client.call("ping")
        assert excinfo.value.kind == "dropped"
        assert faults.wrapper("transport.node0").injected_failures == 1
        client.close()


# ----------------------------------------------------------------------
# The batch op
# ----------------------------------------------------------------------
class TestBatch:
    def test_batch_replies_in_order_over_one_frame(self, shard):
        telemetry = Telemetry()
        client = TransportClient(
            shard.host, shard.port, metrics=telemetry.metrics, pool_size=1
        )
        results = client.call_batch(
            [("ping", None), ("stats", None), ("ping", None)]
        )
        client.close()
        assert results[0] == {"node_id": 0}
        assert results[2] == {"node_id": 0}
        assert results[1]["batched_requests"] == 1
        # One frame on the wire, one connection, three answers.
        assert results[1]["connections"] == 1
        metrics = telemetry.metrics
        assert metrics.value("transport.batched_calls") == 1
        assert metrics.value("transport.requests") == 1

    def test_batch_consumes_one_fault_index(self, shard):
        faults = FaultInjector()
        faults.arm("transport.node0", FaultPlan(refuse_nth=2))
        client = TransportClient(
            shard.host, shard.port, faults=faults,
            fault_operation="transport.node0", pool_size=1,
        )
        # Call #1: a whole batch of three rides one clean call index.
        assert len(client.call_batch([("ping", None)] * 3)) == 3
        # Call #2: the refuse fires against the batch as a unit.
        with pytest.raises(TransportError) as excinfo:
            client.call_batch([("ping", None)] * 3)
        assert excinfo.value.kind == "refused"
        client.close()

    def test_batch_item_error_names_the_item(self, shard):
        client = TransportClient(shard.host, shard.port)
        with pytest.raises(TransportError) as excinfo:
            client.call_batch([("ping", None), ("no-such-op", None)])
        client.close()
        assert excinfo.value.kind == "protocol"
        assert "batch item 1" in str(excinfo.value)


# ----------------------------------------------------------------------
# Packed columnar wire schema
# ----------------------------------------------------------------------
class TestPackedSchema:
    def test_trajectories_roundtrip_exactly(self, line3):
        trajectories = [
            trajectory_through(line3, trid, [0, 1, 2], t0=float(trid))
            for trid in range(4)
        ]
        decoded = trajectories_from_packed(
            trajectories_to_packed(trajectories)
        )
        assert decoded == trajectories

    def test_clusters_roundtrip_exactly(self, line3):
        trajectories = [
            trajectory_through(line3, trid, [0, 1, 2]) for trid in range(5)
        ]
        # Junction insertion gives some locations a node_id — the
        # packed schema must carry the junction mark through.
        clusters = form_base_clusters(line3, trajectories)
        decoded = clusters_from_packed(clusters_to_packed(clusters))
        assert [c.sid for c in decoded] == [c.sid for c in clusters]
        assert [c.fragments for c in decoded] == [c.fragments for c in clusters]
        assert any(
            location.is_junction
            for cluster in decoded
            for fragment in cluster.fragments
            for location in fragment.locations
        )

    def test_preprocess_packed_matches_local(self, line3, shard):
        trajectories = [
            trajectory_through(line3, trid, [0, 1, 2]) for trid in range(5)
        ]
        client = TransportClient(shard.host, shard.port)
        result = client.call(
            "preprocess",
            {"trajectories_packed": trajectories_to_packed(trajectories)},
        )
        client.close()
        remote = clusters_from_packed(result["clusters_packed"])
        local = form_base_clusters(line3, trajectories)
        assert [c.sid for c in remote] == [c.sid for c in local]
        assert [c.fragments for c in remote] == [c.fragments for c in local]


# ----------------------------------------------------------------------
# Shard-side distances (the remote half of Phase 3)
# ----------------------------------------------------------------------
class TestDistancesOp:
    def test_distances_match_local_engine(self, line3, shard):
        engine = ShortestPathEngine(line3, directed=False)
        pairs = [(0, 3), (1, 2), (2, 2)]
        client = TransportClient(shard.host, shard.port)
        result = client.call("distances", {"pairs": pairs, "cutoff": 1000.0})
        client.close()
        expected = [engine.distance(s, t, cutoff=1000.0) for s, t in pairs]
        assert result["distances"] == expected
        assert all(value != INFINITY for value in result["distances"])

    def test_distance_beyond_cutoff_is_none(self, line3, shard):
        # Nodes 0 and 3 are 300 m apart on the 3-segment line; a 50 m
        # cutoff makes them mutually unreachable for an eps query.
        client = TransportClient(shard.host, shard.port)
        result = client.call("distances", {"pairs": [(0, 3)], "cutoff": 50.0})
        client.close()
        assert result["distances"] == [None]


# ----------------------------------------------------------------------
# Pooled remote-Phase-3 coordinator run
# ----------------------------------------------------------------------
class TestRemotePhase3Pooled:
    def test_byte_identical_to_serial(self, small_workload):
        network, dataset = small_workload
        trajectories = list(dataset)
        config = NEATConfig(eps=6500.0)
        serial = NEAT(network, config).run(trajectories, mode="opt")
        reference = json.dumps(
            result_to_dict(serial, network_name=network.name), sort_keys=True
        )

        telemetry = Telemetry()
        servers = [ShardNodeServer(network, node_id=i).start() for i in range(3)]
        try:
            nodes = [
                RemoteDataNode(i, TransportClient(
                    s.host, s.port, metrics=telemetry.metrics, pool_size=2,
                ))
                for i, s in enumerate(servers)
            ]
            coordinator = NeatCoordinator(
                network, config, nodes=nodes,
                shardmap=RegionShardMap(network, [0, 1, 2], route="trid"),
                telemetry=telemetry, remote_phase3=True,
            )
            result = coordinator.run(trajectories, mode="opt")
            document = json.dumps(
                result_to_dict(result, network_name=network.name), sort_keys=True
            )
        finally:
            for node in nodes:
                node.client.close()
            for server in servers:
                server.stop()
        assert document == reference
        metrics = telemetry.metrics
        # Phase 3's distance work really ran on the shards, over
        # persistent connections.
        assert metrics.value("coordinator.phase3_remote_pairs") > 0
        assert metrics.value("pool.connections_reused") > 0
        assert metrics.value("transport.reconnects") == 0


# ----------------------------------------------------------------------
# Spawn rendezvous timeout
# ----------------------------------------------------------------------
class TestSpawnTimeout:
    def test_timeout_error_names_the_silent_shard(self, line3, tmp_path):
        network_path = tmp_path / "network.json"
        save_network(line3, network_path)
        # A fake interpreter that stays alive but never binds a port —
        # the worst startup failure mode, because nothing ever errors.
        fake_python = tmp_path / "stuck-python"
        fake_python.write_text("#!/bin/sh\nsleep 60\n", encoding="utf-8")
        fake_python.chmod(0o755)
        with pytest.raises(TransportError) as excinfo:
            spawn_local_shards(
                network_path, 1,
                work_dir=tmp_path / "shards",
                python=str(fake_python),
                startup_timeout_s=0.3,
            )
        assert excinfo.value.kind == "stalled"
        message = str(excinfo.value)
        assert "shard 0" in message
        assert "port file" in message
        assert "shard-0.port" in message
        assert "startup_timeout_s=0.3" in message
