"""Tests for generic OPTICS and Trajectory-OPTICS."""

from __future__ import annotations

import math

import pytest

from repro.core.model import Location, Trajectory
from repro.optics.optics import UNDEFINED, extract_dbscan, optics_ordering
from repro.optics.trajectory_optics import (
    TrajectoryOptics,
    position_at,
    trajectory_distance,
)


def scalar_distance(values):
    def distance(i, j):
        return abs(values[i] - values[j])

    return distance


class TestOpticsOrdering:
    def test_orders_every_item_once(self):
        values = [0.0, 1.0, 2.0, 50.0, 51.0]
        ordering = optics_ordering(len(values), scalar_distance(values), 2)
        assert sorted(p.index for p in ordering) == list(range(5))

    def test_first_item_undefined_reachability(self):
        values = [0.0, 1.0, 2.0]
        ordering = optics_ordering(len(values), scalar_distance(values), 2)
        assert ordering[0].reachability == UNDEFINED

    def test_dense_items_have_low_reachability(self):
        values = [0.0, 1.0, 2.0, 100.0]
        ordering = optics_ordering(len(values), scalar_distance(values), 2)
        by_index = {p.index: p for p in ordering}
        assert by_index[1].reachability <= 2.0
        # The far outlier is either undefined or very large.
        assert by_index[3].reachability > 50.0 or math.isinf(
            by_index[3].reachability
        )

    def test_min_pts_validation(self):
        with pytest.raises(ValueError):
            optics_ordering(3, scalar_distance([0, 1, 2]), 0)

    def test_max_eps_limits_neighborhoods(self):
        values = [0.0, 1.0, 2.0, 10.0, 11.0, 12.0]
        ordering = optics_ordering(
            len(values), scalar_distance(values), 2, max_eps=3.0
        )
        labels = extract_dbscan(ordering, 3.0)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]


class TestExtractDbscan:
    def test_matches_dbscan_semantics(self):
        values = [0.0, 1.0, 2.0, 50.0, 51.0, 200.0]
        ordering = optics_ordering(len(values), scalar_distance(values), 2)
        labels = extract_dbscan(ordering, 2.0)
        assert labels[0] == labels[1] == labels[2] != -1
        assert labels[3] == labels[4] != -1
        assert labels[0] != labels[3]
        assert labels[5] == -1  # the lone outlier is noise

    def test_larger_eps_merges(self):
        values = [0.0, 1.0, 10.0, 11.0]
        ordering = optics_ordering(len(values), scalar_distance(values), 2)
        fine = extract_dbscan(ordering, 2.0)
        coarse = extract_dbscan(ordering, 20.0)
        assert len(set(fine) - {-1}) == 2
        assert len(set(coarse) - {-1}) == 1


def traj(trid, points, t0=0.0, dt=10.0):
    return Trajectory(
        trid,
        tuple(
            Location(0, x, y, t0 + i * dt) for i, (x, y) in enumerate(points)
        ),
    )


class TestTrajectoryDistance:
    def test_identical_is_zero(self):
        a = traj(0, [(0, 0), (100, 0)])
        assert trajectory_distance(a, a) == pytest.approx(0.0)

    def test_parallel_offset(self):
        a = traj(0, [(0, 0), (100, 0)])
        b = traj(1, [(0, 30), (100, 30)])
        assert trajectory_distance(a, b) == pytest.approx(30.0)

    def test_symmetric(self):
        a = traj(0, [(0, 0), (100, 50)])
        b = traj(1, [(10, 5), (90, 70)])
        assert trajectory_distance(a, b) == pytest.approx(
            trajectory_distance(b, a)
        )

    def test_disjoint_times_infinite(self):
        a = traj(0, [(0, 0), (100, 0)], t0=0.0)
        b = traj(1, [(0, 0), (100, 0)], t0=1000.0)
        assert math.isinf(trajectory_distance(a, b))

    def test_position_at_interpolates(self):
        a = traj(0, [(0, 0), (100, 0)])
        assert position_at(a, 5.0) == (50.0, 0.0)
        assert position_at(a, -5.0) == (0.0, 0.0)
        assert position_at(a, 99.0) == (100.0, 0.0)


class TestTrajectoryOptics:
    def test_two_cohorts(self):
        # Cohort A drives east along y=0; cohort B along y=1000.
        cohort_a = [traj(i, [(0, dy), (200, dy)]) for i, dy in enumerate((0, 5, 10))]
        cohort_b = [
            traj(10 + i, [(0, 1000 + dy), (200, 1000 + dy)])
            for i, dy in enumerate((0, 5, 10))
        ]
        result = TrajectoryOptics(eps=50.0, min_pts=2).run(cohort_a + cohort_b)
        assert result.cluster_count == 2
        assert result.noise_count == 0

    def test_outlier_is_noise(self):
        cohort = [traj(i, [(0, dy), (200, dy)]) for i, dy in enumerate((0, 5, 10))]
        outlier = [traj(9, [(0, 5000), (200, 5000)])]
        result = TrajectoryOptics(eps=50.0, min_pts=2).run(cohort + outlier)
        assert result.noise_count == 1

    def test_whole_trajectory_granularity_misses_partial_overlap(self):
        """The NEAT paper's argument: partial co-movement is invisible.

        Two cohorts share a long common corridor but split at the end;
        the whole-trajectory distance averages the split in, so with a
        tight eps the common corridor is never reported as shared.
        """
        # Common corridor y=0 for x in [0, 400]; then A turns north 800 up,
        # B turns south 800 down.
        cohort_a = [
            traj(i, [(0, dy), (400, dy), (400, 800 + dy)])
            for i, dy in enumerate((0, 4))
        ]
        cohort_b = [
            traj(10 + i, [(0, dy), (400, dy), (400, -800 + dy)])
            for i, dy in enumerate((0, 4))
        ]
        result = TrajectoryOptics(eps=60.0, min_pts=2).run(cohort_a + cohort_b)
        # The two cohorts never share a cluster despite the shared corridor.
        labels_a = {result.labels[i] for i in range(2)}
        labels_b = {result.labels[i] for i in range(2, 4)}
        assert not (labels_a & labels_b - {-1})

    def test_empty(self):
        assert TrajectoryOptics(eps=10.0).run([]).cluster_count == 0

    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            TrajectoryOptics(eps=0.0)

    def test_distance_evaluations_counted(self):
        cohort = [traj(i, [(0, i * 5.0), (200, i * 5.0)]) for i in range(4)]
        result = TrajectoryOptics(eps=50.0, min_pts=2).run(cohort)
        assert result.distance_evaluations > 0
        assert result.ordering_seconds >= 0.0
