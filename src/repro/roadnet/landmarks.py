"""ALT (A*, Landmarks, Triangle inequality) distance acceleration.

Phase 3 of NEAT repeatedly computes node-pair network distances.  The
paper prunes *whole computations* with the Euclidean lower bound; this
module additionally accelerates the computations that remain: distances
to a few precomputed *landmark* nodes give, via the triangle inequality,
a lower bound ``|d(L, t) - d(L, s)| <= d(s, t)`` that is usually much
tighter than the Euclidean bound on road networks, and drives a goal-
directed A* (Goldberg & Harrelson, SODA'05).

Landmarks are chosen by farthest-point sampling, the standard heuristic.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from ..errors import UnknownNodeError
from .network import RoadNetwork
from .shortest_path import INFINITY, dijkstra_single_source


class LandmarkOracle:
    """Precomputed landmark distances and the ALT lower bound / search.

    Args:
        network: The road network (undirected view; Phase 3's setting).
        landmark_count: Number of landmarks to select.
        seed_node: Starting node for farthest-point sampling; defaults to
            the lowest node id for determinism.
    """

    def __init__(
        self,
        network: RoadNetwork,
        landmark_count: int = 8,
        seed_node: int | None = None,
    ) -> None:
        if landmark_count < 1:
            raise ValueError("landmark_count must be >= 1")
        self._network = network
        node_ids = network.node_ids()
        if not node_ids:
            raise ValueError("cannot build landmarks on an empty network")
        start = seed_node if seed_node is not None else node_ids[0]
        if not network.has_node(start):
            raise UnknownNodeError(start)
        self.landmarks: list[int] = []
        self._tables: list[dict[int, float]] = []
        self._select_landmarks(start, min(landmark_count, len(node_ids)))

    def _select_landmarks(self, start: int, count: int) -> None:
        """Farthest-point sampling: each landmark maximizes the minimum
        distance to the ones already chosen."""
        current = start
        best_min: dict[int, float] = {}
        for _ in range(count):
            table = dijkstra_single_source(self._network, current, directed=False)
            self.landmarks.append(current)
            self._tables.append(table)
            for node, distance in table.items():
                previous = best_min.get(node, INFINITY)
                if distance < previous:
                    best_min[node] = distance
            # Next landmark: reachable node farthest from all landmarks.
            current = max(
                best_min, key=lambda n: (best_min[n], -n), default=current
            )
            if current in self.landmarks:
                break

    # ------------------------------------------------------------------
    def lower_bound(self, source: int, target: int) -> float:
        """ALT lower bound on ``d(source, target)``.

        The maximum over landmarks of ``|d(L, target) - d(L, source)|``;
        0.0 when neither side is covered (disconnected components).
        """
        best = 0.0
        for table in self._tables:
            ds = table.get(source)
            dt = table.get(target)
            if ds is None or dt is None:
                continue
            bound = abs(dt - ds)
            if bound > best:
                best = bound
        return best

    def distance(self, source: int, target: int) -> float:
        """Exact distance via ALT-guided A* (undirected).

        Optimal because the ALT bound is a consistent heuristic.
        """
        if source == target:
            return 0.0
        network = self._network
        if not network.has_node(source):
            raise UnknownNodeError(source)
        if not network.has_node(target):
            raise UnknownNodeError(target)
        dist: dict[int, float] = {source: 0.0}
        done: set[int] = set()
        heap: list[tuple[float, float, int]] = [
            (self.lower_bound(source, target), 0.0, source)
        ]
        while heap:
            _f, d, node = heapq.heappop(heap)
            if node in done:
                continue
            if node == target:
                return d
            done.add(node)
            for neighbor, _sid, length in network.undirected_neighbors(node):
                nd = d + length
                if nd < dist.get(neighbor, INFINITY):
                    dist[neighbor] = nd
                    heapq.heappush(
                        heap, (nd + self.lower_bound(neighbor, target), nd, neighbor)
                    )
        return INFINITY

    def settled_estimate(self, source: int, target: int) -> int:
        """Nodes settled by the ALT search (for the acceleration bench)."""
        if source == target:
            return 0
        network = self._network
        dist: dict[int, float] = {source: 0.0}
        done: set[int] = set()
        heap: list[tuple[float, float, int]] = [
            (self.lower_bound(source, target), 0.0, source)
        ]
        while heap:
            _f, d, node = heapq.heappop(heap)
            if node in done:
                continue
            if node == target:
                return len(done)
            done.add(node)
            for neighbor, _sid, length in network.undirected_neighbors(node):
                nd = d + length
                if nd < dist.get(neighbor, INFINITY):
                    dist[neighbor] = nd
                    heapq.heappush(
                        heap, (nd + self.lower_bound(neighbor, target), nd, neighbor)
                    )
        return len(done)


def many_to_many_distances(
    network: RoadNetwork, sources: Sequence[int], targets: Sequence[int]
) -> dict[tuple[int, int], float]:
    """All source-target distances via one Dijkstra per source.

    The bulk primitive behind batched Phase 3 refreshes: with ``S``
    sources it costs ``S`` single-source searches instead of ``S*T``
    point queries.
    """
    target_set = set(targets)
    results: dict[tuple[int, int], float] = {}
    for source in sources:
        table = dijkstra_single_source(network, source, directed=False)
        for target in target_set:
            results[(source, target)] = table.get(target, INFINITY)
    return results
